"""Tests for the Verilog parser (repro.verilog.parser)."""

import pytest

from repro.verilog import ParseError, parse
from repro.verilog import ast


def parse_module(body, header="module m(input a, output b);"):
    unit = parse(f"{header}\n{body}\nendmodule")
    return unit.modules[0]


def first_always(body, header="module m(input clk, output reg q);"):
    return parse_module(body, header).always_blocks[0].body


class TestModuleHeaders:
    def test_ansi_ports(self):
        mod = parse("module m(input clk, output reg [3:0] q); endmodule").modules[0]
        assert [p.name for p in mod.ports] == ["clk", "q"]
        assert mod.ports[1].net_kind == "reg"
        assert mod.ports[1].range is not None

    def test_ansi_grouped_ports(self):
        mod = parse("module m(input a, b, c, output y); endmodule").modules[0]
        assert [p.direction for p in mod.ports] == ["input"] * 3 + ["output"]

    def test_grouped_range_shared(self):
        mod = parse("module m(input [7:0] a, b); endmodule").modules[0]
        assert mod.ports[1].range is not None

    def test_non_ansi_ports(self):
        source = """
        module m(a, b);
          input a;
          output reg b;
        endmodule
        """
        mod = parse(source).modules[0]
        assert [p.name for p in mod.ports] == ["a", "b"]
        assert mod.ports[1].net_kind == "reg"

    def test_non_ansi_missing_direction_rejected(self):
        with pytest.raises(ParseError):
            parse("module m(a); endmodule")

    def test_no_ports(self):
        mod = parse("module tb; endmodule").modules[0]
        assert mod.ports == []

    def test_empty_port_list(self):
        assert parse("module tb(); endmodule").modules[0].ports == []

    def test_parameter_header(self):
        mod = parse(
            "module m #(parameter W = 8, D = 2)(input [W-1:0] a); endmodule"
        ).modules[0]
        assert [p.name for p in mod.params] == ["W", "D"]

    def test_signed_port(self):
        mod = parse("module m(input signed [7:0] a); endmodule").modules[0]
        assert mod.ports[0].signed

    def test_multiple_modules(self):
        unit = parse("module a; endmodule\nmodule b; endmodule")
        assert [m.name for m in unit.modules] == ["a", "b"]

    def test_missing_endmodule(self):
        with pytest.raises(ParseError):
            parse("module m(input a);")

    def test_junk_at_top_level(self):
        with pytest.raises(ParseError):
            parse("wire x;")

    def test_empty_source(self):
        with pytest.raises(ParseError):
            parse("  \n// nothing\n")


class TestDeclarations:
    def test_wire_reg_integer(self):
        mod = parse_module("wire w; reg r; integer i;")
        kinds = {d.name: d.kind for d in mod.decls}
        assert kinds == {"w": "wire", "r": "reg", "i": "integer"}

    def test_vector_decl(self):
        mod = parse_module("reg [7:0] data;")
        assert mod.decls[0].range is not None

    def test_memory_decl(self):
        mod = parse_module("reg [7:0] mem [0:63];")
        assert mod.decls[0].array is not None

    def test_multiple_names(self):
        mod = parse_module("wire x, y, z;")
        assert [d.name for d in mod.decls] == ["x", "y", "z"]

    def test_initialized_reg(self):
        mod = parse_module("reg r = 1'b0;")
        assert mod.decls[0].init is not None

    def test_signed_decl(self):
        mod = parse_module("reg signed [7:0] s;")
        assert mod.decls[0].signed

    def test_parameters_and_localparams(self):
        mod = parse_module("parameter A = 1, B = 2; localparam C = A + B;")
        names = [(p.name, p.is_local) for p in mod.params]
        assert names == [("A", False), ("B", False), ("C", True)]


class TestStatements:
    def test_if_else_chain(self):
        stmt = first_always("always @(posedge clk) if (q) q <= 0; else q <= 1;")
        assert isinstance(stmt, ast.EventControl)
        assert isinstance(stmt.body, ast.If)
        assert stmt.body.else_stmt is not None

    def test_begin_end_block(self):
        stmt = first_always("always @(posedge clk) begin q <= 0; q <= 1; end")
        assert isinstance(stmt.body, ast.Block)
        assert len(stmt.body.stmts) == 2

    def test_named_block(self):
        stmt = first_always("always @(posedge clk) begin : blk q <= 0; end")
        assert stmt.body.name == "blk"

    def test_case_with_default(self):
        stmt = first_always(
            "always @(posedge clk) case (q) 1'b0: q <= 1; default: q <= 0; endcase"
        )
        case = stmt.body
        assert isinstance(case, ast.Case)
        assert len(case.items) == 2
        assert case.items[1].exprs == []

    def test_casez(self):
        stmt = first_always(
            "always @(*) casez (q) 1'b?: q = 0; endcase",
        )
        assert stmt.body.kind == "casez"

    def test_case_multiple_labels(self):
        stmt = first_always(
            "always @(*) case (q) 1'b0, 1'b1: q = 0; endcase",
        )
        assert len(stmt.body.items[0].exprs) == 2

    def test_for_loop(self):
        mod = parse_module(
            "integer i;\nalways @(posedge clk) for (i = 0; i < 4; i = i + 1) q <= i;",
            header="module m(input clk, output reg [3:0] q);",
        )
        body = mod.always_blocks[0].body.body
        assert isinstance(body, ast.For)

    def test_while_and_repeat(self):
        stmt = first_always(
            "always @(posedge clk) begin while (q) q <= 0; repeat (3) q <= 1; end"
        )
        assert isinstance(stmt.body.stmts[0], ast.While)
        assert isinstance(stmt.body.stmts[1], ast.Repeat)

    def test_forever(self):
        mod = parse_module("initial forever #5 q = ~q;",
                           header="module m(output reg q);")
        assert isinstance(mod.initial_blocks[0].body, ast.Forever)

    def test_delay_statement(self):
        mod = parse_module("initial begin #10 q = 1; #5; end",
                           header="module m(output reg q);")
        block = mod.initial_blocks[0].body
        assert isinstance(block.stmts[0], ast.DelayStmt)
        assert isinstance(block.stmts[1].body, ast.NullStmt)

    def test_intra_assignment_delay(self):
        mod = parse_module("initial q = #3 1;", header="module m(output reg q);")
        assign = mod.initial_blocks[0].body
        assert assign.delay is not None

    def test_event_control_star(self):
        stmt = first_always("always @* q = 1;")
        assert stmt.senses == []

    def test_event_control_paren_star(self):
        stmt = first_always("always @(*) q = 1;")
        assert stmt.senses == []

    def test_sensitivity_list_or_and_comma(self):
        stmt = first_always("always @(posedge clk or negedge q) q <= 1;")
        assert [s.edge for s in stmt.senses] == ["posedge", "negedge"]
        stmt = first_always("always @(clk, q) q = 1;")
        assert [s.edge for s in stmt.senses] == [None, None]

    def test_nonblocking_vs_blocking(self):
        stmt = first_always("always @(posedge clk) begin q <= 1; q = 0; end")
        assert stmt.body.stmts[0].nonblocking
        assert not stmt.body.stmts[1].nonblocking

    def test_wait_statement(self):
        mod = parse_module("initial wait (q) q = 0;", header="module m(output reg q);")
        assert isinstance(mod.initial_blocks[0].body, ast.Wait)

    def test_system_task(self):
        mod = parse_module('initial $display("x=%d", 1);',
                           header="module m;")
        task = mod.initial_blocks[0].body
        assert task.name == "$display"
        assert len(task.args) == 2

    def test_concat_lvalue(self):
        stmt = first_always("always @(posedge clk) {q, q} <= 2'b01;")
        assert isinstance(stmt.body.target, ast.Concat)

    def test_unsupported_keyword_stmt(self):
        with pytest.raises(ParseError):
            parse_module("always @(posedge clk) fork q <= 1; join")


class TestExpressions:
    def assign_value(self, expr):
        mod = parse_module(f"assign b = {expr};")
        return mod.assigns[0].value

    def test_precedence_mul_over_add(self):
        node = self.assign_value("1 + 2 * 3")
        assert node.op == "+"
        assert node.rhs.op == "*"

    def test_precedence_shift_vs_compare(self):
        node = self.assign_value("a << 1 < 2")
        assert node.op == "<"
        assert node.lhs.op == "<<"

    def test_ternary_nesting(self):
        node = self.assign_value("a ? 1 : a ? 2 : 3")
        assert isinstance(node, ast.Ternary)
        assert isinstance(node.if_false, ast.Ternary)

    def test_unary_reduction(self):
        node = self.assign_value("&a")
        assert isinstance(node, ast.Unary)
        assert node.op == "&"

    def test_concat_and_replicate(self):
        node = self.assign_value("{a, 2'b01}")
        assert isinstance(node, ast.Concat)
        node = self.assign_value("{4{a}}")
        assert isinstance(node, ast.Replicate)

    def test_replicate_of_concat(self):
        node = self.assign_value("{2{a, a}}")
        assert isinstance(node, ast.Replicate)
        assert isinstance(node.value, ast.Concat)

    def test_bit_and_part_select(self):
        node = self.assign_value("a[3]")
        assert isinstance(node, ast.BitSelect)
        node = self.assign_value("a[3:1]")
        assert isinstance(node, ast.PartSelect)

    def test_indexed_part_select(self):
        node = self.assign_value("a[3 +: 2]")
        assert isinstance(node, ast.IndexedPartSelect)
        assert node.ascending
        node = self.assign_value("a[3 -: 2]")
        assert not node.ascending

    def test_system_function_call(self):
        node = self.assign_value("$signed(a)")
        assert isinstance(node, ast.SystemCall)

    def test_parenthesized(self):
        node = self.assign_value("(1 + 2) * 3")
        assert node.op == "*"
        assert node.lhs.op == "+"

    def test_number_widths(self):
        node = self.assign_value("8'hFF")
        assert node.width == 8
        assert node.value_bits == "11111111"

    def test_bare_decimal_is_32bit_signed(self):
        node = self.assign_value("5")
        assert node.width == 32
        assert node.signed

    def test_x_literal_expansion(self):
        node = self.assign_value("4'bx")
        assert node.value_bits == "xxxx"

    def test_z_hex_digit(self):
        node = self.assign_value("8'hzz")
        assert node.value_bits == "z" * 8

    def test_power_operator(self):
        node = self.assign_value("2 ** 3")
        assert node.op == "**"

    def test_missing_operand_rejected(self):
        with pytest.raises(ParseError):
            parse_module("assign b = a + ;")

    def test_unbalanced_paren_rejected(self):
        with pytest.raises(ParseError):
            parse_module("assign b = (a;")


class TestInstancesAndAssigns:
    def test_named_connections(self):
        source = """
        module child(input x, output y); assign y = x; endmodule
        module top(input a, output b);
          child c0(.x(a), .y(b));
        endmodule
        """
        top = parse(source).module("top")
        inst = top.instances[0]
        assert inst.module_name == "child"
        assert inst.connections[0].name == "x"

    def test_positional_connections(self):
        source = """
        module top(input a, output b);
          child c0(a, b);
        endmodule
        """
        inst = parse(source).module("top").instances[0]
        assert inst.connections[0].name is None

    def test_parameter_overrides(self):
        source = """
        module top;
          child #(.W(16)) c0(.x(1'b0));
        endmodule
        """
        inst = parse(source).module("top").instances[0]
        assert inst.param_overrides[0].name == "W"

    def test_unconnected_port(self):
        source = "module top; child c0(.x()); endmodule"
        inst = parse(source).module("top").instances[0]
        assert inst.connections[0].expr is None

    def test_multiple_assigns_one_statement(self):
        mod = parse_module("assign b = a, b = a;")
        assert len(mod.assigns) == 2

    def test_assign_with_delay_ignored(self):
        mod = parse_module("assign #1 b = a;")
        assert len(mod.assigns) == 1


class TestFunctions:
    def test_function_parsed(self):
        source = """
        module m(input [3:0] a, output [3:0] b);
          function [3:0] plus1;
            input [3:0] x;
            plus1 = x + 1;
          endfunction
          assign b = plus1(a);
        endmodule
        """
        mod = parse(source).modules[0]
        assert mod.functions[0].name == "plus1"
        assert len(mod.functions[0].inputs) == 1

    def test_function_with_locals(self):
        source = """
        module m(input [3:0] a, output [3:0] b);
          function [3:0] f;
            input [3:0] x;
            reg [3:0] t;
            begin t = x; f = t; end
          endfunction
          assign b = f(a);
        endmodule
        """
        mod = parse(source).modules[0]
        assert len(mod.functions[0].decls) == 1
