"""Socket-level tests for the asyncio eval service: plain routes,
NDJSON sweep streaming, live status streams, disconnect cancellation."""

import asyncio
import json
import threading
import time
import urllib.request

import pytest

from repro.api import Session
from repro.backends import BackendError, StubBackend
from repro.eval import Evaluator, SweepConfig
from repro.eval.export import sweep_result_to_dict, sweep_to_json
from repro.models import GenerationConfig
from repro.problems import PromptLevel
from repro.service import (
    AsyncEvalService,
    ServiceBackend,
    ShardCoordinator,
    iter_status_events,
    iter_sweep_events,
    stream_sweep,
)
from repro.service.aio import AsyncBackend, astream_sweep, request_json
from repro.service.sharding import shard_from_dict

SMALL = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


@pytest.fixture()
def service():
    with AsyncEvalService(Session(backend="stub-canonical"), port=0) as svc:
        yield svc


class TestPlainRoutesOverAsyncServer:
    def test_health_and_models(self, service):
        backend = ServiceBackend(url=service.url)
        assert backend.health()["status"] == "ok"
        assert backend.models() == ["stub"]

    def test_generate_roundtrip(self, service):
        backend = ServiceBackend(url=service.url)
        completions = backend.generate(
            "stub", "module m;", GenerationConfig(temperature=0.1, n=3)
        )
        assert len(completions) == 3

    def test_unknown_route_404(self, service):
        with pytest.raises(BackendError, match="404"):
            ServiceBackend(url=service.url)._transport("GET", "/teapot", None)

    def test_bad_json_body_400(self, service):
        request = urllib.request.Request(
            service.url + "/generate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_async_transport_against_real_socket(self, service):
        async def scenario():
            body = await request_json("GET", service.url + "/health")
            assert body["status"] == "ok"

        asyncio.run(scenario())


class TestSweepStream:
    def test_streamed_records_byte_identical_to_serial(self, service):
        serial = Session(backend="stub-canonical").run_sweep(SMALL)
        events = []
        result = stream_sweep(
            service.url, config=SMALL,
            on_event=lambda f: events.append(f["event"]),
        )
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)
        assert result.skipped == serial.skipped
        assert result.errors == serial.errors
        assert events[-1] == "done"
        assert events.count("record") == len(serial.sweep)

    def test_stream_with_models_and_concurrency(self, service):
        serial = Session(backend="stub-canonical").run_sweep(
            SMALL, models=["stub"]
        )
        result = stream_sweep(
            service.url, config=SMALL, models=["stub"], concurrency=4
        )
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)
        assert result.stats["concurrency"] == 4

    def test_async_client_parity(self, service):
        serial = Session(backend="stub-canonical").run_sweep(SMALL)

        async def scenario():
            return await astream_sweep(service.url, config=SMALL)

        result = asyncio.run(scenario())
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)

    def test_bad_sweep_request_is_answered_not_streamed(self, service):
        request = urllib.request.Request(
            service.url + "/sweep/stream",
            data=json.dumps(
                {"config": {"temperatures": ["hot"]}}  # undecodable config
            ).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=5)
        assert excinfo.value.code == 400
        assert "bad sweep request" in json.loads(excinfo.value.read())["error"]

    def test_unknown_model_streams_job_errors_not_half_a_stream(self, service):
        # stub capabilities are permissive, so an unknown model plans
        # fine and fails at generation: the stream must still terminate
        # losslessly, with every job as an explicit job_error frame
        result = stream_sweep(service.url, config=SMALL,
                              models=["no-such-model"])
        assert len(result.sweep) == 0
        assert result.errors
        assert all("no-such-model" in e.error or "serves" in e.error
                   for e in result.errors)

    def test_disconnect_cancels_in_flight_jobs(self):
        class SlowAsyncStub(AsyncBackend):
            name = "slow-stub"

            def __init__(self):
                self.stub = StubBackend()
                self.calls = 0
                self.completed = 0
                self.cancelled = 0

            def models(self):
                return self.stub.models()

            def capabilities(self, model):
                return self.stub.capabilities(model)

            async def generate_async(self, model, prompt, config):
                self.calls += 1
                call = self.calls
                try:
                    await asyncio.sleep(0.01 if call == 1 else 30.0)
                    result = self.stub.generate(model, prompt, config)
                    self.completed += 1
                    return result
                except asyncio.CancelledError:
                    self.cancelled += 1
                    raise

        backend = SlowAsyncStub()
        session = Session(backend=backend)
        with AsyncEvalService(session, port=0) as svc:
            events = iter_sweep_events(svc.url, config=SMALL, concurrency=2)
            for frame in events:
                if frame["event"] == "record":
                    break
            events.close()  # closes the HTTP connection mid-stream
            deadline = time.monotonic() + 10
            while backend.cancelled == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
        assert backend.cancelled >= 1
        assert backend.completed == 1


class TestStatusStream:
    @staticmethod
    def _coordinated_service(num_shards=3):
        session = Session(backend="stub-canonical")
        coordinator = ShardCoordinator(
            session.plan_shards(num_shards, SMALL), lease_seconds=60
        )
        return session, AsyncEvalService(
            session, port=0, coordinator=coordinator
        )

    def test_enriched_status_route(self):
        session, svc = self._coordinated_service()
        with svc:
            status = ServiceBackend(url=svc.url)._transport(
                "GET", "/shard/status", None
            )
            assert status["jobs_total"] == sum(
                row["jobs"] for row in status["shards"]
            )
            assert status["store_hits"] == 0
            assert [row["state"] for row in status["shards"]] == [
                "pending"
            ] * 3
            lease = svc.coordinator.next_shard("w1")
            shard = shard_from_dict(lease["shard"])
            result = session.run_plan(shard.plan)
            payload = sweep_result_to_dict(result)
            payload["stats"]["evaluator_cache"] = {"store_hits": 7}
            svc.coordinator.submit_result(lease["lease_id"], payload)
            status = ServiceBackend(url=svc.url)._transport(
                "GET", "/shard/status", None
            )
            row = status["shards"][shard.shard_index]
            assert row["state"] == "done"
            assert row["records"] == len(result.sweep)
            assert row["worker_id"] == "w1"
            assert status["store_hits"] == 7
            assert status["jobs_done"] == len(shard.plan.jobs)

    def test_status_stream_observes_progress_to_done(self):
        session, svc = self._coordinated_service(num_shards=2)
        frames = []
        with svc:
            consumer_error = []
            first_frame = threading.Event()

            def consume():
                try:
                    for frame in iter_status_events(svc.url, poll=0.02):
                        frames.append(frame)
                        first_frame.set()
                except Exception as exc:  # noqa: BLE001 — assert later
                    consumer_error.append(exc)
                    first_frame.set()

            thread = threading.Thread(target=consume)
            thread.start()
            # observe the idle coordinator before any work lands, so the
            # stream provably captures the progression, not just the end
            assert first_frame.wait(timeout=10)
            summary = session.work(url=svc.url, worker_id="streamer")
            thread.join(timeout=10)
            assert not thread.is_alive(), "status stream never terminated"
        assert not consumer_error
        assert summary["shards"] == 2
        assert frames and frames[-1]["event"] == "status"
        assert frames[-1]["complete"] is True
        assert frames[-1]["done"] == 2
        assert frames[0]["done"] < 2  # we watched it progress
        status_frames = [f for f in frames if f["event"] == "status"]
        assert all("shards" in f for f in status_frames)
        # merges interleave observational metric frames (worker
        # throughput aggregates) between status frames
        metric_frames = [f for f in frames if f["event"] == "metric"]
        assert metric_frames, "no metric frame observed after merges"
        workers = metric_frames[-1]["metrics"]["workers"]
        assert workers and workers[0]["worker_id"] == "streamer"
        assert workers[0]["jobs"] > 0

    def test_status_stream_without_coordinator_is_400(self, service):
        with pytest.raises(BackendError, match="no shard coordinator"):
            list(iter_status_events(service.url))

    def test_malformed_stream_lines_raise_protocol_error(self, service):
        from repro.service import StreamProtocolError
        from repro.service.aio import decode_stream

        with pytest.raises(StreamProtocolError):
            list(decode_stream([b'{"event": "record"}']))


class TestRequestHygiene:
    def test_bad_content_length_gets_400(self, service):
        import socket

        with socket.create_connection(
            ("127.0.0.1", service.port), timeout=5
        ) as sock:
            sock.sendall(
                b"POST /generate HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: abc\r\n\r\n"
            )
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"Content-Length" in response

    def test_stream_cli_notes_ignored_local_flags(self, service, capsys):
        from repro.cli import main

        code = main([
            "sweep", "--stream", "--url", service.url,
            "--problems", "1", "--temperatures", "0.1", "--n", "2",
            "--levels", "L", "--retries", "3", "--executor", "process",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "--retries" in out and "--executor" in out
        assert "ignored by --stream" in out


class TestStreamedShardSubmission:
    """Tentpole: POST /shard/result/stream + the asyncio worker fleet."""

    @staticmethod
    def _coordinated(lease_jobs=None, num_shards=2):
        session = Session(backend="stub-canonical")
        coordinator = ShardCoordinator(
            session.plan_shards(num_shards, SMALL),
            lease_seconds=60,
            lease_jobs=lease_jobs,
        )
        return session, coordinator

    def test_async_worker_streams_units_with_parity(self):
        from repro.service import run_worker_async

        serial = Session(backend="stub-canonical").run_sweep(SMALL)
        _, coordinator = self._coordinated(lease_jobs=2)
        svc = AsyncEvalService(
            Session(backend="stub-canonical"), port=0,
            coordinator=coordinator,
        )
        url = svc.start()
        try:
            summary = asyncio.run(
                run_worker_async(
                    url,
                    session=Session(backend="stub-canonical"),
                    max_leases=3,
                    max_idle_polls=50,
                    poll_seconds=0.02,
                )
            )
        finally:
            svc.stop()
        assert summary["shards"] == coordinator.num_units
        assert summary["streamed"] == coordinator.num_units
        merged = coordinator.result()
        assert sweep_to_json(merged.sweep) == sweep_to_json(serial.sweep)
        assert merged.skipped == serial.skipped
        assert merged.errors == serial.errors

    def test_async_worker_falls_back_on_sync_coordinator(self):
        # a coordinator served by the *sync* EvalService has no stream
        # route: the worker's buffered frames submit blockingly instead,
        # and no executed work is lost
        from repro.service import EvalService, run_worker_async

        serial = Session(backend="stub-canonical").run_sweep(SMALL)
        session, coordinator = self._coordinated(lease_jobs=3)
        svc = EvalService(session, port=0, coordinator=coordinator)
        url = svc.start()
        try:
            summary = asyncio.run(
                run_worker_async(
                    url,
                    session=Session(backend="stub-canonical"),
                    max_leases=2,
                    max_idle_polls=50,
                    poll_seconds=0.02,
                )
            )
        finally:
            svc.stop()
        assert summary["streamed"] == 0
        assert summary["shards"] == coordinator.num_units
        merged = coordinator.result()
        assert sweep_to_json(merged.sweep) == sweep_to_json(serial.sweep)

    def test_status_shows_partial_progress_for_inflight_stream(self):
        """Acceptance: /shard/status reports an in-flight streaming
        worker's records before its unit commits."""
        from repro.service.aio import (
            open_upload,
            read_upload_response,
            result_to_frames,
        )
        from repro.service.aio.events import encode_frame

        session, coordinator = self._coordinated(lease_jobs=4)
        svc = AsyncEvalService(session, port=0, coordinator=coordinator)
        url = svc.start()
        try:
            lease = coordinator.next_shard("uploader")
            shard = shard_from_dict(lease["shard"])
            frames = result_to_frames(shard.plan, session.run_plan(shard.plan))
            records = [f for f in frames if f["event"] == "record"]

            async def scenario():
                reader, writer = await open_upload(
                    "POST",
                    url + "/shard/result/stream?lease_id="
                    + lease["lease_id"],
                )
                try:
                    # upload everything but the terminal frame, then ask
                    # for status on a separate connection
                    for frame in frames[:-1]:
                        writer.write(encode_frame(frame))
                        await writer.drain()
                    deadline = asyncio.get_running_loop().time() + 10
                    while True:
                        status = await request_json(
                            "GET", url + "/shard/status"
                        )
                        if status["records_streaming"] == len(records):
                            break
                        assert (
                            asyncio.get_running_loop().time() < deadline
                        ), f"partial progress never appeared: {status}"
                        await asyncio.sleep(0.02)
                    assert status["records_merged"] == 0
                    assert status["leases"][0]["records_streamed"] == len(
                        records
                    )
                    writer.write(encode_frame(frames[-1]))  # terminal
                    await writer.drain()
                    ack = await read_upload_response(reader, url)
                finally:
                    writer.close()
                return ack

            ack = asyncio.run(scenario())
            assert ack["accepted"] is True
            status = coordinator.status()
            assert status["records_streaming"] == 0
            assert status["records_merged"] == len(records)
        finally:
            svc.stop()

    def test_stream_submit_requires_lease_id_and_known_lease(self):
        from repro.service.aio import submit_result_stream

        session, coordinator = self._coordinated()
        svc = AsyncEvalService(session, port=0, coordinator=coordinator)
        url = svc.start()
        try:
            async def no_lease():
                await submit_result_stream(url, "lease-99-s0", [])

            with pytest.raises(BackendError, match="unknown lease"):
                asyncio.run(no_lease())
        finally:
            svc.stop()

    def test_malformed_stream_line_is_answered_400(self):
        from repro.service.aio import open_upload, read_upload_response

        session, coordinator = self._coordinated()
        svc = AsyncEvalService(session, port=0, coordinator=coordinator)
        url = svc.start()
        try:
            lease = coordinator.next_shard("w")

            async def scenario():
                reader, writer = await open_upload(
                    "POST",
                    url + "/shard/result/stream?lease_id="
                    + lease["lease_id"],
                )
                try:
                    writer.write(b"{not json}\n")
                    await writer.drain()
                    await read_upload_response(reader, url)
                finally:
                    writer.close()

            with pytest.raises(BackendError, match="400"):
                asyncio.run(scenario())
            # the unit stays leased for the lease clock to re-serve
            assert coordinator.status()["leased"] == 1
        finally:
            svc.stop()

    def test_oversized_frames_stream_through(self):
        # asyncio's default readline limit is 64 KiB; the stream routes
        # must accept frames far larger than one socket buffer
        from repro.service.aio import result_to_frames, submit_result_stream

        session, coordinator = self._coordinated(lease_jobs=4)
        svc = AsyncEvalService(session, port=0, coordinator=coordinator)
        url = svc.start()
        try:
            lease = coordinator.next_shard("bulk")
            shard = shard_from_dict(lease["shard"])
            frames = result_to_frames(
                shard.plan, session.run_plan(shard.plan)
            )
            for frame in frames:
                if frame["event"] == "record":
                    frame["padding"] = "x" * 200_000  # decoder ignores it
                    break
            ack = asyncio.run(
                submit_result_stream(url, lease["lease_id"], frames)
            )
            assert ack["accepted"] is True
        finally:
            svc.stop()
