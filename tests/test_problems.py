"""Integration tests for the 17-problem benchmark set (repro.problems).

These are the core correctness guarantees of the reproduction:
* the set matches the paper's Table II (count, difficulty split, topics);
* every canonical solution compiles and passes its test bench at every
  prompt level;
* every wrong variant compiles but fails its test bench;
* every syntax mutator produces code the compile gate rejects.
"""

import random

import pytest

from repro.models.mutations import SYNTAX_MUTATORS
from repro.problems import (
    ALL_PROBLEMS,
    DIFFICULTY_COUNTS,
    Difficulty,
    PASS_MARKER,
    PromptLevel,
    get_problem,
    problems_by_difficulty,
)
from repro.verilog import compile_design, run_simulation


class TestTable2Shape:
    def test_seventeen_problems(self):
        assert len(ALL_PROBLEMS) == 17

    def test_numbers_are_1_to_17(self):
        assert [p.number for p in ALL_PROBLEMS] == list(range(1, 18))

    def test_difficulty_split_matches_paper(self):
        for difficulty, count in DIFFICULTY_COUNTS.items():
            assert len(problems_by_difficulty(difficulty)) == count

    def test_basic_problems_are_1_to_4(self):
        assert [p.number for p in problems_by_difficulty(Difficulty.BASIC)] == [
            1, 2, 3, 4,
        ]

    def test_advanced_problems_are_13_to_17(self):
        numbers = [p.number for p in problems_by_difficulty(Difficulty.ADVANCED)]
        assert numbers == [13, 14, 15, 16, 17]

    def test_lookup_by_number_and_slug(self):
        assert get_problem(6).slug == "counter_1_to_12"
        assert get_problem("abro").number == 17
        with pytest.raises(KeyError):
            get_problem(99)
        with pytest.raises(KeyError):
            get_problem("nope")

    def test_unique_module_names(self):
        names = [p.module_name for p in ALL_PROBLEMS]
        assert len(set(names)) == len(names)

    def test_every_problem_has_wrong_variants(self):
        for problem in ALL_PROBLEMS:
            assert problem.wrong_variants, problem.slug


class TestPrompts:
    def test_three_levels_each(self):
        for problem in ALL_PROBLEMS:
            assert set(problem.prompts) == set(PromptLevel)

    def test_levels_strictly_increase_in_detail(self):
        for problem in ALL_PROBLEMS:
            low = problem.prompt(PromptLevel.LOW)
            medium = problem.prompt(PromptLevel.MEDIUM)
            high = problem.prompt(PromptLevel.HIGH)
            assert len(low) < len(medium) < len(high), problem.slug

    def test_medium_extends_low_and_high_extends_medium(self):
        for problem in ALL_PROBLEMS:
            low = problem.prompt(PromptLevel.LOW)
            medium = problem.prompt(PromptLevel.MEDIUM)
            high = problem.prompt(PromptLevel.HIGH)
            assert medium.startswith(low), problem.slug
            assert high.startswith(medium), problem.slug

    def test_prompt_contains_module_header(self):
        for problem in ALL_PROBLEMS:
            assert f"module {problem.module_name}" in problem.prompt(
                PromptLevel.LOW
            ), problem.slug

    def test_prompt_alone_does_not_compile(self):
        # the prompt ends mid-module; only prompt+completion parses
        for problem in ALL_PROBLEMS:
            report = compile_design(problem.prompt(PromptLevel.LOW))
            assert not report.ok, problem.slug


@pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.slug)
class TestCanonicalSolutions:
    def test_canonical_compiles(self, problem):
        report = compile_design(
            problem.canonical_source(), top=problem.module_name
        )
        assert report.ok, report.errors

    @pytest.mark.parametrize("level", list(PromptLevel), ids=str)
    def test_canonical_passes_testbench(self, problem, level):
        source = problem.bench_source(problem.canonical_body, level)
        report, result = run_simulation(source, top="tb")
        assert report.ok, report.errors
        assert result is not None
        assert result.finished, "test bench must reach $finish"
        assert PASS_MARKER in result.text, result.text
        assert "FAIL" not in result.text


@pytest.mark.parametrize(
    "problem,variant",
    [(p, wv) for p in ALL_PROBLEMS for wv in p.wrong_variants],
    ids=lambda x: getattr(x, "slug", None) or getattr(x, "name", None),
)
class TestWrongVariants:
    def test_variant_compiles(self, problem, variant):
        report = compile_design(
            problem.full_source(variant.body), top=problem.module_name
        )
        assert report.ok, (problem.slug, variant.name, report.errors)

    def test_variant_fails_testbench(self, problem, variant):
        source = problem.bench_source(variant.body)
        report, result = run_simulation(source, top="tb")
        assert report.ok
        if result is None:
            return  # died at runtime: certainly not a pass
        assert PASS_MARKER not in result.text, (problem.slug, variant.name)


@pytest.mark.parametrize("mutator", SYNTAX_MUTATORS, ids=lambda m: m.__name__)
def test_every_syntax_mutator_breaks_every_problem(mutator):
    rng = random.Random(1234)
    for problem in ALL_PROBLEMS:
        for _ in range(2):
            broken = mutator(problem.canonical_body, rng)
            source = problem.full_source(broken)
            report = compile_design(source, top=None)
            assert not report.ok, (problem.slug, mutator.__name__, broken)


class TestSourceAssembly:
    def test_full_source_strips_redundant_whitespace(self):
        problem = get_problem(1)
        source = problem.full_source("  assign out = in;\nendmodule\n\n\n")
        assert source.endswith("endmodule\n")

    def test_bench_source_contains_both_modules(self):
        problem = get_problem(2)
        bench = problem.bench_source(problem.canonical_body)
        assert "module and_gate" in bench
        assert "module tb" in bench

    def test_str_mentions_number_and_difficulty(self):
        text = str(get_problem(13))
        assert "13" in text
        assert "advanced" in text
