"""Tests for the cross-process verdict store (repro.eval.store) and its
Evaluator / executor / Session integration."""

import pickle

import pytest

from repro.api import Session
from repro.backends import create_backend
from repro.eval import (
    CompletionEvaluation,
    Evaluator,
    SweepConfig,
    SweepExecutor,
    SweepPlanner,
    VerdictStore,
    resolve_store,
)
from repro.models.base import stable_hash
from repro.problems import PromptLevel, get_problem
from repro.service import ProcessPoolSweepExecutor

SMALL = SweepConfig(
    temperatures=(0.1,),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


class CountingEvaluator(Evaluator):
    """Evaluator that counts real compile+simulate invocations."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.uncached_calls = 0

    def _evaluate_uncached(self, problem, truncated, level):
        self.uncached_calls += 1
        return super()._evaluate_uncached(problem, truncated, level)


class TestVerdictStore:
    def test_round_trip(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        verdict = CompletionEvaluation(
            compiled=False, passed=False,
            compile_errors=("syntax error", "unexpected token"),
        )
        store.put(3, 12345, verdict)
        assert store.get(3, 12345) == verdict
        assert len(store) == 1

    def test_missing_key_is_none(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        assert store.get(1, 999) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.put(1, 7, CompletionEvaluation(compiled=True, passed=True))
        with open(store._entry_path(1, 7), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.get(1, 7) is None

    def test_vanished_directory_degrades_not_raises(self, tmp_path):
        store = VerdictStore(str(tmp_path / "gone"))
        import shutil

        shutil.rmtree(store.path)
        store.put(1, 7, CompletionEvaluation(compiled=True, passed=True))
        assert store.get(1, 7) is None
        assert len(store) == 0

    def test_clear(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        for key in range(3):
            store.put(1, key, CompletionEvaluation(compiled=True, passed=True))
        assert store.clear() == 3
        assert len(store) == 0

    def test_picklable(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.put(1, 1, CompletionEvaluation(compiled=True, passed=False))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.get(1, 1) == store.get(1, 1)

    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        store = VerdictStore(str(tmp_path))
        assert resolve_store(store) is store
        coerced = resolve_store(str(tmp_path))
        assert isinstance(coerced, VerdictStore)
        assert coerced.path == str(tmp_path)


class TestEvaluatorIntegration:
    def test_store_hit_skips_recompilation(self, tmp_path):
        """Acceptance: a warm store avoids compile+simulate entirely."""
        store = VerdictStore(str(tmp_path))
        problem = get_problem(1)
        completion = problem.canonical_body

        first = CountingEvaluator(store=store)
        verdict = first.evaluate(problem, completion)
        assert first.uncached_calls == 1
        assert len(store) == 1

        second = CountingEvaluator(store=store)  # fresh process stand-in
        assert second.evaluate(problem, completion) == verdict
        assert second.uncached_calls == 0
        assert second.store_hits == 1
        assert second.cache_info["store_hits"] == 1
        # now in the memory cache: third evaluation touches neither
        second.evaluate(problem, completion)
        assert second.cache_hits == 1 and second.store_hits == 1

    def test_cache_info_shape_without_store(self):
        assert "store_hits" not in Evaluator().cache_info

    def test_sweep_executors_share_store(self, tmp_path):
        backend = create_backend("zoo")
        plan = SweepPlanner(backend).plan(SMALL, models=["codegen-6b-ft"])
        store = VerdictStore(str(tmp_path))

        cold = CountingEvaluator(store=store)
        baseline = SweepExecutor(backend, evaluator=cold).run(plan)
        assert cold.uncached_calls > 0

        warm = CountingEvaluator(store=store)
        rerun = SweepExecutor(backend, evaluator=warm).run(plan)
        assert warm.uncached_calls == 0
        assert warm.store_hits == cold.uncached_calls
        assert rerun.sweep.records == baseline.sweep.records

    def test_process_pool_workers_write_the_shared_store(self, tmp_path):
        backend = create_backend("zoo")
        plan = SweepPlanner(backend).plan(SMALL, models=["codegen-6b-ft"])
        store = VerdictStore(str(tmp_path))
        result = ProcessPoolSweepExecutor(
            backend, workers=2, store=store
        ).run(plan)
        assert len(result.sweep) > 0
        assert len(store) > 0
        # a local evaluator warm-starts from what the workers persisted
        warm = CountingEvaluator(store=store)
        SweepExecutor(backend, evaluator=warm).run(plan)
        assert warm.uncached_calls == 0

    def test_store_key_matches_truncated_completion(self, tmp_path):
        # the store key is the truncated text's hash: trailing junk after
        # endmodule must not produce a second entry
        from repro.eval import truncate_completion

        store = VerdictStore(str(tmp_path))
        problem = get_problem(1)
        completion = problem.canonical_body
        evaluator = Evaluator(store=store)
        evaluator.evaluate(problem, completion)
        noisy = completion + "\n// trailing explanation prose"
        assert truncate_completion(noisy) == truncate_completion(completion)
        fresh = Evaluator(store=store)
        fresh.evaluate(problem, noisy)
        assert fresh.store_hits == 1
        assert store.get(
            problem.number, stable_hash(truncate_completion(completion))
        ) is not None


class TestSessionIntegration:
    def test_session_store_warm_start(self, tmp_path):
        path = str(tmp_path / "verdicts")
        first = Session(backend="zoo", store=path)
        baseline = first.run_sweep(SMALL, models=["codegen-6b-ft"])
        assert first.evaluator.store_hits == 0
        assert len(first.store) > 0

        second = Session(backend="zoo", store=path)
        rerun = second.run_sweep(SMALL, models=["codegen-6b-ft"])
        assert second.evaluator.store_hits > 0
        assert second.evaluator.cache_misses == 0
        assert rerun.sweep.records == baseline.sweep.records

    def test_session_attaches_store_to_existing_evaluator(self, tmp_path):
        evaluator = Evaluator()
        session = Session(
            backend="stub", evaluator=evaluator, store=str(tmp_path)
        )
        assert evaluator.store is session.store
        assert session.store.path == str(tmp_path)

    def test_session_process_executor_gets_store(self, tmp_path):
        session = Session(
            backend="zoo", executor="process", workers=2, store=str(tmp_path)
        )
        executor = session.make_executor()
        assert executor.store is session.store


class TestPackedFormat:
    """Satellite: fold the one-file-per-verdict directory into a single
    append-friendly JSONL the store reads through (inode hygiene)."""

    @staticmethod
    def _seed(store, count=6, problem=1):
        verdicts = {}
        for index in range(count):
            verdict = CompletionEvaluation(
                compiled=True, passed=bool(index % 2)
            )
            store.put(problem, index, verdict)
            verdicts[index] = verdict
        return verdicts

    def test_pack_reads_through_and_drops_files(self, tmp_path):
        import os

        store = VerdictStore(str(tmp_path / "verdicts"))
        verdicts = self._seed(store)
        packed = store.pack()
        assert packed == 6
        names = os.listdir(store.path)
        assert names == ["pack.jsonl"]  # every entry file folded in
        assert len(store) == 6
        for index, verdict in verdicts.items():
            assert store.get(1, index) == verdict
        assert store.get(1, 999) is None

    def test_fresh_writes_shadow_the_pack(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=3)
        store.pack()
        newer = CompletionEvaluation(compiled=False, passed=False)
        store.put(1, 0, newer)  # individual file again: strictly newer
        assert store.get(1, 0) == newer
        assert len(store) == 3  # same key, counted once
        assert store.pack() == 1  # folds the fresh file back in
        assert store.get(1, 0) == newer  # later pack lines win

    def test_unpack_restores_files_and_removes_pack(self, tmp_path):
        import os

        store = VerdictStore(str(tmp_path / "verdicts"))
        verdicts = self._seed(store, count=4)
        store.pack()
        restored = store.unpack()
        assert restored == 4
        assert "pack.jsonl" not in os.listdir(store.path)
        assert len(store) == 4
        for index, verdict in verdicts.items():
            assert store.get(1, index) == verdict

    def test_corrupt_pack_lines_read_as_misses(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=2)
        store.pack()
        with open(store.pack_path, "a", encoding="utf-8") as handle:
            handle.write("{torn line\n")
        good = CompletionEvaluation(compiled=True, passed=True)
        store.put(2, 7, good)
        store.pack()
        assert store.get(1, 0) is not None  # pre-corruption entries fine
        assert store.get(2, 7) == good      # post-corruption appends fine

    def test_another_process_sees_a_new_pack(self, tmp_path):
        path = str(tmp_path / "verdicts")
        writer = VerdictStore(path)
        reader = VerdictStore(path)
        self._seed(writer, count=2)
        assert reader.get(1, 0) is not None  # via the entry file
        writer.pack()
        assert reader.get(1, 1) is not None  # via the (new) pack file

    def test_clear_removes_packed_entries_too(self, tmp_path):
        import os

        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=5)
        store.pack()
        self._seed(store, count=2, problem=3)
        assert store.clear() == 7
        assert len(store) == 0
        assert os.listdir(store.path) == []

    def test_packed_store_still_pickles(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=2)
        store.pack()
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get(1, 1) is not None

    def test_stats_counts_both_forms(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=3)
        store.pack()
        self._seed(store, count=1, problem=5)
        stats = store.stats()
        assert stats == {
            "entries": 4,
            "files": 1,
            "packed": 3,
            "pack_file": store.pack_path,
        }

    def test_evaluator_reads_through_packed_store(self, tmp_path):
        problem = get_problem(1)
        completion = problem.canonical_body
        store = VerdictStore(str(tmp_path / "verdicts"))
        warm = CountingEvaluator(store=store)
        warm.evaluate(problem, completion)
        assert warm.uncached_calls == 1
        store.pack()
        cold = CountingEvaluator(store=VerdictStore(store.path))
        cold.evaluate(problem, completion)
        assert cold.uncached_calls == 0  # verdict came from the pack
        assert cold.store_hits == 1

    def test_pack_spares_foreign_files(self, tmp_path):
        import json
        import os

        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=2)
        foreign = os.path.join(store.path, "notes.json")
        with open(foreign, "w", encoding="utf-8") as handle:
            json.dump({"todo": "not a verdict"}, handle)
        assert store.pack() == 2  # only the real verdicts folded
        assert os.path.exists(foreign)  # foreign file left untouched
        assert "notes" not in store.keys()

    def test_unpack_keeps_pack_on_partial_failure(self, tmp_path, monkeypatch):
        import os

        store = VerdictStore(str(tmp_path / "verdicts"))
        self._seed(store, count=3)
        store.pack()
        real_replace = os.replace
        calls = {"n": 0}

        def flaky_replace(src, dst):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("disk full")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        assert store.unpack() == 2  # one restore failed
        monkeypatch.undo()
        assert os.path.exists(store.pack_path)  # verdicts not lost
        assert len(store) == 3
        assert store.unpack() == 1  # second attempt finishes the job
        assert not os.path.exists(store.pack_path)


class TestPackCompaction:
    """Satellite: pack() appends forever; compact() rewrites the pack
    with one line per live key, atomically and idempotently."""

    @staticmethod
    def _pack_lines(store):
        with open(store.pack_path, encoding="utf-8") as handle:
            return [line for line in handle if line.strip()]

    def test_repeated_pack_cycles_leave_duplicates_compact_removes(
        self, tmp_path
    ):
        store = VerdictStore(str(tmp_path))
        verdicts = {
            key: CompletionEvaluation(compiled=True, passed=bool(key % 2))
            for key in range(4)
        }
        for cycle in range(3):
            for key, verdict in verdicts.items():
                store.put(1, key, verdict)
            store.pack()
        assert len(self._pack_lines(store)) == 12  # 3 cycles x 4 keys
        removed = store.compact()
        assert removed == 8
        assert len(self._pack_lines(store)) == 4
        for key, verdict in verdicts.items():
            assert store.get(1, key) == verdict
        assert store.compact() == 0  # idempotent
        assert len(store) == 4

    def test_compact_without_pack_is_noop(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        assert store.compact() == 0
        store.put(1, 1, CompletionEvaluation(compiled=True, passed=True))
        assert store.compact() == 0  # files only, still no pack

    def test_compact_drops_corrupt_lines(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.put(1, 1, CompletionEvaluation(compiled=True, passed=True))
        store.pack()
        with open(store.pack_path, "a", encoding="utf-8") as handle:
            handle.write("{torn line\n")
        assert store.compact() == 1
        assert store.get(1, 1) is not None

    def test_compact_is_atomic_no_temp_left(self, tmp_path):
        import os

        store = VerdictStore(str(tmp_path))
        for key in range(3):
            store.put(1, key, CompletionEvaluation(compiled=True, passed=True))
            store.pack()  # one pack per put -> no duplicates yet
            store.put(1, key, CompletionEvaluation(compiled=True, passed=True))
        store.pack()
        store.compact()
        assert not [n for n in os.listdir(tmp_path) if ".tmp-" in n]

    def test_cli_store_compact(self, tmp_path, capsys):
        from repro.cli import main

        store = VerdictStore(str(tmp_path))
        for _ in range(2):
            store.put(2, 9, CompletionEvaluation(compiled=True, passed=True))
            store.pack()
        code = main(["store", "compact", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "dropped 1 dead line" in out
        assert main(["store", "compact", str(tmp_path)]) == 0
        assert "dropped 0 dead line" in capsys.readouterr().out


class TestClearAccounting:
    """Satellite regression: clear() must not count keys that survive a
    failed pack unlink as removed."""

    def test_clear_counts_packed_keys_once(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        for key in range(3):
            store.put(1, key, CompletionEvaluation(compiled=True, passed=True))
        store.pack()
        store.put(1, 99, CompletionEvaluation(compiled=True, passed=False))
        assert store.clear() == 4
        assert len(store) == 0

    def test_failed_pack_unlink_not_counted_as_removed(
        self, tmp_path, monkeypatch
    ):
        import os

        store = VerdictStore(str(tmp_path))
        for key in range(3):
            store.put(1, key, CompletionEvaluation(compiled=True, passed=True))
        store.pack()  # all three keys now live only in the pack
        store.put(1, 99, CompletionEvaluation(compiled=True, passed=False))

        real_unlink = os.unlink

        def stubborn_pack(path, *args, **kwargs):
            if str(path) == store.pack_path:
                raise PermissionError("pack is read-only")
            return real_unlink(path, *args, **kwargs)

        monkeypatch.setattr(os, "unlink", stubborn_pack)
        removed = store.clear()
        assert removed == 1  # only the un-packed file actually went away
        assert len(store) == 3  # packed verdicts still readable
        assert store.get(1, 0) is not None
