"""Tests for the cross-process verdict store (repro.eval.store) and its
Evaluator / executor / Session integration."""

import pickle

import pytest

from repro.api import Session
from repro.backends import create_backend
from repro.eval import (
    CompletionEvaluation,
    Evaluator,
    SweepConfig,
    SweepExecutor,
    SweepPlanner,
    VerdictStore,
    resolve_store,
)
from repro.models.base import stable_hash
from repro.problems import PromptLevel, get_problem
from repro.service import ProcessPoolSweepExecutor

SMALL = SweepConfig(
    temperatures=(0.1,),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


class CountingEvaluator(Evaluator):
    """Evaluator that counts real compile+simulate invocations."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.uncached_calls = 0

    def _evaluate_uncached(self, problem, truncated, level):
        self.uncached_calls += 1
        return super()._evaluate_uncached(problem, truncated, level)


class TestVerdictStore:
    def test_round_trip(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        verdict = CompletionEvaluation(
            compiled=False, passed=False,
            compile_errors=("syntax error", "unexpected token"),
        )
        store.put(3, 12345, verdict)
        assert store.get(3, 12345) == verdict
        assert len(store) == 1

    def test_missing_key_is_none(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        assert store.get(1, 999) is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.put(1, 7, CompletionEvaluation(compiled=True, passed=True))
        with open(store._entry_path(1, 7), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert store.get(1, 7) is None

    def test_vanished_directory_degrades_not_raises(self, tmp_path):
        store = VerdictStore(str(tmp_path / "gone"))
        import shutil

        shutil.rmtree(store.path)
        store.put(1, 7, CompletionEvaluation(compiled=True, passed=True))
        assert store.get(1, 7) is None
        assert len(store) == 0

    def test_clear(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        for key in range(3):
            store.put(1, key, CompletionEvaluation(compiled=True, passed=True))
        assert store.clear() == 3
        assert len(store) == 0

    def test_picklable(self, tmp_path):
        store = VerdictStore(str(tmp_path))
        store.put(1, 1, CompletionEvaluation(compiled=True, passed=False))
        clone = pickle.loads(pickle.dumps(store))
        assert clone.path == store.path
        assert clone.get(1, 1) == store.get(1, 1)

    def test_resolve_store(self, tmp_path):
        assert resolve_store(None) is None
        store = VerdictStore(str(tmp_path))
        assert resolve_store(store) is store
        coerced = resolve_store(str(tmp_path))
        assert isinstance(coerced, VerdictStore)
        assert coerced.path == str(tmp_path)


class TestEvaluatorIntegration:
    def test_store_hit_skips_recompilation(self, tmp_path):
        """Acceptance: a warm store avoids compile+simulate entirely."""
        store = VerdictStore(str(tmp_path))
        problem = get_problem(1)
        completion = problem.canonical_body

        first = CountingEvaluator(store=store)
        verdict = first.evaluate(problem, completion)
        assert first.uncached_calls == 1
        assert len(store) == 1

        second = CountingEvaluator(store=store)  # fresh process stand-in
        assert second.evaluate(problem, completion) == verdict
        assert second.uncached_calls == 0
        assert second.store_hits == 1
        assert second.cache_info["store_hits"] == 1
        # now in the memory cache: third evaluation touches neither
        second.evaluate(problem, completion)
        assert second.cache_hits == 1 and second.store_hits == 1

    def test_cache_info_shape_without_store(self):
        assert "store_hits" not in Evaluator().cache_info

    def test_sweep_executors_share_store(self, tmp_path):
        backend = create_backend("zoo")
        plan = SweepPlanner(backend).plan(SMALL, models=["codegen-6b-ft"])
        store = VerdictStore(str(tmp_path))

        cold = CountingEvaluator(store=store)
        baseline = SweepExecutor(backend, evaluator=cold).run(plan)
        assert cold.uncached_calls > 0

        warm = CountingEvaluator(store=store)
        rerun = SweepExecutor(backend, evaluator=warm).run(plan)
        assert warm.uncached_calls == 0
        assert warm.store_hits == cold.uncached_calls
        assert rerun.sweep.records == baseline.sweep.records

    def test_process_pool_workers_write_the_shared_store(self, tmp_path):
        backend = create_backend("zoo")
        plan = SweepPlanner(backend).plan(SMALL, models=["codegen-6b-ft"])
        store = VerdictStore(str(tmp_path))
        result = ProcessPoolSweepExecutor(
            backend, workers=2, store=store
        ).run(plan)
        assert len(result.sweep) > 0
        assert len(store) > 0
        # a local evaluator warm-starts from what the workers persisted
        warm = CountingEvaluator(store=store)
        SweepExecutor(backend, evaluator=warm).run(plan)
        assert warm.uncached_calls == 0

    def test_store_key_matches_truncated_completion(self, tmp_path):
        # the store key is the truncated text's hash: trailing junk after
        # endmodule must not produce a second entry
        from repro.eval import truncate_completion

        store = VerdictStore(str(tmp_path))
        problem = get_problem(1)
        completion = problem.canonical_body
        evaluator = Evaluator(store=store)
        evaluator.evaluate(problem, completion)
        noisy = completion + "\n// trailing explanation prose"
        assert truncate_completion(noisy) == truncate_completion(completion)
        fresh = Evaluator(store=store)
        fresh.evaluate(problem, noisy)
        assert fresh.store_hits == 1
        assert store.get(
            problem.number, stable_hash(truncate_completion(completion))
        ) is not None


class TestSessionIntegration:
    def test_session_store_warm_start(self, tmp_path):
        path = str(tmp_path / "verdicts")
        first = Session(backend="zoo", store=path)
        baseline = first.run_sweep(SMALL, models=["codegen-6b-ft"])
        assert first.evaluator.store_hits == 0
        assert len(first.store) > 0

        second = Session(backend="zoo", store=path)
        rerun = second.run_sweep(SMALL, models=["codegen-6b-ft"])
        assert second.evaluator.store_hits > 0
        assert second.evaluator.cache_misses == 0
        assert rerun.sweep.records == baseline.sweep.records

    def test_session_attaches_store_to_existing_evaluator(self, tmp_path):
        evaluator = Evaluator()
        session = Session(
            backend="stub", evaluator=evaluator, store=str(tmp_path)
        )
        assert evaluator.store is session.store
        assert session.store.path == str(tmp_path)

    def test_session_process_executor_gets_store(self, tmp_path):
        session = Session(
            backend="zoo", executor="process", workers=2, store=str(tmp_path)
        )
        executor = session.make_executor()
        assert executor.store is session.store
