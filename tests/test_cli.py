"""Tests for the command-line front end (repro.cli)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def verilog_file(tmp_path):
    path = tmp_path / "dut.v"
    path.write_text(
        "module m(input a, output y);\n  assign y = ~a;\nendmodule\n"
    )
    return str(path)


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "tb.v"
    path.write_text(
        "module tb;\n"
        "  reg a; wire y;\n"
        "  initial begin a = 0; #1 "
        '$display("y=%b", y); $finish; end\n'
        "  assign y = ~a;\n"
        "endmodule\n"
    )
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.model == "codegen-16b"
        assert args.n == 10
        assert args.backend == "zoo"
        assert args.workers == 1

    def test_backend_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["evaluate", "--backend", "psychic"])

    def test_sweep_flags(self):
        args = build_parser().parse_args([
            "sweep", "--models", "a,b", "--workers", "4",
            "--backend", "stub", "--export", "out.json",
        ])
        assert args.models == "a,b"
        assert args.workers == 4
        assert args.backend == "stub"
        assert args.export == "out.json"
        assert args.executor == "thread"
        assert args.shards == 1
        assert args.shard_index is None
        assert args.retries == 0

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8076
        assert args.backend == "zoo"

    def test_executor_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--executor", "psychic"])

    def test_merge_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["merge"])


class TestProblems:
    def test_lists_all_17(self, capsys):
        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 17
        assert "ABRO FSM" in out

    def test_prompt_levels(self, capsys):
        assert main(["prompt", "6", "--level", "L"]) == 0
        low = capsys.readouterr().out
        assert main(["prompt", "6", "--level", "H"]) == 0
        high = capsys.readouterr().out
        assert high.startswith(low.rstrip("\n")[: len(low) // 2])
        assert len(high) > len(low)


class TestCompileAndSimulate:
    def test_compile_ok(self, capsys, verilog_file):
        assert main(["compile", verilog_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compile_failure_exit_code(self, capsys, tmp_path):
        bad = tmp_path / "bad.v"
        bad.write_text("module m(input a; endmodule")
        assert main(["compile", str(bad)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_simulate_prints_output(self, capsys, bench_file):
        assert main(["simulate", bench_file, "--top", "tb"]) == 0
        out = capsys.readouterr().out
        assert "y=1" in out
        assert "finished=True" in out

    def test_simulate_writes_vcd(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        source = tmp_path / "wave_tb.v"
        source.write_text(
            "module tb; reg c;\n"
            "initial begin $dumpfile(\"dump.vcd\"); $dumpvars;\n"
            "c = 0; #5 c = 1; #1 $finish; end\nendmodule\n"
        )
        assert main(["simulate", str(source), "--top", "tb"]) == 0
        assert (tmp_path / "dump.vcd").exists()
        assert "$enddefinitions" in (tmp_path / "dump.vcd").read_text()


class TestLint:
    def test_clean_file_exit_zero(self, capsys, verilog_file):
        assert main(["lint", verilog_file]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_two(self, capsys, tmp_path):
        path = tmp_path / "warn.v"
        path.write_text(
            "module m(input a, output z);\n  wire ghost;\nendmodule\n"
        )
        assert main(["lint", str(path)]) == 2
        out = capsys.readouterr().out
        assert "undriven" in out
        assert "unused-signal" in out


class TestEvaluateAndCorpus:
    def test_evaluate_small(self, capsys):
        code = main([
            "evaluate", "--model", "codegen-6b", "--ft",
            "--n", "2", "--temperature", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert out.count("P") >= 17

    def test_corpus_stats(self, capsys):
        assert main(["corpus", "--repos", "10"]) == 0
        out = capsys.readouterr().out
        assert "queried" in out
        assert "files" in out

    def test_evaluate_stub_backend_with_workers(self, capsys):
        code = main([
            "evaluate", "--backend", "stub-canonical",
            "--n", "2", "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall 34/34" in out
        assert "backend=stub" in out
        assert "workers=2" in out
        assert "cache=" in out

    def test_evaluate_all_jobs_failed_exits_nonzero(self, capsys):
        # http backend has no transport configured: every job fails
        assert main(["evaluate", "--backend", "http", "--n", "1"]) == 1
        assert "failed" in capsys.readouterr().out

    def test_evaluate_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["evaluate", "--workers", "0"])

    def test_evaluate_ft_rejected_on_non_zoo_backend(self, capsys):
        assert main(["evaluate", "--backend", "stub", "--ft"]) == 2
        assert "--ft" in capsys.readouterr().out

    def test_evaluate_unknown_model_on_non_zoo_backend(self, capsys):
        code = main(["evaluate", "--backend", "stub", "--model", "gpt-9"])
        assert code == 2
        assert "does not serve" in capsys.readouterr().out

    def test_sweep_bad_inputs_exit_two(self, capsys):
        assert main(["sweep", "--levels", "Q"]) == 2
        assert "unknown level" in capsys.readouterr().out
        assert main(["sweep", "--problems", "99", "--n", "1"]) == 2
        assert "unknown problem" in capsys.readouterr().out
        assert main(["sweep", "--export", "x.parquet", "--n", "1"]) == 2
        assert ".json or .csv" in capsys.readouterr().out

    def test_evaluate_workers_match_serial(self, capsys):
        argv = ["evaluate", "--model", "codegen-6b", "--ft", "--n", "2"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "4"]) == 0
        parallel = capsys.readouterr().out
        # identical per-problem verdicts regardless of pool width
        assert [l for l in serial.splitlines() if l.startswith("P")] == [
            l for l in parallel.splitlines() if l.startswith("P")
        ]


class TestSweepCommand:
    def test_sweep_runs_and_reports_skips(self, capsys):
        code = main([
            "sweep", "--models", "codegen-2b-ft,j1-large-7b-ft",
            "--problems", "1,2", "--temperatures", "0.1",
            "--n", "2,25", "--levels", "L", "--workers", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "planned 6 jobs" in out
        assert "2 skipped" in out
        assert "n=25" in out
        assert "pass rate" in out
        assert "workers=4" in out

    def test_sweep_shard_flags_validated(self, capsys):
        assert main(["sweep", "--shards", "2", "--n", "1"]) == 2
        assert "--shard-index" in capsys.readouterr().out
        assert main([
            "sweep", "--shards", "2", "--shard-index", "2", "--n", "1",
        ]) == 2
        assert "0..1" in capsys.readouterr().out
        assert main([
            "sweep", "--shards", "2", "--shard-index", "-1", "--n", "1",
        ]) == 2
        assert "0..1" in capsys.readouterr().out

    def test_shard_export_extension_checked_before_running(self, capsys):
        code = main([
            "sweep", "--shards", "2", "--shard-index", "0", "--n", "1",
            "--export", "out.csv",
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "must end in .json" in out
        assert "planned" not in out  # rejected before any work ran

    def test_url_rejected_for_local_backends(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--backend", "stub", "--url", "http://x", "--n", "1"])
        assert "--url" in capsys.readouterr().out
        # evaluate's ad-hoc zoo path must reject it too, not ignore it
        with pytest.raises(SystemExit):
            main(["evaluate", "--url", "http://x", "--n", "1"])
        assert "--url" in capsys.readouterr().out

    def test_evaluate_honors_executor_flag(self, capsys):
        code = main([
            "evaluate", "--model", "codegen-6b", "--ft", "--n", "2",
            "--executor", "process", "--workers", "2",
        ])
        assert code == 0
        assert "overall" in capsys.readouterr().out

    def test_shard_merge_round_trip(self, capsys, tmp_path):
        base = [
            "sweep", "--backend", "stub", "--problems", "1,2,3",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
        ]
        paths = []
        for index in range(2):
            path = str(tmp_path / f"shard{index}.json")
            code = main(base + [
                "--shards", "2", "--shard-index", str(index),
                "--export", path,
            ])
            assert code == 0
            paths.append(path)
        out = capsys.readouterr().out
        assert "shard 1/2" in out and "shard 2/2" in out

        merged = str(tmp_path / "merged.json")
        assert main(["merge", *paths, "--export", merged]) == 0
        out = capsys.readouterr().out
        assert "merged 2 shards: 6 records" in out

        serial = str(tmp_path / "serial.json")
        assert main(base + ["--export", serial]) == 0
        import json

        assert json.load(open(merged)) == json.load(open(serial))

    def test_merge_full_export(self, capsys, tmp_path):
        path = str(tmp_path / "shard0.json")
        assert main([
            "sweep", "--backend", "stub", "--problems", "1",
            "--temperatures", "0.1", "--n", "1", "--levels", "L",
            "--shards", "1", "--shard-index", "0", "--export", path,
        ]) == 0
        capsys.readouterr()
        full = str(tmp_path / "full.json")
        assert main(["merge", path, "--export", full, "--full"]) == 0
        import json

        payload = json.load(open(full))
        assert set(payload) == {"records", "skipped", "errors", "stats"}

    def test_merge_bad_file_exits_two(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["merge", str(bad)]) == 2
        assert "error" in capsys.readouterr().out

    def test_sweep_executor_and_retry_flags(self, capsys):
        code = main([
            "sweep", "--backend", "stub-canonical", "--problems", "1,2",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--executor", "process", "--workers", "2", "--retries", "1",
        ])
        assert code == 0
        assert "pass rate 1.000" in capsys.readouterr().out

    def test_sweep_json_export(self, capsys, tmp_path):
        path = tmp_path / "records.json"
        code = main([
            "sweep", "--backend", "stub", "--problems", "1",
            "--temperatures", "0.1", "--n", "2", "--levels", "L,M",
            "--export", str(path),
        ])
        assert code == 0
        assert f"wrote {path}" in capsys.readouterr().out
        import json

        records = json.loads(path.read_text())
        assert len(records) == 2 * 2  # levels x n
        assert records[0]["model"] == "stub"


class TestCoordinateAndWorkCommands:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["coordinate", "--shards", "2"])
        assert args.shards == 2
        assert args.lease_seconds == 300.0
        assert args.backend == "zoo"
        args = build_parser().parse_args(["work", "--url", "http://h:1"])
        assert args.backend == "zoo"
        assert args.poll_seconds == 0.5
        assert args.max_idle_polls is None

    def test_coordinate_requires_shards_or_lease_jobs(self, capsys):
        code = main(["coordinate"])
        assert code == 2
        assert "--shards" in capsys.readouterr().out
        # either granularity flag alone satisfies the parser; the
        # lease-jobs path defaults the split to one shard
        args = build_parser().parse_args(["coordinate", "--lease-jobs", "5"])
        assert args.shards is None and args.lease_jobs == 5

    def test_work_requires_url(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["work"])

    def test_store_flag_accepted_by_sweep(self, capsys, tmp_path):
        store = tmp_path / "verdicts"
        code = main([
            "sweep", "--backend", "stub-canonical", "--problems", "1",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--store", str(store),
        ])
        assert code == 0
        assert any(store.glob("*.json"))

    def test_work_unreachable_coordinator_exits_two(self, capsys):
        code = main(["work", "--url", "http://127.0.0.1:9",
                     "--backend", "stub"])
        assert code == 2
        assert "cannot reach" in capsys.readouterr().out

    def test_work_drains_a_live_coordinator(self, capsys):
        from repro.api import Session
        from repro.eval import SweepConfig
        from repro.problems import PromptLevel

        config = SweepConfig(
            temperatures=(0.1,), completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,), problem_numbers=(1, 2),
        )
        service = Session(backend="stub-canonical").coordinate(
            2, config, port=0
        )
        url = service.start()
        try:
            code = main(["work", "--url", url,
                         "--backend", "stub-canonical",
                         "--max-idle-polls", "20"])
        finally:
            service.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "2 units" in out
        assert service.coordinator.done
        assert len(service.coordinator.result().sweep) == 2 * 2

    def test_coordinate_end_to_end_with_cli_worker(self, capsys, tmp_path):
        import json
        import socket
        import threading
        import time

        from repro.api import Session
        from repro.backends import BackendError

        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        merged_path = tmp_path / "merged.json"
        codes = []

        def coordinate():
            codes.append(main([
                "coordinate", "--shards", "2",
                "--backend", "stub-canonical",
                "--problems", "1,2", "--temperatures", "0.1",
                "--n", "2", "--levels", "L",
                "--port", str(port), "--poll-seconds", "0.02",
                "--linger-seconds", "0.1",
                "--export", str(merged_path),
            ]))

        thread = threading.Thread(target=coordinate)
        thread.start()
        url = f"http://127.0.0.1:{port}"
        summary = None
        for _ in range(200):  # wait for the coordinator to come up
            try:
                summary = Session(backend="stub-canonical").work(
                    url=url, max_idle_polls=50, poll_seconds=0.02
                )
                break
            except BackendError:
                time.sleep(0.05)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert codes == [0]
        assert summary is not None and summary["shards"] == 2
        out = capsys.readouterr().out
        assert "merged 2 shards" in out
        records = json.loads(merged_path.read_text())
        # parity with a direct serial sweep export
        serial_path = tmp_path / "serial.json"
        assert main([
            "sweep", "--backend", "stub-canonical", "--problems", "1,2",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--export", str(serial_path),
        ]) == 0
        assert records == json.loads(serial_path.read_text())


class TestStreamingAndStoreCLI:
    """PR 4 surfaces: sweep --stream, serve --aio, coordinate
    --checkpoint, and the store pack/unpack command."""

    def test_new_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep", "--stream", "--url", "http://h:1"]
        )
        assert args.stream and args.url == "http://h:1"
        args = build_parser().parse_args(["serve", "--aio"])
        assert args.aio
        args = build_parser().parse_args([
            "coordinate", "--shards", "2",
            "--checkpoint", "state.json", "--checkpoint-every", "3",
        ])
        assert args.checkpoint == "state.json"
        assert args.checkpoint_every == 3
        assert args.aio is False
        args = build_parser().parse_args(["store", "pack", "dir"])
        assert args.action == "pack" and args.dir == "dir"
        args = build_parser().parse_args(
            ["sweep", "--executor", "async", "--workers", "8"]
        )
        assert args.executor == "async"

    def test_stream_requires_url(self, capsys):
        code = main(["sweep", "--stream"])
        assert code == 2
        assert "--url" in capsys.readouterr().out

    def test_stream_rejects_shards(self, capsys):
        code = main(["sweep", "--stream", "--url", "http://h:1",
                     "--shards", "2", "--shard-index", "0"])
        assert code == 2
        assert "--shards" in capsys.readouterr().out

    def test_sweep_executor_async_matches_serial(self, capsys, tmp_path):
        import json

        serial_path = tmp_path / "serial.json"
        async_path = tmp_path / "async.json"
        base = ["sweep", "--backend", "stub-canonical",
                "--problems", "1,2", "--temperatures", "0.1",
                "--n", "2", "--levels", "L"]
        assert main(base + ["--export", str(serial_path)]) == 0
        assert main(base + ["--executor", "async", "--workers", "4",
                            "--export", str(async_path)]) == 0
        assert json.load(open(serial_path)) == json.load(open(async_path))

    def test_streamed_sweep_parity_over_live_service(
        self, capsys, tmp_path
    ):
        import json

        from repro.api import Session

        service = Session(backend="stub-canonical").serve_async(port=0)
        url = service.start()
        streamed_path = tmp_path / "streamed.json"
        serial_path = tmp_path / "serial.json"
        try:
            code = main([
                "sweep", "--stream", "--url", url,
                "--problems", "1,2", "--temperatures", "0.1",
                "--n", "2", "--levels", "L",
                "--export", str(streamed_path),
            ])
        finally:
            service.stop()
        assert code == 0
        out = capsys.readouterr().out
        assert "records" in out and "pass rate" in out
        assert main([
            "sweep", "--backend", "stub-canonical",
            "--problems", "1,2", "--temperatures", "0.1",
            "--n", "2", "--levels", "L",
            "--export", str(serial_path),
        ]) == 0
        assert json.load(open(streamed_path)) == json.load(open(serial_path))

    def test_coordinate_resumes_from_complete_checkpoint(
        self, capsys, tmp_path
    ):
        import json

        from repro.api import Session
        from repro.eval import SweepConfig
        from repro.eval.export import sweep_result_to_dict
        from repro.problems import PromptLevel
        from repro.service import ShardCoordinator, save_checkpoint
        from repro.service.sharding import shard_from_dict

        config = SweepConfig(
            temperatures=(0.1,), completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,), problem_numbers=(1, 2),
        )
        session = Session(backend="stub-canonical")
        coordinator = ShardCoordinator(session.plan_shards(2, config))
        while not coordinator.done:
            lease = coordinator.next_shard("pre-crash-worker")
            shard = shard_from_dict(lease["shard"])
            coordinator.submit_result(
                lease["lease_id"],
                sweep_result_to_dict(session.run_plan(shard.plan)),
            )
        checkpoint = tmp_path / "coordinator.json"
        save_checkpoint(coordinator, str(checkpoint))

        # a restarted coordinate run needs no workers at all: every
        # shard is already merged in the checkpoint
        merged_path = tmp_path / "merged.json"
        code = main([
            "coordinate", "--shards", "2",
            "--backend", "stub-canonical",
            "--problems", "1,2", "--temperatures", "0.1",
            "--n", "2", "--levels", "L",
            "--port", "0", "--linger-seconds", "0",
            "--checkpoint", str(checkpoint),
            "--export", str(merged_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed from" in out
        serial = session.run_sweep(config)
        from repro.eval.export import sweep_to_json

        assert json.load(open(merged_path)) == json.loads(
            sweep_to_json(serial.sweep)
        )

    def test_store_pack_unpack_info(self, capsys, tmp_path):
        store_dir = tmp_path / "verdicts"
        assert main([
            "sweep", "--backend", "stub-canonical", "--problems", "1",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--store", str(store_dir),
        ]) == 0
        capsys.readouterr()
        assert main(["store", "info", str(store_dir)]) == 0
        assert "entries" in capsys.readouterr().out
        assert main(["store", "pack", str(store_dir)]) == 0
        assert "packed" in capsys.readouterr().out
        assert not list(store_dir.glob("*.json"))  # files folded away
        # a packed store still serves a warm start
        assert main([
            "sweep", "--backend", "stub-canonical", "--problems", "1",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--store", str(store_dir),
        ]) == 0
        assert main(["store", "unpack", str(store_dir)]) == 0
        capsys.readouterr()
        assert list(store_dir.glob("*.json"))

    def test_store_missing_dir_exits_two(self, capsys, tmp_path):
        code = main(["store", "pack", str(tmp_path / "absent")])
        assert code == 2
        assert "not a verdict store" in capsys.readouterr().out
