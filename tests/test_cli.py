"""Tests for the command-line front end (repro.cli)."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def verilog_file(tmp_path):
    path = tmp_path / "dut.v"
    path.write_text(
        "module m(input a, output y);\n  assign y = ~a;\nendmodule\n"
    )
    return str(path)


@pytest.fixture()
def bench_file(tmp_path):
    path = tmp_path / "tb.v"
    path.write_text(
        "module tb;\n"
        "  reg a; wire y;\n"
        "  initial begin a = 0; #1 "
        '$display("y=%b", y); $finish; end\n'
        "  assign y = ~a;\n"
        "endmodule\n"
    )
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.model == "codegen-16b"
        assert args.n == 10


class TestProblems:
    def test_lists_all_17(self, capsys):
        assert main(["problems"]) == 0
        out = capsys.readouterr().out
        assert out.count("\n") == 17
        assert "ABRO FSM" in out

    def test_prompt_levels(self, capsys):
        assert main(["prompt", "6", "--level", "L"]) == 0
        low = capsys.readouterr().out
        assert main(["prompt", "6", "--level", "H"]) == 0
        high = capsys.readouterr().out
        assert high.startswith(low.rstrip("\n")[: len(low) // 2])
        assert len(high) > len(low)


class TestCompileAndSimulate:
    def test_compile_ok(self, capsys, verilog_file):
        assert main(["compile", verilog_file]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compile_failure_exit_code(self, capsys, tmp_path):
        bad = tmp_path / "bad.v"
        bad.write_text("module m(input a; endmodule")
        assert main(["compile", str(bad)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_simulate_prints_output(self, capsys, bench_file):
        assert main(["simulate", bench_file, "--top", "tb"]) == 0
        out = capsys.readouterr().out
        assert "y=1" in out
        assert "finished=True" in out

    def test_simulate_writes_vcd(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        source = tmp_path / "wave_tb.v"
        source.write_text(
            "module tb; reg c;\n"
            "initial begin $dumpfile(\"dump.vcd\"); $dumpvars;\n"
            "c = 0; #5 c = 1; #1 $finish; end\nendmodule\n"
        )
        assert main(["simulate", str(source), "--top", "tb"]) == 0
        assert (tmp_path / "dump.vcd").exists()
        assert "$enddefinitions" in (tmp_path / "dump.vcd").read_text()


class TestLint:
    def test_clean_file_exit_zero(self, capsys, verilog_file):
        assert main(["lint", verilog_file]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_two(self, capsys, tmp_path):
        path = tmp_path / "warn.v"
        path.write_text(
            "module m(input a, output z);\n  wire ghost;\nendmodule\n"
        )
        assert main(["lint", str(path)]) == 2
        out = capsys.readouterr().out
        assert "undriven" in out
        assert "unused-signal" in out


class TestEvaluateAndCorpus:
    def test_evaluate_small(self, capsys):
        code = main([
            "evaluate", "--model", "codegen-6b", "--ft",
            "--n", "2", "--temperature", "0.1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "overall" in out
        assert out.count("P") >= 17

    def test_corpus_stats(self, capsys):
        assert main(["corpus", "--repos", "10"]) == 0
        out = capsys.readouterr().out
        assert "queried" in out
        assert "files" in out
