"""Tests for the pluggable generation backends (repro.backends)."""

import pytest

from repro.backends import (
    Backend,
    BackendError,
    HTTPChatBackend,
    LocalZooBackend,
    ModelCapabilities,
    StubBackend,
    available_backends,
    clean_chat_response,
    create_backend,
    extract_chat_text,
    register_backend,
    resolve_backend,
)
from repro.eval import Evaluator
from repro.models import GenerationConfig, make_model
from repro.problems import PromptLevel, get_problem

CONFIG = GenerationConfig(temperature=0.1, n=3)


class TestRegistry:
    def test_builtins_registered(self):
        names = available_backends()
        for name in ("zoo", "stub", "stub-canonical", "http"):
            assert name in names

    def test_create_unknown_raises(self):
        with pytest.raises(BackendError, match="unknown backend"):
            create_backend("telepathy")

    def test_round_trip_custom_backend(self):
        class EchoBackend(Backend):
            name = "echo"

            def models(self):
                return ["echo"]

            def generate(self, model, prompt, config):
                from repro.models import Completion

                return [Completion(text=prompt)] * config.n

        register_backend("echo", EchoBackend)
        try:
            backend = create_backend("echo")
            assert isinstance(backend, EchoBackend)
            assert "echo" in available_backends()
            out = backend.generate("echo", "module m();", CONFIG)
            assert len(out) == 3 and out[0].text == "module m();"
        finally:
            from repro.backends.base import _REGISTRY

            _REGISTRY.pop("echo", None)

    def test_resolve_backend_forms(self):
        assert resolve_backend(None).name == "zoo"
        assert resolve_backend("stub").name == "stub"
        stub = StubBackend()
        assert resolve_backend(stub) is stub


class TestLocalZooBackend:
    def test_default_serves_paper_variants(self):
        backend = LocalZooBackend()
        assert len(backend.models()) == 11
        assert "codegen-16b-ft" in backend.models()

    def test_generate_matches_wrapped_model(self):
        model = make_model("codegen-6b", fine_tuned=True)
        backend = LocalZooBackend([model])
        prompt = get_problem(1).prompt(PromptLevel.LOW)
        direct = model.generate(prompt, CONFIG)
        via_backend = backend.generate("codegen-6b-ft", prompt, CONFIG)
        assert [c.text for c in direct] == [c.text for c in via_backend]

    def test_capabilities_from_spec(self):
        backend = LocalZooBackend()
        j1 = backend.capabilities("j1-large-7b-ft")
        assert not j1.supports_n25
        assert j1.max_tokens == 256
        assert backend.capabilities("codegen-16b-pt").supports_n25

    def test_identity(self):
        backend = LocalZooBackend()
        assert backend.identity("codegen-16b-ft") == ("codegen-16b", True)
        assert backend.identity("codegen-16b-pt") == ("codegen-16b", False)

    def test_unknown_model_raises(self):
        with pytest.raises(BackendError, match="does not serve"):
            LocalZooBackend().generate("gpt-9", "module m();", CONFIG)

    def test_add_model(self):
        backend = LocalZooBackend([])
        backend.add(make_model("codegen-2b"))
        assert backend.models() == ["codegen-2b-pt"]


class TestStubBackend:
    def test_scripted_round_robin(self):
        backend = StubBackend(completions=("a", "b"))
        out = backend.generate("stub", "prompt", CONFIG)
        assert [c.text for c in out] == ["a", "b", "a"]

    def test_records_queries(self):
        backend = StubBackend()
        backend.generate("stub", "p1", CONFIG)
        backend.generate("stub", "p2", CONFIG)
        assert [q.prompt for q in backend.queries] == ["p1", "p2"]
        assert backend.queries[0].config is CONFIG

    def test_default_text_compiles_but_fails(self):
        backend = StubBackend()
        problem = get_problem(2)
        text = backend.generate(
            "stub", problem.prompt(PromptLevel.LOW), CONFIG
        )[0].text
        outcome = Evaluator().evaluate(problem, text)
        assert outcome.compiled and not outcome.passed

    def test_canonical_mode_passes(self):
        backend = create_backend("stub-canonical")
        problem = get_problem(2)
        text = backend.generate(
            "stub", problem.prompt(PromptLevel.LOW), CONFIG
        )[0].text
        outcome = Evaluator().evaluate(problem, text)
        assert outcome.compiled and outcome.passed

    def test_unknown_model_raises(self):
        with pytest.raises(BackendError):
            StubBackend().generate("other", "p", CONFIG)

    def test_capabilities_configurable(self):
        backend = StubBackend(supports_n25=False, max_tokens=128)
        caps = backend.capabilities("stub")
        assert caps == ModelCapabilities(supports_n25=False, max_tokens=128)


class TestResponseCleaning:
    def test_verilog_fence_extracted(self):
        text = "Here you go:\n```verilog\nassign y = a;\nendmodule\n```\nEnjoy!"
        assert clean_chat_response(text) == "assign y = a;\nendmodule"

    def test_plain_fence_extracted(self):
        text = "```\nassign y = a;\n```"
        assert clean_chat_response(text) == "assign y = a;"

    def test_bare_text_stripped(self):
        assert clean_chat_response("  assign y = a;  ") == "assign y = a;"

    def test_language_tag_variants_extracted(self):
        for tag in ("verilog", "systemverilog", "v", "Verilog", "c++"):
            text = f"```{tag}\nassign y = a;\n```"
            assert clean_chat_response(text) == "assign y = a;", tag

    def test_multiple_blocks_last_complete_module_wins(self):
        text = (
            "The bug is here:\n"
            "```verilog\nmodule m(); broken endmodule\n```\n"
            "Here is the fixed version:\n"
            "```verilog\nmodule m(); assign y = a; endmodule\n```\n"
            "Hope that helps!"
        )
        assert clean_chat_response(text) == (
            "module m(); assign y = a; endmodule"
        )

    def test_incomplete_module_block_loses_to_complete_one(self):
        # the *last* block is an incomplete fragment; the complete
        # module earlier in the reply must win
        text = (
            "```verilog\nmodule m(); assign y = a; endmodule\n```\n"
            "i.e. just change this line:\n"
            "```verilog\nassign y = a;\n```"
        )
        assert clean_chat_response(text) == (
            "module m(); assign y = a; endmodule"
        )

    def test_multiple_blocks_no_module_takes_last(self):
        text = "```\nfirst\n```\nthen\n```\nsecond\n```"
        assert clean_chat_response(text) == "second"

    def test_unclosed_fence_line_stripped(self):
        text = "```verilog\nassign y = a;\nendmodule"
        assert clean_chat_response(text) == "assign y = a;\nendmodule"

    def test_stray_backtick_run_lines_stripped(self):
        text = "``\nassign y = a;\n````"
        assert clean_chat_response(text) == "assign y = a;"

    def test_compiler_directives_survive_stray_cleanup(self):
        # `timescale / `ifdef lines are Verilog, not markdown
        text = "`timescale 1ns/1ps\nmodule m();\n`ifdef X\n`endif\nendmodule"
        assert clean_chat_response(text) == text

    def test_symmetric_wrapping_backticks_peeled(self):
        assert clean_chat_response("`assign y = a;`") == "assign y = a;"
        assert clean_chat_response("``x``") == "x"

    def test_lone_backtick_line_reads_as_markdown_noise(self):
        assert clean_chat_response("`") == ""

    def test_crlf_fences_extracted(self):
        text = "```verilog\r\nassign y = a;\r\n```"
        assert clean_chat_response(text) == "assign y = a;"

    def test_extract_ollama_shape(self):
        assert extract_chat_text({"message": {"content": "hi"}}) == "hi"

    def test_extract_openai_shape(self):
        response = {"choices": [{"message": {"content": "hi"}}]}
        assert extract_chat_text(response) == "hi"

    def test_extract_unknown_shape_raises(self):
        with pytest.raises(BackendError, match="unrecognized"):
            extract_chat_text({"surprise": True})


class TestHTTPChatBackend:
    def test_no_transport_raises(self):
        backend = HTTPChatBackend()
        with pytest.raises(BackendError, match="offline-safe"):
            backend.generate("chat-model", "module m();", CONFIG)

    def test_transport_called_per_sample_and_cleaned(self):
        calls = []

        def transport(url, payload):
            calls.append((url, payload))
            return {
                "message": {
                    "content": "```verilog\nassign y = a;\nendmodule\n```"
                }
            }

        backend = HTTPChatBackend(
            model_names=("m1",), transport=transport, url="http://x/chat"
        )
        out = backend.generate("m1", "module m();", CONFIG)
        assert len(out) == 3 and len(calls) == 3
        assert all(c.text == "assign y = a;\nendmodule" for c in out)
        url, payload = calls[0]
        assert url == "http://x/chat"
        assert payload["model"] == "m1"
        assert payload["messages"][1]["content"] == "module m();"
        assert payload["options"]["temperature"] == pytest.approx(0.1)
        # distinct seeds per sample so real servers vary their outputs
        assert [c[1]["options"]["seed"] for c in calls] == [0, 1, 2]

    def test_max_tokens_clamped_in_payload(self):
        backend = HTTPChatBackend(
            transport=lambda url, payload: {"message": {"content": "x"}},
            max_tokens=128,
        )
        payload = backend.payload(
            "chat-model", "p", GenerationConfig(n=1, max_tokens=300), 0
        )
        assert payload["options"]["num_predict"] == 128

    def test_clean_disabled_keeps_fences(self):
        backend = HTTPChatBackend(
            transport=lambda url, payload: {
                "message": {"content": "```\ncode\n```"}
            },
            clean=False,
        )
        out = backend.generate("chat-model", "p", GenerationConfig(n=1))
        assert out[0].text == "```\ncode\n```"

    def test_generate_chat_ships_turns_verbatim(self):
        calls = []

        def transport(url, payload):
            calls.append(payload)
            return {"message": {"content": "fixed"}}

        backend = HTTPChatBackend(transport=transport)
        messages = [
            {"role": "user", "content": "module m();"},
            {"role": "assistant", "content": "broken body"},
            {"role": "user", "content": "// repair feedback: fix it"},
        ]
        out = backend.generate_chat(
            "chat-model", messages, GenerationConfig(n=2)
        )
        assert len(out) == 2 and len(calls) == 2
        shipped = calls[0]["messages"]
        assert shipped[0]["role"] == "system"
        assert [m["role"] for m in shipped[1:]] == [
            "user", "assistant", "user"
        ]
        assert [m["content"] for m in shipped[1:]] == [
            m["content"] for m in messages
        ]
        assert [c["options"]["seed"] for c in calls] == [0, 1]

    def test_default_generate_chat_flattens_for_plain_backends(self):
        # the Backend-protocol default: non-system turns joined into one
        # prompt, so completion-style backends serve chat conversations
        from repro.backends import StubBackend

        backend = StubBackend(completions=("ok",))
        seen = []
        original = backend.generate

        def spy(model, prompt, config):
            seen.append(prompt)
            return original(model, prompt, config)

        backend.generate = spy
        backend.generate_chat(
            "stub",
            [
                {"role": "system", "content": "ignored"},
                {"role": "user", "content": "a"},
                {"role": "assistant", "content": "b"},
                {"role": "user", "content": "c"},
            ],
            GenerationConfig(n=1),
        )
        assert seen == ["a\nb\nc"]
