"""Tests for the textbook corpus leg (repro.corpus.textbook)."""

import pytest
from hypothesis import given, strategies as st

from repro.corpus.textbook import (
    Textbook,
    clean_textbook,
    extract_snippets,
    filter_irrelevant_passages,
    generate_library,
    generate_textbook,
    repair_ocr,
    sliding_windows,
    textbook_examples,
)
from repro.verilog import check_syntax


class TestGeneration:
    def test_book_has_front_and_back_matter(self):
        book = generate_textbook(0)
        assert any(
            head in book.text for head in ("PREFACE", "ACKNOWLEDGMENTS")
        )
        assert "INDEX" in book.text

    def test_book_contains_chapters_and_listings(self):
        book = generate_textbook(1)
        assert "CHAPTER 1" in book.text
        assert "module" in book.text

    def test_generation_deterministic(self):
        assert generate_textbook(2).text == generate_textbook(2).text

    def test_library_size(self):
        assert len(generate_library(count=5)) == 5

    def test_books_differ(self):
        library = generate_library(count=3)
        texts = {book.text for book in library}
        assert len(texts) == 3


class TestCleaning:
    def test_front_matter_removed(self):
        book = generate_textbook(0)
        cleaned = filter_irrelevant_passages(book.text)
        assert "PREFACE" not in cleaned
        assert "INDEX" not in cleaned

    def test_chapters_survive_cleaning(self):
        book = generate_textbook(0)
        cleaned = filter_irrelevant_passages(book.text)
        assert "CHAPTER 1" in cleaned

    def test_repair_ocr_restores_splits(self):
        assert repair_ocr("f i") == "fi"
        assert repair_ocr("a = > b") == "a => b"

    def test_cleaned_books_yield_valid_snippets(self):
        book = generate_textbook(3)
        snippets = extract_snippets(clean_textbook(book))
        assert snippets, "expected at least one validated snippet"
        for snippet in snippets:
            assert check_syntax(snippet).ok, snippet[:120]

    def test_snippet_regex_rejects_prose(self):
        assert extract_snippets("the module keyword introduces a design") == []


class TestSlidingWindows:
    def test_short_text_single_window(self):
        assert sliding_windows("abc", window=10, stride=5) == ["abc"]

    def test_empty_text_no_windows(self):
        assert sliding_windows("", window=10, stride=5) == []

    def test_windows_overlap(self):
        text = "abcdefghij"
        windows = sliding_windows(text, window=4, stride=2)
        assert windows[0] == "abcd"
        assert windows[1] == "cdef"

    def test_windows_cover_whole_text(self):
        text = "x" * 100 + "END"
        windows = sliding_windows(text, window=16, stride=8)
        assert "END" in "".join(windows)

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows("abc", window=0, stride=1)
        with pytest.raises(ValueError):
            sliding_windows("abc", window=4, stride=0)

    @given(
        text=st.text(min_size=1, max_size=300),
        window=st.integers(min_value=1, max_value=64),
        stride=st.integers(min_value=1, max_value=64),
    )
    def test_prop_every_window_within_bounds(self, text, window, stride):
        for chunk in sliding_windows(text, window, stride):
            assert len(chunk) <= window
            assert chunk in text

    @given(text=st.text(min_size=1, max_size=300))
    def test_prop_stride_equals_window_partitions(self, text):
        windows = sliding_windows(text, window=10, stride=10)
        assert "".join(windows) == text[: sum(len(w) for w in windows)]


class TestExamples:
    def test_examples_from_library(self):
        books = generate_library(count=2)
        examples = textbook_examples(books, window=512, stride=256)
        assert examples
        assert all(len(e) <= 512 for e in examples)

    def test_examples_exclude_index_lines(self):
        books = generate_library(count=2)
        joined = "\n".join(textbook_examples(books))
        assert "INDEX" not in joined
