"""Tests for the job-based sweep service (repro.eval.jobs + repro.api)."""

import pytest

from repro import Session, quick_evaluate
from repro.api import evaluate_model, run_sweep as api_run_sweep
from repro.backends import BackendError, LocalZooBackend, StubBackend
from repro.eval import (
    Evaluator,
    Executor,
    RetryPolicy,
    Sweep,
    SweepConfig,
    SweepExecutor,
    SweepPlanner,
    run_sweep,
)
from repro.eval.harness import CompletionRecord
from repro.models import make_model
from repro.problems import Difficulty, PromptLevel

SMALL = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(3,),
    levels=(PromptLevel.LOW, PromptLevel.MEDIUM),
    problem_numbers=(1, 2, 13),
)


def small_models():
    return [
        make_model("codegen-6b", fine_tuned=True),
        make_model("j1-large-7b", fine_tuned=True),
    ]


class TestPlanner:
    def test_job_count_arithmetic(self):
        plan = SweepPlanner(LocalZooBackend(small_models())).plan(SMALL)
        # 2 models x 3 problems x 2 levels x 2 temperatures x 1 n
        assert len(plan.jobs) == 24
        assert plan.skipped == []
        assert plan.completions_planned == 24 * 3

    def test_n25_skipped_with_reason(self):
        config = SweepConfig(
            temperatures=(0.1,),
            completions_per_prompt=(1, 25),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2),
        )
        plan = SweepPlanner(LocalZooBackend(small_models())).plan(config)
        # j1 loses its two n=25 jobs, codegen keeps everything
        assert len(plan.jobs) == 2 * 2 * 2 - 2
        assert len(plan.skipped) == 2
        skip = plan.skipped[0]
        assert skip.model == "j1-large-7b-ft"
        assert skip.n == 25
        assert "n=25" in skip.reason

    def test_max_tokens_clamped_to_capability(self):
        plan = SweepPlanner(LocalZooBackend(small_models())).plan(SMALL)
        by_model = {job.model: job.max_tokens for job in plan.jobs}
        assert by_model["codegen-6b-ft"] == 300
        assert by_model["j1-large-7b-ft"] == 256  # Table I cap

    def test_invalid_temperature_becomes_skip(self):
        config = SweepConfig(
            temperatures=(-1.0,),
            completions_per_prompt=(1,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1,),
        )
        plan = SweepPlanner(StubBackend()).plan(config)
        assert plan.jobs == []
        assert "temperature" in plan.skipped[0].reason

    def test_explicit_model_subset(self):
        backend = LocalZooBackend(small_models())
        plan = SweepPlanner(backend).plan(SMALL, models=["codegen-6b-ft"])
        assert {job.model for job in plan.jobs} == {"codegen-6b-ft"}

    def test_identity_on_jobs(self):
        plan = SweepPlanner(LocalZooBackend(small_models())).plan(SMALL)
        job = next(j for j in plan.jobs if j.model == "codegen-6b-ft")
        assert job.base_model == "codegen-6b"
        assert job.fine_tuned is True


class TestExecutor:
    def test_serial_parallel_record_parity(self):
        backend = LocalZooBackend(small_models())
        plan = SweepPlanner(backend).plan(SMALL)
        serial = SweepExecutor(backend, workers=1).run(plan)
        parallel = SweepExecutor(backend, workers=8).run(plan)
        assert serial.sweep.records == parallel.sweep.records

    def test_parity_with_legacy_run_sweep(self):
        models = small_models()
        legacy = run_sweep(models, SMALL)
        service = api_run_sweep(SMALL, models=models, workers=4)
        assert legacy.records == service.sweep.records

    def test_default_config_parity(self):
        """Acceptance: full default SweepConfig, serial == workers>1.

        Two variants (one with the n=25 capability quirk) keep the
        runtime reasonable; all 17 problems x 3 levels x 5 temperatures
        are exercised.
        """
        models = small_models()
        config = SweepConfig()
        serial = api_run_sweep(config, models=models, workers=1)
        parallel = api_run_sweep(config, models=models, workers=8)
        assert serial.sweep.records == parallel.sweep.records
        assert len(serial.sweep) == 2 * 17 * 3 * 5 * 10

    def test_per_job_error_capture(self):
        from repro.models import match_prompt_to_problem

        class FlakyBackend(StubBackend):
            def generate(self, model, prompt, config):
                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise RuntimeError("boom")
                return super().generate(model, prompt, config)

        backend = FlakyBackend()
        config = SweepConfig(
            temperatures=(0.1,),
            completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2),
        )
        result = SweepExecutor(backend, workers=2).run(
            SweepPlanner(backend).plan(config)
        )
        assert len(result.errors) == 1
        assert result.errors[0].job.problem == 2
        assert "boom" in result.errors[0].error
        # the healthy job still produced its records
        assert {r.problem for r in result.sweep.records} == {1}
        assert result.stats["jobs_failed"] == 1

    def test_progress_callback_counts_jobs(self):
        backend = StubBackend()
        seen = []
        config = SweepConfig(
            temperatures=(0.1,),
            completions_per_prompt=(1,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2, 3),
        )
        plan = SweepPlanner(backend).plan(config)
        SweepExecutor(
            backend, workers=2, progress=lambda d, t, j: seen.append((d, t))
        ).run(plan)
        assert sorted(seen) == [(1, 3), (2, 3), (3, 3)]

    def test_stats_shape(self):
        backend = StubBackend()
        result = SweepExecutor(backend, workers=3).run(
            SweepPlanner(backend).plan(
                SweepConfig(
                    temperatures=(0.1,),
                    completions_per_prompt=(2,),
                    levels=(PromptLevel.LOW,),
                    problem_numbers=(1,),
                )
            )
        )
        stats = result.stats
        assert stats["backend"] == "stub"
        assert stats["workers"] == 3
        assert stats["jobs"] == 1
        assert stats["records"] == 2
        assert set(stats["evaluator_cache"]) == {"hits", "misses", "entries"}
        assert stats["elapsed_seconds"] >= 0

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            SweepExecutor(StubBackend(), workers=0)

    def test_shared_evaluator_cache_accumulates(self):
        backend = StubBackend()
        evaluator = Evaluator()
        config = SweepConfig(
            temperatures=(0.1, 0.3),
            completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1,),
        )
        SweepExecutor(backend, evaluator=evaluator, workers=4).run(
            SweepPlanner(backend).plan(config)
        )
        info = evaluator.cache_info
        # one unique completion text per problem: everything else hits
        assert info["entries"] == 1
        assert info["hits"] >= 1


class TestSessionFacade:
    def test_session_run_sweep(self):
        session = Session(backend=LocalZooBackend(small_models()), workers=2)
        result = session.run_sweep(SMALL)
        assert len(result.sweep) == 24 * 3
        assert result.stats["workers"] == 2

    def test_session_evaluate_model_by_name(self):
        session = Session(backend="stub")
        result = session.evaluate_model("stub", problem_numbers=(1, 2), n=2)
        assert len(result.sweep) == 2 * 3 * 2  # problems x levels x n

    def test_session_evaluate_model_instance(self):
        session = Session(backend="stub")  # instance overrides backend
        result = session.evaluate_model(
            make_model("codegen-2b"), problem_numbers=(1,), n=2,
            levels=(PromptLevel.LOW,),
        )
        assert {r.model for r in result.sweep.records} == {"codegen-2b-pt"}

    def test_session_shares_evaluator_across_runs(self):
        session = Session(backend="stub")
        session.evaluate_model("stub", problem_numbers=(1,), n=2)
        before = session.cache_info["misses"]
        session.evaluate_model("stub", problem_numbers=(1,), n=2)
        assert session.cache_info["misses"] == before

    def test_module_level_evaluate_model(self):
        result = evaluate_model(
            make_model("codegen-6b", fine_tuned=True),
            problem_numbers=(1,),
            n=2,
        )
        assert len(result.sweep) == 3 * 2

    def test_quick_evaluate_shim_unchanged(self):
        sweep = quick_evaluate(
            make_model("codegen-6b", fine_tuned=True),
            problem_numbers=(1, 2, 3),
            temperature=0.1,
            n=5,
        )
        assert isinstance(sweep, Sweep)
        assert len(sweep) == 3 * 3 * 5


TINY = SweepConfig(
    temperatures=(0.1,),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


class CountingFlaky(StubBackend):
    """Raises BackendError ``failures`` times per job, then succeeds."""

    def __init__(self, failures=0):
        super().__init__()
        self.failures = failures
        self.attempts_by_prompt = {}

    def generate(self, model, prompt, config):
        seen = self.attempts_by_prompt.get(prompt, 0) + 1
        self.attempts_by_prompt[prompt] = seen
        if seen <= self.failures:
            raise BackendError(f"transient #{seen}")
        return super().generate(model, prompt, config)


class TestRetryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seconds=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)

    def test_transient_errors_retried_to_success(self):
        backend = CountingFlaky(failures=2)
        delays = []
        plan = SweepPlanner(backend).plan(TINY)
        result = SweepExecutor(
            backend,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
            sleep=delays.append,
        ).run(plan)
        assert result.errors == []
        assert len(result.sweep) == 2 * 2
        # two jobs x two failed attempts each, doubling backoff
        assert delays == [0.5, 1.0, 0.5, 1.0]
        assert result.stats["attempts"] == 2 * 3

    def test_exhausted_retries_record_attempt_count(self):
        backend = CountingFlaky(failures=99)
        plan = SweepPlanner(backend).plan(TINY)
        slept = []
        result = SweepExecutor(
            backend,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=1.0),
            sleep=slept.append,
        ).run(plan)
        assert len(result.errors) == 2
        assert all(e.attempts == 3 for e in result.errors)
        assert all("transient" in e.error for e in result.errors)
        assert slept == [1.0, 2.0, 1.0, 2.0]

    def test_non_backend_errors_fail_fast(self):
        class Broken(StubBackend):
            def generate(self, model, prompt, config):
                raise RuntimeError("logic bug")

        backend = Broken()
        plan = SweepPlanner(backend).plan(TINY)
        slept = []
        result = SweepExecutor(
            backend,
            retry=RetryPolicy(max_attempts=5, backoff_seconds=1.0),
            sleep=slept.append,
        ).run(plan)
        assert slept == []  # no retries for non-transient failures
        assert all(e.attempts == 1 for e in result.errors)

    def test_no_policy_means_single_attempt(self):
        backend = CountingFlaky(failures=1)
        plan = SweepPlanner(backend).plan(TINY)
        result = SweepExecutor(backend).run(plan)
        assert len(result.errors) == 2
        assert all(e.attempts == 1 for e in result.errors)


class BatchlessFlaky(CountingFlaky):
    """generate_batch is down; per-job generate is flaky (CountingFlaky)."""

    def __init__(self, failures=0):
        super().__init__(failures=failures)
        self.batch_calls = 0

    def generate_batch(self, model, requests):
        self.batch_calls += 1
        raise RuntimeError("batch endpoint down")


class TestRetryBatchInterplay:
    """Satellite: batch failure falls back per job with correct retry
    accounting on JobError."""

    def test_failed_batch_retries_per_job_to_success(self):
        backend = BatchlessFlaky(failures=2)
        plan = SweepPlanner(backend).plan(TINY)
        delays = []
        result = SweepExecutor(
            backend,
            batch_size=4,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
            sleep=delays.append,
        ).run(plan)
        assert backend.batch_calls == 1  # one doomed batch, then per-job
        assert result.errors == []
        assert len(result.sweep) == 2 * 2
        # per-job fallback kept the retry schedule: 2 jobs x 2 backoffs
        assert delays == [0.5, 1.0, 0.5, 1.0]
        assert result.stats["attempts"] == 2 * 3

    def test_failed_batch_exhausted_retries_count_on_job_error(self):
        backend = BatchlessFlaky(failures=99)
        plan = SweepPlanner(backend).plan(TINY)
        result = SweepExecutor(
            backend,
            batch_size=4,
            retry=RetryPolicy(max_attempts=3),
            sleep=lambda _s: None,
        ).run(plan)
        assert backend.batch_calls == 1
        assert len(result.errors) == 2
        # the batch attempt is free; each job still gets its own 3 tries
        assert all(error.attempts == 3 for error in result.errors)
        assert all("transient" in error.error for error in result.errors)
        assert result.stats["attempts"] == 2 * 3

    def test_partial_flakiness_isolates_failures_with_attempts(self):
        class OnlyProblemTwoFails(BatchlessFlaky):
            def generate(self, model, prompt, config):
                from repro.models import match_prompt_to_problem

                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise BackendError("transient p2")
                return StubBackend.generate(self, model, prompt, config)

        backend = OnlyProblemTwoFails()
        plan = SweepPlanner(backend).plan(TINY)
        result = SweepExecutor(
            backend,
            batch_size=4,
            retry=RetryPolicy(max_attempts=2),
            sleep=lambda _s: None,
        ).run(plan)
        assert len(result.errors) == 1
        assert result.errors[0].job.problem == 2
        assert result.errors[0].attempts == 2
        assert len(result.sweep) == 2  # problem 1's records survive


class TestBatching:
    def test_default_generate_batch_loops_generate(self):
        from repro.models import GenerationConfig

        backend = StubBackend(completions=("a", "b"))
        config = GenerationConfig(temperature=0.1, n=2)
        batches = backend.generate_batch(
            "stub", [("p1", config), ("p2", config)]
        )
        assert [[c.text for c in batch] for batch in batches] == [
            ["a", "b"], ["a", "b"],
        ]
        assert [q.prompt for q in backend.queries] == ["p1", "p2"]

    def test_zoo_batch_matches_loop(self):
        from repro.models import GenerationConfig
        from repro.problems import get_problem

        backend = LocalZooBackend(small_models())
        config = GenerationConfig(temperature=0.1, n=3)
        prompts = [get_problem(n).prompt(PromptLevel.LOW) for n in (1, 2, 3)]
        batched = backend.generate_batch(
            "codegen-6b-ft", [(p, config) for p in prompts]
        )
        looped = [backend.generate("codegen-6b-ft", p, config) for p in prompts]
        assert [[c.text for c in b] for b in batched] == [
            [c.text for c in b] for b in looped
        ]

    def test_batched_executor_record_parity(self):
        backend = LocalZooBackend(small_models())
        plan = SweepPlanner(backend).plan(SMALL)
        plain = SweepExecutor(backend, workers=1).run(plan)
        batched = SweepExecutor(backend, workers=4, batch_size=8).run(plan)
        assert batched.sweep.records == plain.sweep.records
        assert batched.stats["batch_size"] == 8

    def test_batch_size_cuts_generate_batch_calls(self):
        calls = []

        class CountingBatch(StubBackend):
            def generate_batch(self, model, requests):
                calls.append(len(requests))
                return super().generate_batch(model, requests)

        backend = CountingBatch()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(1,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2, 3, 4, 5, 6),
            )
        )
        SweepExecutor(backend, batch_size=3).run(plan)
        assert calls == [3, 3]

    def test_failing_batch_falls_back_to_per_job_isolation(self):
        from repro.models import match_prompt_to_problem

        class BatchlessFlaky(StubBackend):
            def generate_batch(self, model, requests):
                raise RuntimeError("batch endpoint down")

            def generate(self, model, prompt, config):
                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise RuntimeError("boom")
                return super().generate(model, prompt, config)

        backend = BatchlessFlaky()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(2,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2, 3),
            )
        )
        result = SweepExecutor(backend, batch_size=3).run(plan)
        # batch failure degraded to per-job runs: only P2 actually fails
        assert [e.job.problem for e in result.errors] == [2]
        assert {r.problem for r in result.sweep.records} == {1, 3}

    def test_batch_size_validated(self):
        with pytest.raises(ValueError):
            SweepExecutor(StubBackend(), batch_size=0)


class TestExecutorInterface:
    def test_sweep_executor_is_an_executor(self):
        assert isinstance(SweepExecutor(StubBackend()), Executor)

    def test_plan_subset(self):
        backend = LocalZooBackend(small_models())
        plan = SweepPlanner(backend).plan(SMALL)
        sub = plan.subset([0, 2], [])
        assert sub.jobs == [plan.jobs[0], plan.jobs[2]]
        assert sub.skipped == []
        assert sub.config is plan.config


def _record(**kw):
    base = dict(
        model="m-ft", base_model="m", fine_tuned=True, problem=1,
        difficulty=Difficulty.BASIC, level=PromptLevel.LOW, temperature=0.1,
        n=10, sample_index=0, compiled=True, passed=True,
        inference_seconds=1.0,
    )
    base.update(kw)
    return CompletionRecord(**base)


class TestSweepIndexInvalidation:
    def test_append_invalidates_index(self):
        sweep = Sweep(records=[_record()])
        assert len(sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)) == 1
        sweep.append(_record(sample_index=1))
        assert len(sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)) == 2

    def test_extend_invalidates_index(self):
        sweep = Sweep()
        sweep.extend([_record(), _record(sample_index=1)])
        assert len(sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)) == 2
        sweep.extend([_record(sample_index=2)])
        assert len(sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)) == 3

    def test_same_length_replacement_via_invalidate(self):
        sweep = Sweep(records=[_record(passed=True)])
        assert sweep.rate(
            sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)
        ) == 1.0
        # in-place replacement keeps the length: explicit invalidation hook
        sweep.records[0] = _record(passed=False)
        sweep.invalidate_index()
        assert sweep.rate(
            sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)
        ) == 0.0

    def test_legacy_direct_append_still_seen(self):
        sweep = Sweep(records=[_record()])
        sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)
        sweep.records.append(_record(sample_index=1))  # legacy pattern
        assert len(sweep.group("m-ft", Difficulty.BASIC, PromptLevel.LOW, 0.1, 10)) == 2
