"""Elaboration and compile-gate tests (repro.verilog.elaborate/compile)."""

import pytest

from repro.verilog import (
    ElaborationError,
    check_syntax,
    compile_design,
    elaborate,
    parse,
)


class TestCompileGate:
    def test_good_module_compiles(self):
        report = compile_design(
            "module m(input a, output b); assign b = a; endmodule"
        )
        assert report.ok
        assert report.design is not None

    def test_syntax_error_reported_with_line(self):
        report = compile_design("module m(input a output b); endmodule")
        assert not report.ok
        assert "line" in report.errors[0]

    def test_check_syntax_does_not_elaborate(self):
        # undeclared identifier is an elaboration error, not a parse error
        source = "module m(output b); assign b = ghost; endmodule"
        assert check_syntax(source).ok
        assert not compile_design(source).ok

    def test_default_top_is_last_module(self):
        source = (
            "module a(input x, output y); assign y = x; endmodule\n"
            "module b; endmodule"
        )
        report = compile_design(source)
        assert report.ok
        assert report.design.top == "b"

    def test_explicit_top(self):
        source = "module a; endmodule\nmodule b; endmodule"
        assert compile_design(source, top="a").design.top == "a"

    def test_missing_top_module(self):
        report = compile_design("module a; endmodule", top="zz")
        assert not report.ok


class TestNameResolution:
    def test_undeclared_rhs_identifier(self):
        report = compile_design(
            "module m(output b); assign b = nothere; endmodule"
        )
        assert not report.ok
        assert "nothere" in report.error_text

    def test_undeclared_lvalue(self):
        report = compile_design(
            "module m(input a); assign ghost = a; endmodule"
        )
        assert not report.ok

    def test_undeclared_in_always(self):
        report = compile_design(
            "module m(input clk); always @(posedge clk) ghost <= 1; endmodule"
        )
        assert not report.ok

    def test_undeclared_in_sensitivity(self):
        report = compile_design(
            "module m(output reg q); always @(ghost) q = 1; endmodule"
        )
        assert not report.ok

    def test_parameter_resolves(self):
        report = compile_design(
            "module m(output [7:0] v); parameter K = 42; assign v = K; endmodule"
        )
        assert report.ok

    def test_duplicate_declaration_rejected(self):
        report = compile_design("module m; wire w; reg w; endmodule")
        assert not report.ok

    def test_port_body_redeclaration_ok(self):
        source = """
        module m(a, q);
          input a;
          output q;
          reg q;
          always @(a) q = a;
        endmodule
        """
        assert compile_design(source).ok

    def test_port_redeclared_different_width_rejected(self):
        source = """
        module m(a);
          input a;
          wire [3:0] a;
        endmodule
        """
        assert not compile_design(source).ok


class TestParameters:
    def test_parameter_sizes_range(self):
        source = """
        module m #(parameter W = 8)(output [W-1:0] v);
          assign v = 0;
        endmodule
        """
        design = compile_design(source).design
        assert design.signal("v").width == 8

    def test_localparam_not_overridable(self):
        source = """
        module child; localparam K = 1; endmodule
        module top; child #(.K(2)) c(); endmodule
        """
        report = compile_design(source, top="top")
        assert not report.ok

    def test_positional_parameter_override(self):
        source = """
        module child #(parameter A = 1, B = 2)(output [7:0] v);
          assign v = A + B;
        endmodule
        module top(output [7:0] v);
          child #(10, 20) c(.v(v));
        endmodule
        """
        design = compile_design(source, top="top").design
        assert design is not None

    def test_parameter_chain(self):
        source = """
        module m(output [7:0] v);
          parameter A = 4;
          parameter B = A * 2;
          assign v = B;
        endmodule
        """
        assert compile_design(source).ok

    def test_too_many_positional_overrides(self):
        source = """
        module child #(parameter A = 1)(); endmodule
        module top; child #(1, 2) c(); endmodule
        """
        assert not compile_design(source, top="top").ok


class TestHierarchyErrors:
    def test_unknown_module(self):
        report = compile_design("module top; ghost g(); endmodule")
        assert not report.ok
        assert "ghost" in report.error_text

    def test_unknown_port_name(self):
        source = """
        module child(input a); endmodule
        module top; child c(.b(1'b0)); endmodule
        """
        assert not compile_design(source, top="top").ok

    def test_too_many_positional_connections(self):
        source = """
        module child(input a); endmodule
        module top; child c(1'b0, 1'b1); endmodule
        """
        assert not compile_design(source, top="top").ok

    def test_recursive_instantiation_caught(self):
        source = "module a; a child(); endmodule"
        report = compile_design(source, top="a")
        assert not report.ok
        assert "depth" in report.error_text or "recursive" in report.error_text

    def test_duplicate_instance_name(self):
        source = """
        module child; endmodule
        module top; child c(); child c(); endmodule
        """
        assert not compile_design(source, top="top").ok


class TestSignals:
    def test_signal_lookup_by_path(self):
        source = """
        module child(output [3:0] q); assign q = 4'd5; endmodule
        module top; wire [3:0] w; child inner(.q(w)); endmodule
        """
        design = compile_design(source, top="top").design
        assert design.signal("w").width == 4
        assert design.signal("inner.q").width == 4
        with pytest.raises(KeyError):
            design.signal("inner.zzz")

    def test_integer_is_32_bit_signed(self):
        design = compile_design("module m; integer i; endmodule").design
        signal = design.signal("i")
        assert signal.width == 32
        assert signal.signed

    def test_memory_bounds(self):
        design = compile_design(
            "module m; reg [7:0] mem [0:63]; endmodule"
        ).design
        signal = design.signal("mem")
        assert signal.memory is not None
        assert (signal.array_lo, signal.array_hi) == (0, 63)

    def test_reg_initializer(self):
        design = compile_design(
            "module m; reg [3:0] r = 4'd7; endmodule"
        ).design
        assert design.signal("r").value.to_unsigned() == 7

    def test_ascending_range_bit_offset(self):
        design = compile_design(
            "module m; reg [0:3] r; endmodule"
        ).design
        signal = design.signal("r")
        assert signal.bit_offset(0) == 3  # declared MSB
        assert signal.bit_offset(3) == 0  # declared LSB

    def test_descending_range_bit_offset(self):
        design = compile_design("module m; reg [7:4] r; endmodule").design
        signal = design.signal("r")
        assert signal.bit_offset(7) == 3
        assert signal.bit_offset(4) == 0
        assert signal.bit_offset(3) is None


class TestConstantErrors:
    def test_x_in_constant_range(self):
        report = compile_design("module m; reg [1'bx:0] r; endmodule")
        assert not report.ok

    def test_parameter_without_value(self):
        report = check_syntax("module m; parameter K; endmodule")
        assert not report.ok
