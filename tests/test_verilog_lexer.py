"""Tests for the Verilog tokenizer (repro.verilog.lexer)."""

import pytest

from repro.verilog import LexError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]  # drop EOF


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_source_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"

    def test_keywords_recognized(self):
        assert kinds("module endmodule always begin end") == ["KEYWORD"] * 5

    def test_identifiers(self):
        tokens = tokenize("foo _bar baz2 a$b")
        assert [t.kind for t in tokens[:-1]] == ["ID"] * 4

    def test_escaped_identifier(self):
        tokens = tokenize(r"\my+net ")
        assert tokens[0].kind == "ID"
        assert tokens[0].text == "my+net"

    def test_sysid(self):
        tokens = tokenize("$display $finish")
        assert all(t.kind == "SYSID" for t in tokens[:-1])

    def test_bare_dollar_rejected(self):
        with pytest.raises(LexError):
            tokenize("$ ")

    def test_line_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestComments:
    def test_line_comment_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_directive_skipped_to_eol(self):
        assert texts("`timescale 1ns/1ps\nmodule") == ["module"]

    def test_line_numbers_after_block_comment(self):
        tokens = tokenize("/* a\nb\nc */ x")
        assert tokens[0].line == 3


class TestNumbers:
    def test_plain_decimal(self):
        token = tokenize("42")[0]
        assert token.kind == "NUMBER"
        assert token.meta == (42,)

    def test_underscore_in_decimal(self):
        assert tokenize("1_000")[0].meta == (1000,)

    def test_sized_hex(self):
        token = tokenize("8'hFF")[0]
        assert token.kind == "BASED_NUMBER"
        assert token.meta == (8, "h", "FF", False)

    def test_sized_binary(self):
        assert tokenize("4'b1010")[0].meta == (4, "b", "1010", False)

    def test_sized_decimal(self):
        assert tokenize("4'd12")[0].meta == (4, "d", "12", False)

    def test_sized_octal(self):
        assert tokenize("6'o77")[0].meta == (6, "o", "77", False)

    def test_signed_literal(self):
        assert tokenize("8'shFF")[0].meta == (8, "h", "FF", True)

    def test_unsized_based(self):
        assert tokenize("'b101")[0].meta == (None, "b", "101", False)

    def test_x_and_z_digits(self):
        assert tokenize("4'b1x0z")[0].meta == (4, "b", "1x0z", False)

    def test_underscores_in_based(self):
        assert tokenize("16'hDE_AD")[0].meta == (16, "h", "DEAD", False)

    def test_size_with_space_before_base(self):
        token = tokenize("4 'd12")[0]
        assert token.kind == "BASED_NUMBER"
        assert token.meta == (4, "d", "12", False)

    def test_based_without_digits_rejected(self):
        with pytest.raises(LexError):
            tokenize("4'h ;")


class TestStrings:
    def test_simple_string(self):
        token = tokenize('"hello"')[0]
        assert token.kind == "STRING"
        assert token.text == '"hello"'

    def test_string_with_escape(self):
        token = tokenize(r'"a\"b"')[0]
        assert token.kind == "STRING"

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_newline_in_string_rejected(self):
        with pytest.raises(LexError):
            tokenize('"a\nb"')


class TestOperators:
    def test_maximal_munch_shifts(self):
        assert texts("a <<< b >>> c") == ["a", "<<<", "b", ">>>", "c"]

    def test_case_equality(self):
        assert texts("a === b !== c") == ["a", "===", "b", "!==", "c"]

    def test_le_vs_shift(self):
        assert texts("a <= b << c") == ["a", "<=", "b", "<<", "c"]

    def test_reduction_prefixes(self):
        assert texts("~& ~| ~^") == ["~&", "~|", "~^"]

    def test_punctuation(self):
        assert texts("( ) [ ] { } ; , . # @ ? :") == [
            "(", ")", "[", "]", "{", "}", ";", ",", ".", "#", "@", "?", ":",
        ]

    def test_unknown_character_rejected(self):
        with pytest.raises(LexError):
            tokenize("a £ b")


class TestRealWorld:
    def test_module_header(self):
        source = "module counter(input clk, output reg [3:0] q);"
        token_kinds = kinds(source)
        assert token_kinds[0] == "KEYWORD"
        assert "OP" in token_kinds

    def test_always_block(self):
        source = "always @(posedge clk) q <= q + 4'd1;"
        token_texts = texts(source)
        assert "posedge" in token_texts
        assert "<=" in token_texts

    def test_token_count_stable(self):
        source = "assign out = sel ? b : a;"
        assert len(tokenize(source)) == 10  # 9 tokens + EOF
