"""Tests for the asyncio sweep stack (repro.service.aio): executor
parity, retry/batch semantics, event streams, cancellation, codecs."""

import asyncio

import pytest

from repro.backends import Backend, BackendError, StubBackend
from repro.eval import Evaluator, SweepConfig, SweepExecutor, SweepPlanner
from repro.eval.export import sweep_to_json
from repro.eval.jobs import RetryPolicy
from repro.models import GenerationConfig
from repro.problems import PromptLevel
from repro.service.aio import (
    AsyncBackend,
    AsyncHTTPChatBackend,
    AsyncServiceBackend,
    AsyncSweepExecutor,
    StreamProtocolError,
    assemble_stream_result,
    decode_frame,
    encode_frame,
    ensure_async,
    from_async,
    to_async,
)

SMALL = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


class AsyncStub(AsyncBackend):
    """Async-native stub: scripted completions, latency, cancel tracking."""

    name = "async-stub"

    def __init__(self, latency=0.0, fail_first=0, **stub_kwargs):
        self.stub = StubBackend(**stub_kwargs)
        self.latency = latency
        self.fail_first = fail_first
        self.calls = 0
        self.batch_calls = 0
        self.started = 0
        self.completed = 0
        self.cancelled = 0

    def models(self):
        return self.stub.models()

    def capabilities(self, model):
        return self.stub.capabilities(model)

    async def generate_async(self, model, prompt, config):
        self.calls += 1
        self.started += 1
        try:
            if self.latency:
                await asyncio.sleep(self.latency)
            if self.calls <= self.fail_first:
                raise BackendError(f"flaky failure #{self.calls}")
            result = self.stub.generate(model, prompt, config)
            self.completed += 1
            return result
        except asyncio.CancelledError:
            self.cancelled += 1
            raise


class AsyncBatchStub(AsyncStub):
    """Adds a native batch path (optionally broken)."""

    def __init__(self, batch_raises=False, **kwargs):
        super().__init__(**kwargs)
        self.batch_raises = batch_raises

    async def generate_batch_async(self, model, requests):
        self.batch_calls += 1
        if self.batch_raises:
            raise BackendError("batch endpoint down")
        if self.latency:
            await asyncio.sleep(self.latency)
        return [
            self.stub.generate(model, prompt, config)
            for prompt, config in requests
        ]


def run(coroutine):
    return asyncio.run(coroutine)


async def collect_stream(executor, plan, stop_after=None, events=None):
    """Consume executor.stream; optionally abort after N frames."""
    frames = []
    stream = executor.stream(plan)
    try:
        async for frame in stream:
            frames.append(frame)
            if events is not None:
                events.append(frame["event"])
            if stop_after is not None and len(frames) >= stop_after:
                break
    finally:
        await stream.aclose()
    return frames


class TestAsyncExecutorParity:
    def test_matches_serial_records_exactly(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        serial = SweepExecutor(stub, evaluator=Evaluator()).run(plan)
        result = AsyncSweepExecutor(
            stub, evaluator=Evaluator(), concurrency=4
        ).run(plan)
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)
        assert result.skipped == serial.skipped
        assert result.errors == serial.errors
        assert result.stats["executor"] == "async"
        assert result.stats["concurrency"] == 4

    def test_async_native_backend_parity(self):
        sync_stub = StubBackend()
        astub = AsyncStub()
        plan = SweepPlanner(sync_stub).plan(SMALL)
        serial = SweepExecutor(sync_stub, evaluator=Evaluator()).run(plan)
        result = AsyncSweepExecutor(
            astub, evaluator=Evaluator(), concurrency=8
        ).run(plan)
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)
        assert astub.calls == len(plan.jobs)

    def test_zoo_parity_with_skips(self):
        from repro.backends import create_backend

        zoo = create_backend("zoo")
        config = SweepConfig(
            temperatures=(0.1,),
            completions_per_prompt=(2, 25),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1,),
        )
        models = ["codegen-2b-ft", "j1-large-7b-ft"]
        plan = SweepPlanner(zoo).plan(config, models=models)
        assert plan.skipped  # j1 rejects n=25
        serial = SweepExecutor(zoo, evaluator=Evaluator()).run(plan)
        result = AsyncSweepExecutor(
            zoo, evaluator=Evaluator(), concurrency=3
        ).run(plan)
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)
        assert result.skipped == serial.skipped

    def test_run_inside_loop_refuses(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        executor = AsyncSweepExecutor(stub)

        async def inside():
            with pytest.raises(RuntimeError, match="running event loop"):
                executor.run(plan)

        run(inside())

    def test_progress_callback_counts_jobs(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        seen = []
        AsyncSweepExecutor(
            stub, progress=lambda done, total, job: seen.append((done, total))
        ).run(plan)
        assert len(seen) == len(plan.jobs)
        assert seen[-1] == (len(plan.jobs), len(plan.jobs))

    def test_concurrency_must_be_positive(self):
        with pytest.raises(ValueError, match="concurrency"):
            AsyncSweepExecutor(StubBackend(), concurrency=0)


class TestAsyncRetryAndBatch:
    def test_retry_recovers_transient_failures(self):
        astub = AsyncStub(fail_first=2)
        plan = SweepPlanner(astub).plan(SMALL)
        naps = []

        async def fake_sleep(delay):
            naps.append(delay)

        result = AsyncSweepExecutor(
            astub,
            concurrency=1,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
            sleep=fake_sleep,
        ).run(plan)
        assert not result.errors
        # two failures, each retried immediately: backoff schedule is
        # deterministic (0.5 after first failure of each affected job)
        assert naps and all(n in (0.5, 1.0) for n in naps)

    def test_retry_exhaustion_records_attempts(self):
        astub = AsyncStub(fail_first=99)
        plan = SweepPlanner(astub).plan(SMALL)
        result = AsyncSweepExecutor(
            astub, concurrency=2, retry=RetryPolicy(max_attempts=3)
        ).run(plan)
        assert len(result.errors) == len(plan.jobs)
        assert all(e.attempts == 3 for e in result.errors)
        assert all("flaky failure" in e.error for e in result.errors)

    def test_non_backend_errors_fail_fast(self):
        class Exploding(AsyncStub):
            async def generate_async(self, model, prompt, config):
                raise RuntimeError("not transient")

        astub = Exploding()
        plan = SweepPlanner(astub).plan(SMALL)
        result = AsyncSweepExecutor(
            astub, retry=RetryPolicy(max_attempts=5)
        ).run(plan)
        assert all(e.attempts == 1 for e in result.errors)
        assert all("RuntimeError" in e.error for e in result.errors)

    def test_batching_uses_native_batch_path(self):
        astub = AsyncBatchStub()
        plan = SweepPlanner(astub).plan(SMALL)
        sync_serial = SweepExecutor(
            StubBackend(), evaluator=Evaluator()
        ).run(SweepPlanner(StubBackend()).plan(SMALL))
        result = AsyncSweepExecutor(
            astub, evaluator=Evaluator(), batch_size=4
        ).run(plan)
        assert astub.batch_calls >= 1
        assert astub.calls == 0  # whole plan went through batches
        assert sweep_to_json(result.sweep) == sweep_to_json(
            sync_serial.sweep
        )

    def test_broken_batch_falls_back_to_per_job_retry(self):
        astub = AsyncBatchStub(batch_raises=True, fail_first=1)
        plan = SweepPlanner(astub).plan(SMALL)
        result = AsyncSweepExecutor(
            astub, batch_size=4, retry=RetryPolicy(max_attempts=2)
        ).run(plan)
        assert astub.batch_calls >= 1
        assert astub.calls >= len(plan.jobs)  # per-job fallback ran
        assert not result.errors  # retry absorbed the injected failure


class TestStreamFrames:
    def test_stream_reassembles_to_serial_parity(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        serial = SweepExecutor(stub, evaluator=Evaluator()).run(plan)
        events = []
        frames = run(
            collect_stream(
                AsyncSweepExecutor(stub, evaluator=Evaluator(),
                                   concurrency=4),
                plan,
                events=events,
            )
        )
        result = assemble_stream_result(frames)
        assert sweep_to_json(result.sweep) == sweep_to_json(serial.sweep)
        assert result.skipped == serial.skipped
        assert events[-1] == "done"
        assert events.count("job_started") == len(plan.jobs)
        assert events.count("record") == len(serial.sweep)
        assert events.count("progress") == len(plan.jobs)

    def test_stream_carries_job_errors(self):
        astub = AsyncStub(fail_first=1)
        plan = SweepPlanner(astub).plan(SMALL)
        frames = run(
            collect_stream(AsyncSweepExecutor(astub, concurrency=1), plan)
        )
        errors = [f for f in frames if f["event"] == "job_error"]
        assert len(errors) == 1
        result = assemble_stream_result(frames)
        assert len(result.errors) == 1
        assert "flaky failure" in result.errors[0].error

    def test_frames_survive_wire_roundtrip(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        frames = run(collect_stream(AsyncSweepExecutor(stub), plan))
        rewired = [decode_frame(encode_frame(f)) for f in frames]
        direct = assemble_stream_result(frames)
        wired = assemble_stream_result(rewired)
        assert sweep_to_json(direct.sweep) == sweep_to_json(wired.sweep)

    def test_early_close_cancels_in_flight_jobs(self):
        class Staggered(AsyncStub):
            """First job returns fast; every other one sleeps forever."""

            async def generate_async(self, model, prompt, config):
                self.calls += 1
                self.started += 1
                try:
                    await asyncio.sleep(0.01 if self.calls == 1 else 30.0)
                    result = self.stub.generate(model, prompt, config)
                    self.completed += 1
                    return result
                except asyncio.CancelledError:
                    self.cancelled += 1
                    raise

        astub = Staggered()
        plan = SweepPlanner(astub).plan(SMALL)
        assert len(plan.jobs) >= 4

        async def abort_after_first_record():
            executor = AsyncSweepExecutor(astub, concurrency=2)
            stream = executor.stream(plan)
            async for frame in stream:
                if frame["event"] == "record":
                    break
            await stream.aclose()

        run(abort_after_first_record())
        assert astub.cancelled >= 1  # the slow in-flight job was cancelled
        assert astub.completed == 1  # nothing else ever finished
        assert astub.started < len(plan.jobs) + 1  # queued chunks never ran


class TestStreamProtocolErrors:
    def test_decode_rejects_non_json(self):
        with pytest.raises(StreamProtocolError, match="not JSON"):
            decode_frame(b"{half a frame")

    def test_decode_rejects_unknown_event(self):
        with pytest.raises(StreamProtocolError, match="unknown frame"):
            decode_frame(b'{"event": "telemetry"}')

    def test_decode_rejects_missing_fields(self):
        with pytest.raises(StreamProtocolError, match="missing required"):
            decode_frame(b'{"event": "record", "job_index": 0}')

    def test_decode_rejects_non_object(self):
        with pytest.raises(StreamProtocolError, match="expected an object"):
            decode_frame(b"[1, 2, 3]")

    def test_assemble_requires_terminal_frame(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        frames = run(collect_stream(AsyncSweepExecutor(stub), plan))
        assert frames[-1]["event"] == "done"
        with pytest.raises(StreamProtocolError, match="without a terminal"):
            assemble_stream_result(frames[:-1])

    def test_assemble_rejects_count_mismatch(self):
        stub = StubBackend()
        plan = SweepPlanner(stub).plan(SMALL)
        frames = run(collect_stream(AsyncSweepExecutor(stub), plan))
        # drop one record frame: the lossless terminal must notice
        body = [f for f in frames if f["event"] != "record"]
        records = [f for f in frames if f["event"] == "record"]
        with pytest.raises(StreamProtocolError):
            assemble_stream_result(body + records[:-1])


class TestBackendAdapters:
    def test_roundtrip_unwraps_to_original(self):
        stub = StubBackend()
        assert from_async(to_async(stub)) is stub
        astub = AsyncStub()
        assert to_async(from_async(astub)) is astub

    def test_ensure_async_passthrough(self):
        astub = AsyncStub()
        assert ensure_async(astub) is astub

    def test_threaded_adapter_delegates_metadata(self):
        stub = StubBackend(supports_n25=False, max_tokens=128)
        adapted = to_async(stub)
        assert adapted.name == "stub"
        assert adapted.models() == ["stub"]
        capabilities = adapted.capabilities("stub")
        assert capabilities.supports_n25 is False
        assert capabilities.max_tokens == 128
        assert adapted.identity("stub-ft") == ("stub", True)

    def test_blocking_adapter_generates_via_loop(self):
        astub = AsyncStub()
        blocking = from_async(astub)
        assert isinstance(blocking, Backend)
        completions = blocking.generate(
            "stub", "module m;", GenerationConfig(temperature=0.1, n=3)
        )
        assert len(completions) == 3
        batches = blocking.generate_batch(
            "stub",
            [("module m;", GenerationConfig(temperature=0.1, n=2))] * 2,
        )
        assert [len(b) for b in batches] == [2, 2]


class TestAsyncRemoteClients:
    def test_async_service_backend_generates_non_blocking(self):
        from repro.api import Session
        from repro.service import (
            ServiceApp,
            ServiceBackend,
            in_process_transport,
        )

        app = ServiceApp(Session(backend="stub-canonical"))

        async def transport(method, path, payload=None):
            status, body = app.handle(method, path, payload)
            if status >= 400:
                raise BackendError(body.get("error", str(status)))
            return body

        backend = AsyncServiceBackend(
            sync_backend=ServiceBackend(transport=in_process_transport(app)),
            transport=transport,
        )
        assert backend.models() == ["stub"]

        async def scenario():
            completions = await backend.generate_async(
                "stub", "module m;", GenerationConfig(temperature=0.1, n=2)
            )
            assert len(completions) == 2
            batches = await backend.generate_batch_async(
                "stub",
                [("module m;", GenerationConfig(temperature=0.1, n=2))] * 3,
            )
            assert [len(b) for b in batches] == [2, 2, 2]

        run(scenario())

    def test_async_chat_backend_fires_samples_concurrently(self):
        in_flight = {"now": 0, "peak": 0}

        async def transport(url, payload):
            in_flight["now"] += 1
            in_flight["peak"] = max(in_flight["peak"], in_flight["now"])
            await asyncio.sleep(0.02)
            in_flight["now"] -= 1
            seed = payload["options"]["seed"]
            return {"message": {"content": f"// sample {seed}\nendmodule"}}

        backend = AsyncHTTPChatBackend(transport=transport)
        completions = asyncio.run(
            backend.generate_async(
                "chat-model",
                "module m;",
                GenerationConfig(temperature=0.1, n=5),
            )
        )
        assert len(completions) == 5
        # samples keep request order even though they overlap
        assert [c.text for c in completions] == [
            f"// sample {i}\nendmodule" for i in range(5)
        ]
        assert in_flight["peak"] >= 2

    def test_async_chat_backend_offline_safe(self):
        backend = AsyncHTTPChatBackend()
        with pytest.raises(BackendError, match="no transport"):
            asyncio.run(
                backend.generate_async(
                    "chat-model", "module m;",
                    GenerationConfig(temperature=0.1, n=1),
                )
            )
