"""Differential testing: the simulator vs a Python integer oracle.

Hypothesis generates random combinational expressions over a set of
known-value registers; each expression is evaluated twice — by the event-
driven simulator through a generated module, and by a Python big-int
oracle implementing the LRM width/sign rules directly.  Any divergence is
a real bug in lexer, parser, width resolution, or 4-state arithmetic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.verilog import run_simulation

WIDTH = 8
MASK = (1 << WIDTH) - 1

# (verilog operator, python oracle on masked unsigned ints)
_BINOPS = {
    "+": lambda a, b: (a + b) & MASK,
    "-": lambda a, b: (a - b) & MASK,
    "*": lambda a, b: (a * b) & MASK,
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}

_COMPARES = {
    "==": lambda a, b: int(a == b),
    "!=": lambda a, b: int(a != b),
    "<": lambda a, b: int(a < b),
    "<=": lambda a, b: int(a <= b),
    ">": lambda a, b: int(a > b),
    ">=": lambda a, b: int(a >= b),
}


class _Expr:
    """A (verilog text, self-determined width, context evaluator) triple.

    ``at(width)`` implements the LRM two-step rule the real evaluator
    uses: the node is evaluated in a context of ``max(width, self
    width)`` bits — so e.g. ``(8'hFF << 4)`` retains its high bits when a
    16-bit context surrounds it.
    """

    def __init__(self, text: str, width: int, at):
        self.text = text
        self.width = width
        self._at = at

    def at(self, width: int) -> int:
        context = max(width, self.width)
        return self._at(context) & ((1 << context) - 1)

    @property
    def value(self) -> int:
        return self.at(self.width)


def _leaf(text: str, width: int, value: int) -> _Expr:
    return _Expr(text, width, lambda _w: value)


@st.composite
def expressions(draw, variables: dict[str, int], depth: int = 0):
    """Random expression over the fixed variables, with a context oracle."""
    if depth >= 3 or draw(st.booleans()):
        if draw(st.booleans()):
            name = draw(st.sampled_from(sorted(variables)))
            return _leaf(name, WIDTH, variables[name])
        literal = draw(st.integers(min_value=0, max_value=MASK))
        return _leaf(f"{WIDTH}'d{literal}", WIDTH, literal)
    kind = draw(st.sampled_from(
        ["bin", "cmp", "not", "neg", "shift", "concat", "ternary"]
    ))
    if kind == "bin":
        op = draw(st.sampled_from(sorted(_BINOPS)))
        lhs = draw(expressions(variables, depth + 1))
        rhs = draw(expressions(variables, depth + 1))
        width = max(lhs.width, rhs.width)
        ops = {"+": lambda a, b: a + b, "-": lambda a, b: a - b,
               "*": lambda a, b: a * b, "&": lambda a, b: a & b,
               "|": lambda a, b: a | b, "^": lambda a, b: a ^ b}

        def eval_bin(w, lhs=lhs, rhs=rhs, func=ops[op]):
            return func(lhs.at(w), rhs.at(w))

        return _Expr(f"({lhs.text} {op} {rhs.text})", width, eval_bin)
    if kind == "cmp":
        op = draw(st.sampled_from(sorted(_COMPARES)))
        lhs = draw(expressions(variables, depth + 1))
        rhs = draw(expressions(variables, depth + 1))
        inner = max(lhs.width, rhs.width)

        def eval_cmp(_w, lhs=lhs, rhs=rhs, func=_COMPARES[op], inner=inner):
            return func(lhs.at(inner), rhs.at(inner))

        return _Expr(f"({lhs.text} {op} {rhs.text})", 1, eval_cmp)
    if kind == "not":
        inner = draw(expressions(variables, depth + 1))
        return _Expr(
            f"(~{inner.text})", inner.width,
            lambda w, inner=inner: ~inner.at(w),
        )
    if kind == "neg":
        inner = draw(expressions(variables, depth + 1))
        return _Expr(
            f"(-{inner.text})", inner.width,
            lambda w, inner=inner: -inner.at(w),
        )
    if kind == "shift":
        inner = draw(expressions(variables, depth + 1))
        amount = draw(st.integers(min_value=0, max_value=WIDTH))
        direction = draw(st.sampled_from(["<<", ">>"]))

        def eval_shift(w, inner=inner, amount=amount, direction=direction):
            base = inner.at(w)
            return (base << amount) if direction == "<<" else (base >> amount)

        return _Expr(
            f"({inner.text} {direction} {amount})", inner.width, eval_shift
        )
    if kind == "concat":
        lhs = draw(expressions(variables, depth + 1))
        rhs = draw(expressions(variables, depth + 1))
        width = lhs.width + rhs.width

        def eval_concat(_w, lhs=lhs, rhs=rhs):
            # concat operands are always self-determined
            return (lhs.at(lhs.width) << rhs.width) | rhs.at(rhs.width)

        return _Expr(
            "{" + lhs.text + ", " + rhs.text + "}", width, eval_concat
        )
    # ternary
    cond = draw(expressions(variables, depth + 1))
    lhs = draw(expressions(variables, depth + 1))
    rhs = draw(expressions(variables, depth + 1))
    width = max(lhs.width, rhs.width)

    def eval_ternary(w, cond=cond, lhs=lhs, rhs=rhs):
        chosen = lhs if cond.at(cond.width) else rhs
        return chosen.at(w)

    return _Expr(
        f"({cond.text} ? {lhs.text} : {rhs.text})", width, eval_ternary
    )


def _simulate_expression(text: str, variables: dict[str, int], out_width: int) -> int:
    decls = "\n".join(
        f"  reg [{WIDTH - 1}:0] {name} = {WIDTH}'d{value};"
        for name, value in variables.items()
    )
    source = (
        "module tb;\n"
        f"{decls}\n"
        f"  reg [{out_width - 1}:0] out;\n"
        "  initial begin\n"
        f"    out = {text};\n"
        '    $display("%0d", out);\n'
        "    $finish;\n"
        "  end\n"
        "endmodule\n"
    )
    report, result = run_simulation(source, top="tb")
    assert report.ok, (report.errors, source)
    assert result is not None and result.finished
    return int(result.output[0])


_VARS = {"va": 0xA5, "vb": 0x3C, "vc": 0x01, "vd": 0xFF}


@settings(max_examples=120, deadline=None)
@given(expr=expressions(_VARS))
def test_prop_expression_matches_oracle(expr):
    mask = (1 << expr.width) - 1
    measured = _simulate_expression(expr.text, _VARS, expr.width)
    assert measured == expr.value & mask, expr.text


@settings(max_examples=40, deadline=None)
@given(
    values=st.lists(
        st.integers(min_value=0, max_value=MASK), min_size=4, max_size=4
    ),
    expr_seed=st.integers(min_value=0, max_value=2**16),
)
def test_prop_sum_reduction_matches_oracle(values, expr_seed):
    """Chained adds through a for-loop match Python's sum."""
    array_init = "\n".join(
        f"    mem[{i}] = {WIDTH}'d{v};" for i, v in enumerate(values)
    )
    source = (
        "module tb;\n"
        f"  reg [{WIDTH - 1}:0] mem [0:3];\n"
        f"  reg [{WIDTH + 3}:0] total;\n"
        "  integer i;\n"
        "  initial begin\n"
        f"{array_init}\n"
        "    total = 0;\n"
        "    for (i = 0; i < 4; i = i + 1) total = total + mem[i];\n"
        '    $display("%0d", total);\n'
        "    $finish;\n  end\nendmodule\n"
    )
    report, result = run_simulation(source, top="tb")
    assert report.ok and result is not None
    assert int(result.output[0]) == sum(values)


@settings(max_examples=40, deadline=None)
@given(
    value=st.integers(min_value=-(1 << (WIDTH - 1)), max_value=(1 << (WIDTH - 1)) - 1),
    amount=st.integers(min_value=0, max_value=WIDTH - 1),
)
def test_prop_signed_arith_shift_matches_python(value, amount):
    source = (
        "module tb;\n"
        f"  reg signed [{WIDTH - 1}:0] v;\n"
        "  initial begin\n"
        f"    v = {value};\n"
        f"    v = v >>> {amount};\n"
        '    $display("%0d", v);\n'
        "    $finish;\n  end\nendmodule\n"
    )
    report, result = run_simulation(source, top="tb")
    assert report.ok and result is not None
    assert int(result.output[0]) == value >> amount  # Python >> floors


@settings(max_examples=30, deadline=None)
@given(
    a=st.integers(min_value=0, max_value=MASK),
    b=st.integers(min_value=1, max_value=MASK),
)
def test_prop_division_and_modulo_match_oracle(a, b):
    source = (
        "module tb;\n"
        f"  reg [{WIDTH - 1}:0] q, r;\n"
        "  initial begin\n"
        f"    q = {WIDTH}'d{a} / {WIDTH}'d{b};\n"
        f"    r = {WIDTH}'d{a} % {WIDTH}'d{b};\n"
        '    $display("%0d %0d", q, r);\n'
        "    $finish;\n  end\nendmodule\n"
    )
    report, result = run_simulation(source, top="tb")
    assert report.ok and result is not None
    q_text, r_text = result.output[0].split()
    assert int(q_text) == a // b
    assert int(r_text) == a % b


@settings(max_examples=30, deadline=None)
@given(bits=st.integers(min_value=0, max_value=MASK))
def test_prop_reductions_match_oracle(bits):
    source = (
        "module tb;\n"
        f"  reg [{WIDTH - 1}:0] v;\n"
        "  reg r_and, r_or, r_xor;\n"
        "  initial begin\n"
        f"    v = {WIDTH}'d{bits};\n"
        "    r_and = &v; r_or = |v; r_xor = ^v;\n"
        '    $display("%b%b%b", r_and, r_or, r_xor);\n'
        "    $finish;\n  end\nendmodule\n"
    )
    report, result = run_simulation(source, top="tb")
    assert report.ok and result is not None
    expected = (
        f"{int(bits == MASK)}{int(bits != 0)}{bin(bits).count('1') % 2}"
    )
    assert result.output[0] == expected


@settings(max_examples=30, deadline=None)
@given(
    value=st.integers(min_value=0, max_value=MASK),
    hi=st.integers(min_value=0, max_value=WIDTH - 1),
    lo=st.integers(min_value=0, max_value=WIDTH - 1),
)
def test_prop_part_select_matches_oracle(value, hi, lo):
    if hi < lo:
        hi, lo = lo, hi
    source = (
        "module tb;\n"
        f"  reg [{WIDTH - 1}:0] v;\n"
        f"  reg [{hi - lo}:0] part;\n"
        "  initial begin\n"
        f"    v = {WIDTH}'d{value};\n"
        f"    part = v[{hi}:{lo}];\n"
        '    $display("%0d", part);\n'
        "    $finish;\n  end\nendmodule\n"
    )
    report, result = run_simulation(source, top="tb")
    assert report.ok and result is not None
    expected = (value >> lo) & ((1 << (hi - lo + 1)) - 1)
    assert int(result.output[0]) == expected
