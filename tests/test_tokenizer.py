"""Tests for the BPE tokenizer (repro.tokenizer)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.tokenizer import BPETokenizer, pretokenize

SAMPLE = (
    "module counter(input clk, input rst, output reg [3:0] q);\n"
    "  always @(posedge clk) begin\n"
    "    if (rst) q <= 4'd0;\n"
    "    else q <= q + 4'd1;\n"
    "  end\n"
    "endmodule\n"
) * 8


@pytest.fixture(scope="module")
def trained():
    return BPETokenizer.train(SAMPLE, vocab_size=400)


class TestPretokenize:
    def test_lossless(self):
        data = b"module m(input a); // comment\n  assign b = a + 1;"
        assert b"".join(pretokenize(data)) == data

    def test_identifiers_kept_whole(self):
        chunks = pretokenize(b"assign foo_bar = baz;")
        assert b" foo_bar" in chunks or b"foo_bar" in chunks

    def test_leading_space_attaches(self):
        chunks = pretokenize(b"a b")
        assert chunks == [b"a", b" b"]


class TestTraining:
    def test_vocab_grows(self, trained):
        assert 256 < trained.vocab_size <= 400

    def test_vocab_size_floor(self):
        with pytest.raises(ValueError):
            BPETokenizer.train("abc", vocab_size=100)

    def test_training_is_deterministic(self):
        a = BPETokenizer.train(SAMPLE, vocab_size=300)
        b = BPETokenizer.train(SAMPLE, vocab_size=300)
        assert a.merges == b.merges

    def test_training_stops_when_no_repeats(self):
        tok = BPETokenizer.train("abcdefg", vocab_size=1000)
        assert tok.vocab_size < 300  # nothing repeats twice

    def test_compression_on_training_domain(self, trained):
        ids = trained.encode(SAMPLE)
        assert len(ids) < len(SAMPLE.encode()) / 2

    def test_merges_have_valid_ids(self, trained):
        for index, (left, right) in enumerate(trained.merges):
            assert left < 256 + index
            assert right < 256 + index


class TestEncodeDecode:
    def test_round_trip_sample(self, trained):
        assert trained.decode(trained.encode(SAMPLE)) == SAMPLE

    def test_empty_string(self, trained):
        assert trained.encode("") == []
        assert trained.decode([]) == ""

    def test_unseen_characters_fall_back_to_bytes(self, trained):
        text = "\x01\x02 unusual ★ text"
        assert trained.decode(trained.encode(text)) == text

    def test_untrained_tokenizer_is_byte_identity(self):
        tok = BPETokenizer()
        ids = tok.encode("abc")
        assert ids == [97, 98, 99]

    def test_token_bytes_accessor(self, trained):
        merged = trained.token_bytes(256)
        assert len(merged) >= 2

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=200))
    def test_prop_round_trip_any_text(self, text):
        tok = BPETokenizer.train(SAMPLE, vocab_size=300)
        assert tok.decode(tok.encode(text)) == text

    @settings(max_examples=25, deadline=None)
    @given(st.text(min_size=1, max_size=100))
    def test_prop_ids_within_vocab(self, text):
        tok = BPETokenizer.train(SAMPLE, vocab_size=300)
        assert all(0 <= i < tok.vocab_size for i in tok.encode(text))


class TestPersistence:
    def test_json_round_trip(self, trained):
        clone = BPETokenizer.from_json(trained.to_json())
        assert clone.merges == trained.merges
        assert clone.encode(SAMPLE) == trained.encode(SAMPLE)

    def test_save_load_file(self, trained, tmp_path):
        path = tmp_path / "tok.json"
        trained.save(str(path))
        clone = BPETokenizer.load(str(path))
        assert clone.merges == trained.merges
