"""Round-trip tests for the AST pretty-printer (repro.verilog.writer).

The invariant: for any accepted module, writing it back to text and
re-parsing yields a design with identical *behaviour* — checked both
structurally (second write is a fixed point) and dynamically (test
benches still pass against the rewritten DUT).
"""

import random

import pytest

from repro.corpus.generators import GENERATORS
from repro.problems import ALL_PROBLEMS, PASS_MARKER
from repro.verilog import parse, run_simulation, write_module, write_source_unit


def roundtrip(source: str) -> str:
    return write_source_unit(parse(source))


class TestFixedPoint:
    @pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.slug)
    def test_problem_solutions_reach_fixed_point(self, problem):
        source = problem.canonical_source()
        once = roundtrip(source)
        twice = roundtrip(once)
        assert once == twice

    def test_generator_modules_reach_fixed_point(self):
        rng = random.Random(11)
        for gen in GENERATORS:
            source = gen(rng)
            once = roundtrip(source)
            assert roundtrip(once) == once, gen.__name__


class TestBehaviourPreserved:
    @pytest.mark.parametrize("problem", ALL_PROBLEMS, ids=lambda p: p.slug)
    def test_rewritten_dut_still_passes_testbench(self, problem):
        dut = write_module(
            parse(problem.canonical_source()).module(problem.module_name)
        )
        report, result = run_simulation(
            dut + "\n" + problem.testbench, top="tb"
        )
        assert report.ok, report.errors
        assert result is not None and PASS_MARKER in result.text


class TestConstructs:
    def assert_roundtrips(self, source):
        once = roundtrip(source)
        assert roundtrip(once) == once
        return once

    def test_parameters_and_localparams(self):
        out = self.assert_roundtrips(
            "module m #(parameter W = 8)(output [W-1:0] q);\n"
            "localparam D = W * 2;\nassign q = D[W-1:0];\nendmodule"
        )
        assert "parameter W" in out
        assert "localparam D" in out

    def test_memory_and_integer(self):
        out = self.assert_roundtrips(
            "module m; reg [7:0] mem [0:15]; integer i;\n"
            "initial for (i = 0; i < 16; i = i + 1) mem[i] = 0;\nendmodule"
        )
        assert "mem [0:15]" in out

    def test_instances_named_and_positional(self):
        out = self.assert_roundtrips(
            "module c(input a, output b); assign b = a; endmodule\n"
            "module top(input x, output y, output z);\n"
            "c c0(.a(x), .b(y));\nc c1(x, z);\nendmodule"
        )
        assert ".a(x)" in out

    def test_casez_with_wildcards(self):
        out = self.assert_roundtrips(
            "module m(input [3:0] v, output reg hit);\n"
            "always @(*) casez (v) 4'b1??1: hit = 1; default: hit = 0; endcase\n"
            "endmodule"
        )
        assert "casez" in out
        assert "z" in out.lower()

    def test_replicate_and_indexed_select(self):
        out = self.assert_roundtrips(
            "module m(input [7:0] a, output [15:0] b, output [3:0] c);\n"
            "assign b = {2{a}};\nassign c = a[3 +: 4];\nendmodule"
        )
        assert "{2{" in out.replace(" ", "")
        assert "+:" in out

    def test_functions(self):
        out = self.assert_roundtrips(
            "module m(input [3:0] a, output [3:0] b);\n"
            "function [3:0] inc; input [3:0] x; inc = x + 1; endfunction\n"
            "assign b = inc(a);\nendmodule"
        )
        assert "function" in out
        assert "endfunction" in out

    def test_system_tasks_and_delays(self):
        out = self.assert_roundtrips(
            'module tb; reg c;\ninitial begin c = 0; #5 c = 1; '
            '$display("%b", c); $finish; end\nendmodule'
        )
        assert "$display" in out
        assert "#5" in out

    def test_signed_literals(self):
        out = self.assert_roundtrips(
            "module m(output signed [7:0] v); assign v = -8'sd5; endmodule"
        )
        assert roundtrip(out) == out

    def test_wait_and_repeat_and_forever(self):
        self.assert_roundtrips(
            "module tb; reg go; reg clk;\n"
            "initial begin go = 0; #3 go = 1; end\n"
            "initial wait (go) $finish;\n"
            "initial repeat (2) #1 clk = ~clk;\n"
            "endmodule"
        )
