"""Tests for the observability layer (repro.obs): metrics registry,
span tracing + trace files, stage timers, retry timing, stream frames,
/metrics routes, the simulator profiler, fleet telemetry, the live
dashboard, and the ``repro stats``/``hotspots``/``top`` CLI."""

import json
import urllib.request

import pytest

from repro.api import Session
from repro.backends import BackendError, StubBackend
from repro.cli import main
from repro.eval import Evaluator, RetryPolicy, SweepConfig, SweepPlanner
from repro.eval.export import error_from_dict, error_to_dict
from repro.eval.jobs import JobError, run_job_with_retry
from repro.obs import (
    REGISTRY,
    STAGES,
    Histogram,
    MetricsRegistry,
    SimProfiler,
    TelemetryHub,
    TelemetryPusher,
    TraceFormatError,
    TraceWriter,
    current_tags,
    expand_trace_paths,
    job_tags,
    load_trace,
    maybe_sim_profiler,
    observe_stage,
    profiling,
    profiling_enabled,
    record_span,
    render_fleet_prometheus,
    render_hotspots,
    render_prometheus,
    render_stats,
    reset_registry,
    span,
    summarize_traces,
    tracing_active,
)
from repro.obs.profile import construct_path, profile_frame, record_profile
from repro.problems import PromptLevel

TINY = SweepConfig(
    temperatures=(0.1,),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test sees a fresh process registry (and leaves one behind)."""
    reset_registry()
    yield
    reset_registry()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("units", worker="a")
        reg.inc("units", 2.0, worker="a")
        reg.inc("units", worker="b")
        assert reg.counter_value("units", worker="a") == 3.0
        assert reg.counter_value("units", worker="b") == 1.0
        assert reg.counter_value("units", worker="nope") == 0.0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("queue_depth", 5)
        reg.set_gauge("queue_depth", 2)
        snapshot = reg.snapshot()
        assert snapshot["gauges"] == [
            {"name": "queue_depth", "labels": {}, "value": 2.0}
        ]

    def test_histogram_percentiles_within_bucket_error(self):
        hist = Histogram()
        for ms in range(1, 1001):
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 1000
        assert snap["min"] == 0.001 and snap["max"] == 1.0
        # log buckets are ~9.6% wide; quantiles land within one bucket
        assert snap["p50"] == pytest.approx(0.5, rel=0.11)
        assert snap["p95"] == pytest.approx(0.95, rel=0.11)
        assert snap["p99"] == pytest.approx(0.99, rel=0.11)

    def test_histogram_single_sample_is_exact_range(self):
        hist = Histogram()
        hist.observe(0.25)
        snap = hist.snapshot()
        # quantiles clamp to [min, max], so one sample answers itself
        assert snap["p50"] == snap["p99"] == 0.25

    def test_empty_histogram_snapshot_is_zeroes(self):
        reg = MetricsRegistry()
        assert reg.histogram_snapshot("never_observed")["count"] == 0

    def test_snapshot_shape_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("b_counter")
        reg.inc("a_counter", stage="sim")
        reg.observe("latency", 0.5, stage="parse")
        snap = reg.snapshot()
        assert [row["name"] for row in snap["counters"]] == [
            "a_counter", "b_counter",
        ]
        hist_row = snap["histograms"][0]
        assert hist_row["labels"] == {"stage": "parse"}
        assert {"count", "sum", "min", "max", "p50", "p95", "p99"} <= set(
            hist_row
        )
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.set_gauge("y", 1)
        reg.observe("z", 1.0)
        reg.reset()
        assert reg.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }


class TestPrometheusRendering:
    def test_counters_gauges_histograms_render(self):
        reg = MetricsRegistry()
        reg.inc("http_requests", 3, route="/health")
        reg.set_gauge("workers", 2)
        reg.observe("job_seconds", 0.5)
        text = render_prometheus(reg)
        assert "# TYPE http_requests counter" in text
        assert 'http_requests{route="/health"} 3.0' in text
        assert "# TYPE workers gauge" in text
        assert "# TYPE job_seconds summary" in text
        assert 'job_seconds{quantile="0.5"}' in text
        assert "job_seconds_count 1" in text
        assert "job_seconds_sum 0.5" in text
        assert text.endswith("\n")

    def test_output_stable_for_same_state(self):
        reg = MetricsRegistry()
        reg.inc("c", worker="b")
        reg.inc("c", worker="a")
        assert render_prometheus(reg) == render_prometheus(reg)
        # label sets render sorted, insertion order does not leak
        lines = render_prometheus(reg).splitlines()
        assert lines[1] == 'c{worker="a"} 1.0'

    def test_defaults_to_process_registry(self):
        REGISTRY.inc("process_wide_counter")
        assert "process_wide_counter 1.0" in render_prometheus()


# ----------------------------------------------------------------------
# Span tracing + trace files
# ----------------------------------------------------------------------
class TestSpans:
    def test_record_span_noop_without_sinks(self):
        assert not tracing_active()
        record_span("orphan", 0.1)  # must not raise or buffer anywhere

    def test_sink_receives_span_with_merged_tags(self):
        seen = []
        with TraceWriterSpy(seen):
            with job_tags(model="m1", problem=3):
                record_span("sim", 0.02, problem=4, cycles=10)
        assert len(seen) == 1
        frame = seen[0]
        assert frame["type"] == "span" and frame["name"] == "sim"
        assert frame["dur"] == pytest.approx(0.02)
        # explicit tags win over the ambient job context
        assert frame["tags"] == {"model": "m1", "problem": 4, "cycles": 10}

    def test_job_tags_nest_and_restore(self):
        assert current_tags() == {}
        with job_tags(model="m", problem=1):
            with job_tags(problem=2, level="L"):
                assert current_tags() == {
                    "model": "m", "problem": 2, "level": "L",
                }
            assert current_tags() == {"model": "m", "problem": 1}
        assert current_tags() == {}

    def test_span_context_manager_times_body(self):
        seen = []
        with TraceWriterSpy(seen):
            with span("elaborate", problem=7):
                pass
        assert seen[0]["name"] == "elaborate"
        assert seen[0]["dur"] >= 0.0
        assert seen[0]["tags"] == {"problem": 7}

    def test_span_context_manager_free_without_sinks(self):
        with span("nothing"):  # no sink installed: must not record
            pass
        assert not tracing_active()


class TraceWriterSpy:
    """A plain list-collecting sink with the TraceWriter install dance."""

    def __init__(self, frames):
        self.frames = frames

    def __call__(self, frame):
        self.frames.append(frame)

    def __enter__(self):
        from repro.obs import add_sink

        add_sink(self)
        return self

    def __exit__(self, *exc_info):
        from repro.obs import remove_sink

        remove_sink(self)


class TestTraceWriter:
    def test_file_layout_meta_spans_metrics(self, tmp_path):
        path = tmp_path / "run.ndjson"
        REGISTRY.inc("counted_once")
        with TraceWriter(str(path), tags={"worker": "w0"}):
            assert tracing_active()
            record_span("job", 0.5, model="m", problem=1)
            record_span("generate", 0.4)
        assert not tracing_active()
        frames = load_trace(str(path))
        assert [f["type"] for f in frames] == [
            "meta", "span", "span", "metrics",
        ]
        meta = frames[0]
        assert meta["version"] == 1
        assert meta["clock"] == "monotonic"
        assert meta["tags"] == {"worker": "w0"}
        # writer default tags live in the header only, not on spans
        assert frames[1]["tags"] == {"model": "m", "problem": 1}
        names = [row["name"] for row in frames[3]["metrics"]["counters"]]
        assert "counted_once" in names

    def test_every_line_is_one_json_object(self, tmp_path):
        path = tmp_path / "run.ndjson"
        with TraceWriter(str(path)):
            record_span("sim", 0.001, note='quote" and \\ backslash')
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.ndjson"
        writer = TraceWriter(str(path))
        writer.close()
        writer.close()  # second close must not append or raise
        frames = load_trace(str(path))
        assert [f["type"] for f in frames] == ["meta", "metrics"]


# ----------------------------------------------------------------------
# Always-on stage timers + retry timing
# ----------------------------------------------------------------------
class TestStageTimers:
    def test_evaluation_feeds_stage_histograms(self):
        session = Session(backend="zoo")
        session.run_plan(session.plan(TINY, models=["codegen-2b-ft"]))
        snap = REGISTRY.snapshot()
        stages_seen = {
            row["labels"]["stage"]
            for row in snap["histograms"]
            if row["name"] == "stage_seconds"
        }
        # generate always runs; parse fires for every completion that
        # produced text; sim/testbench require a parse that elaborates
        assert "generate" in stages_seen
        assert "parse" in stages_seen
        assert stages_seen <= set(STAGES)
        job_rows = [
            row for row in snap["histograms"] if row["name"] == "job_seconds"
        ]
        assert job_rows and job_rows[0]["count"] == 2  # one job per problem

    def test_observe_stage_spans_only_when_tracing(self):
        seen = []
        observe_stage("parse", 0.01, problem=1)
        with TraceWriterSpy(seen):
            observe_stage("parse", 0.02, problem=1)
        assert len(seen) == 1  # first call predates the sink
        assert seen[0]["name"] == "parse"
        assert (
            REGISTRY.histogram_snapshot(
                "stage_seconds", stage="parse", problem=1
            )["count"]
            == 2
        )


class TestRetryTiming:
    def _flaky(self, failures):
        class Flaky(StubBackend):
            calls = 0

            def generate(self, model, prompt, config):
                Flaky.calls += 1
                if Flaky.calls <= failures:
                    raise BackendError(f"transient #{Flaky.calls}")
                return super().generate(model, prompt, config)

        return Flaky()

    def test_success_after_retries_schedules_backoff(self):
        backend = self._flaky(failures=2)
        job = SweepPlanner(backend).plan(TINY).jobs[0]
        slept = []
        records, failure, attempts = run_job_with_retry(
            backend,
            Evaluator(),
            job,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
            sleep=slept.append,
        )
        assert failure is None and attempts == 3
        assert len(records) == job.n
        assert slept == [0.5, 1.0]  # doubling backoff, deterministic

    def test_exhausted_failure_carries_attempt_timings(self):
        backend = self._flaky(failures=99)
        job = SweepPlanner(backend).plan(TINY).jobs[0]
        records, failure, attempts = run_job_with_retry(
            backend,
            Evaluator(),
            job,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.25),
            sleep=lambda _s: None,
        )
        assert records == [] and attempts == 3
        assert len(failure.attempt_seconds) == 3
        assert all(s >= 0.0 for s in failure.attempt_seconds)
        assert failure.backoff_seconds == pytest.approx(0.25 + 0.5)

    def test_timing_fields_excluded_from_equality(self):
        job = SweepPlanner(StubBackend()).plan(TINY).jobs[0]
        fast = JobError(job=job, error="boom", attempts=2,
                        attempt_seconds=(0.1, 0.2), backoff_seconds=0.5)
        slow = JobError(job=job, error="boom", attempts=2,
                        attempt_seconds=(9.0, 9.0), backoff_seconds=99.0)
        # the parity invariant: wall-clock metadata never breaks equality
        assert fast == slow
        assert fast != JobError(job=job, error="boom", attempts=3)

    def test_export_roundtrip_and_legacy_dicts(self):
        job = SweepPlanner(StubBackend()).plan(TINY).jobs[0]
        error = JobError(job=job, error="boom", attempts=2,
                         attempt_seconds=(0.125, 0.25), backoff_seconds=1.5)
        row = error_to_dict(error)
        back = error_from_dict(row)
        assert back == error
        assert back.attempt_seconds == (0.125, 0.25)
        assert back.backoff_seconds == 1.5
        # dicts written before the timing fields existed still load
        row.pop("attempt_seconds")
        row.pop("backoff_seconds")
        legacy = error_from_dict(row)
        assert legacy == error  # compare=False: equal despite defaults
        assert legacy.attempt_seconds == ()
        assert legacy.backoff_seconds == 0.0


# ----------------------------------------------------------------------
# Stream frames: metric/span events, strict vs lenient decode, parity
# ----------------------------------------------------------------------
class TestStreamFrames:
    def test_metric_and_span_frames_carry_t(self):
        from repro.service.aio.events import metric_frame, span_frame

        metric = metric_frame({"records_merged": 4})
        assert metric["event"] == "metric"
        assert metric["metrics"] == {"records_merged": 4}
        assert isinstance(metric["t"], float)

        frame = span_frame({"type": "span", "name": "sim", "t": 12.5,
                            "dur": 0.25, "tags": {"problem": 1}})
        assert frame["event"] == "span"
        assert "type" not in frame  # stream discriminator replaces it
        assert frame["t"] == 12.5 and frame["dur"] == 0.25

    def test_progress_and_attempt_frames_carry_t(self):
        from repro.service.aio.events import attempt_frame, progress_frame

        assert isinstance(progress_frame(1, 2, 3, 0)["t"], float)
        assert isinstance(
            attempt_frame({"model": "m", "problem": 1, "round": 0,
                           "verdict": "pass"})["t"],
            float,
        )

    def test_decode_frame_strict_rejects_unknown_event(self):
        from repro.service.aio.events import StreamProtocolError, decode_frame

        line = b'{"event":"hologram","x":1}'
        with pytest.raises(StreamProtocolError, match="unknown frame"):
            decode_frame(line)
        # lenient mode is the forward-compatibility path
        assert decode_frame(line, strict=False)["event"] == "hologram"

    def test_malformed_known_frames_fatal_in_both_modes(self):
        from repro.service.aio.events import StreamProtocolError, decode_frame

        for strict in (True, False):
            with pytest.raises(StreamProtocolError, match="missing"):
                decode_frame(b'{"event":"metric"}', strict=strict)
            with pytest.raises(StreamProtocolError, match="missing"):
                decode_frame(b'{"event":"span","name":"x"}', strict=strict)
            with pytest.raises(StreamProtocolError, match="not JSON"):
                decode_frame(b"{nope", strict=strict)
            with pytest.raises(StreamProtocolError, match="object"):
                decode_frame(b"[1,2]", strict=strict)
            with pytest.raises(StreamProtocolError, match="unknown"):
                decode_frame(b'{"no_event":1}', strict=strict)

    def test_decode_stream_passes_unknown_events_through(self):
        from repro.service.aio.events import decode_stream

        lines = [
            b'{"event":"metric","t":1.0,"metrics":{}}',
            b"",  # keep-alive
            b'{"event":"from_the_future","payload":1}',
            b'{"event":"span","name":"sim","dur":0.1}',
        ]
        events = [f["event"] for f in decode_stream(lines)]
        assert events == ["metric", "from_the_future", "span"]

    def test_assembly_ignores_observational_frames(self):
        """Interleaving metric/span frames anywhere in a stream must not
        change the reassembled result (the parity invariant)."""
        from repro.service.aio.events import (
            assemble_stream_result,
            metric_frame,
            result_to_frames,
            span_frame,
        )

        session = Session(backend="stub-canonical")
        plan = session.plan(TINY)
        result = session.run_plan(plan)
        frames = result_to_frames(plan, result)
        noisy = []
        for frame in frames:
            noisy.append(metric_frame({"records_merged": len(noisy)}))
            noisy.append(span_frame({"name": "sim", "dur": 0.01}))
            noisy.append(frame)
        rebuilt = assemble_stream_result(noisy)
        assert rebuilt.sweep.records == result.sweep.records
        assert rebuilt.errors == result.errors
        assert rebuilt.stats == result.stats


# ----------------------------------------------------------------------
# /metrics routes on both servers
# ----------------------------------------------------------------------
class TestMetricsRoutes:
    def test_service_app_metrics_json(self):
        from repro.service import ServiceApp

        REGISTRY.inc("route_test_counter")
        status, body = ServiceApp(Session(backend="zoo")).handle(
            "GET", "/metrics"
        )
        assert status == 200
        names = [row["name"] for row in body["metrics"]["counters"]]
        assert "route_test_counter" in names
        assert "coordinator" not in body  # none attached

    def test_service_app_metrics_prom_is_raw_text(self):
        from repro.service import ServiceApp
        from repro.service.server import RAW_TEXT_KEY

        REGISTRY.inc("route_test_counter")
        status, body = ServiceApp(Session(backend="zoo")).handle(
            "GET", "/metrics/prom"
        )
        assert status == 200
        assert body["content_type"] == "text/plain; version=0.0.4"
        assert "route_test_counter 1.0" in body[RAW_TEXT_KEY]

    @staticmethod
    def _fetch(url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )

    def test_routes_over_both_http_servers(self):
        """The stdlib and asyncio servers expose identical metrics
        routes: JSON snapshot at /metrics, Prometheus text at
        /metrics/prom with the exposition content type."""
        from repro.service import AsyncEvalService, EvalService

        REGISTRY.inc("served_counter", flavor="both")
        with EvalService(Session(backend="zoo"), port=0) as stdlib_svc, \
                AsyncEvalService(Session(backend="zoo"), port=0) as aio_svc:
            for url in (stdlib_svc.url, aio_svc.url):
                status, ctype, text = self._fetch(url + "/metrics")
                assert status == 200
                assert ctype.startswith("application/json")
                names = [
                    row["name"]
                    for row in json.loads(text)["metrics"]["counters"]
                ]
                assert "served_counter" in names

                status, ctype, text = self._fetch(url + "/metrics/prom")
                assert status == 200
                assert ctype == "text/plain; version=0.0.4"
                assert 'served_counter{flavor="both"} 1.0' in text
                assert "# TYPE served_counter counter" in text


# ----------------------------------------------------------------------
# Trace summarizer + repro stats CLI
# ----------------------------------------------------------------------
def write_trace(path, worker=None, jobs=2):
    """A small but complete trace file via the real writer."""
    tags = {"worker": worker} if worker else None
    with TraceWriter(str(path), tags=tags):
        for index in range(jobs):
            record_span("generate", 0.30, model="m", problem=index + 1)
            record_span("parse", 0.05, problem=index + 1)
            record_span("sim", 0.10, problem=index + 1)
            record_span("job", 0.50, t=float(index), model="m",
                        problem=index + 1)
        record_span("repair_attempt", 0.2, round=0, verdict="sim_fail")
        record_span("repair_attempt", 0.2, round=1, verdict="pass")


class TestTraceStats:
    def test_stage_split_and_job_percentiles(self, tmp_path):
        path = tmp_path / "a.ndjson"
        write_trace(path, jobs=4)
        summary = summarize_traces([str(path)])
        assert summary["stages"]["generate"]["count"] == 4
        assert summary["stages"]["generate"]["seconds"] == pytest.approx(1.2)
        total = summary["stage_seconds_total"]
        assert total == pytest.approx(4 * (0.30 + 0.05 + 0.10))
        assert summary["stages"]["generate"]["share"] == pytest.approx(
            1.2 / total
        )
        assert summary["jobs"]["count"] == 4
        assert summary["jobs"]["p50"] == pytest.approx(0.5)
        assert summary["jobs"]["p99"] == pytest.approx(0.5)
        assert summary["repair_attempts"] == {"sim_fail": 1, "pass": 1}

    def test_worker_attribution_from_meta_tags(self, tmp_path):
        """Multi-file merge: each file's meta-header worker tag labels
        its job spans; files without one fall back to a per-file id."""
        a, b, c = (tmp_path / name for name in ("a.nd", "b.nd", "c.nd"))
        write_trace(a, worker="w-alpha", jobs=3)
        write_trace(b, worker="w-beta", jobs=1)
        write_trace(c, worker=None, jobs=1)
        summary = summarize_traces([str(a), str(b), str(c)])
        workers = summary["workers"]
        assert workers["w-alpha"]["jobs"] == 3
        assert workers["w-beta"]["jobs"] == 1
        assert workers["file2"]["jobs"] == 1
        # wall clock spans first job start to last job end within a file
        assert workers["w-alpha"]["wall_seconds"] == pytest.approx(2.5)
        assert workers["w-alpha"]["jobs_per_second"] == pytest.approx(
            3 / 2.5
        )

    def test_malformed_lines_raise_with_location(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type":"meta","version":1}\n{nope\n')
        with pytest.raises(TraceFormatError, match="bad.ndjson:2"):
            load_trace(str(path))

    def test_unknown_frame_type_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type":"hologram"}\n')
        with pytest.raises(TraceFormatError, match="unknown frame type"):
            load_trace(str(path))

    def test_span_missing_dur_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type":"span","name":"sim"}\n')
        with pytest.raises(TraceFormatError, match="missing dur"):
            load_trace(str(path))

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("\n\n")
        with pytest.raises(TraceFormatError, match="empty trace"):
            load_trace(str(path))

    def test_render_stats_report_shape(self, tmp_path):
        path = tmp_path / "a.ndjson"
        write_trace(path, worker="w0")
        report = render_stats(summarize_traces([str(path)]))
        assert "stage" in report and "generate" in report
        assert "p95" in report
        assert "w0" in report
        assert "repair attempts: pass=1, sim_fail=1" in report


class TestStatsCli:
    def test_stats_happy_path(self, capsys, tmp_path):
        path = tmp_path / "run.ndjson"
        write_trace(path, worker="w0")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "generate" in out and "w0" in out

    def test_stats_json_output(self, capsys, tmp_path):
        path = tmp_path / "run.ndjson"
        write_trace(path)
        assert main(["stats", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"]["count"] == 2

    def test_stats_bad_file_exits_two(self, capsys, tmp_path):
        missing = tmp_path / "no-such.ndjson"
        assert main(["stats", str(missing)]) == 2
        assert "error" in capsys.readouterr().out
        bad = tmp_path / "bad.ndjson"
        bad.write_text("{nope\n")
        assert main(["stats", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().out

    def test_sweep_trace_flag_writes_valid_trace(self, capsys, tmp_path):
        trace = tmp_path / "sweep.ndjson"
        code = main([
            "sweep", "--backend", "stub-canonical", "--problems", "1,2",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--trace", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote trace {trace}" in out
        frames = load_trace(str(trace))
        assert frames[0]["type"] == "meta"
        assert frames[0]["tags"]["command"] == "sweep"
        assert frames[-1]["type"] == "metrics"
        summary = summarize_traces([str(trace)])
        assert summary["jobs"]["count"] == 2  # one job per problem
        assert summary["stages"]["generate"]["count"] == 2
        assert not tracing_active()  # sink removed after the command

    def test_session_metrics_property(self):
        REGISTRY.inc("session_visible")
        snapshot = Session(backend="stub").metrics
        assert any(
            row["name"] == "session_visible"
            for row in snapshot["counters"]
        )


# ----------------------------------------------------------------------
# Simulator hot-spot profiler
# ----------------------------------------------------------------------
PROFILE_SRC = """
module counter(input clk, output reg [3:0] q);
  initial q = 0;
  always @(posedge clk) q <= q + 1;
endmodule
module top;
  reg clk;
  wire [3:0] q;
  counter c1(.clk(clk), .q(q));
  always @(posedge clk) if (q == 4'd3) $finish;
  initial begin
    clk = 0;
    forever #5 clk = ~clk;
  end
endmodule
"""


class TestSimProfiler:
    def _run(self, profiler=None):
        from repro.verilog import run_simulation

        report, result = run_simulation(
            PROFILE_SRC, top="top", profiler=profiler
        )
        assert report.ok and result is not None
        return result

    def test_constructs_carry_hierarchy_paths(self):
        profiler = SimProfiler()
        self._run(profiler)
        paths = {construct_path(key) for key in profiler.constructs}
        # the instanced always block carries the instance chain; the
        # top-level processes render bare
        assert any(p.startswith("c1.always@") for p in paths)
        assert any(p.startswith("initial@") for p in paths)
        for row in profiler.constructs.values():
            seconds, activations, evals, steps = row
            assert seconds >= 0.0 and activations >= 1
            assert evals >= 0 and steps >= 1
        assert profiler.attributed_seconds == pytest.approx(
            sum(r[0] for r in profiler.constructs.values())
        )

    def test_profiled_run_matches_unprofiled_output(self):
        plain = self._run()
        profiled = self._run(SimProfiler())
        assert profiled.text == plain.text
        assert profiled.time == plain.time
        assert profiled.finished == plain.finished

    def test_unprofiled_simulator_keeps_class_dispatch(self):
        """Disabled means *zero* cost: no instance-level method shadowing
        of the resume path when no profiler is injected."""
        from repro.verilog import compile_design
        from repro.verilog.sim import Simulator

        design = compile_design(PROFILE_SRC, top="top").design
        bare = Simulator(design)
        assert "_resume" not in bare.__dict__
        assert "_check_monitors" not in bare.__dict__
        assert bare._profile_evals is None
        shadowed = Simulator(design, profiler=SimProfiler())
        assert "_resume" in shadowed.__dict__

    def test_rows_sorted_hottest_first(self):
        profiler = SimProfiler()
        profiler.add(("", "initial", 3), 0.5, 10, 4)
        profiler.add(("a", "always", 9), 2.0, 7, 2)
        profiler.add(("a", "always", 9), 1.0, 3, 1)
        rows = profiler.rows()
        assert [r["path"] for r in rows] == ["a.always@9", "initial@3"]
        assert rows[0]["seconds"] == pytest.approx(3.0)
        assert rows[0]["activations"] == 2
        assert rows[0]["evals"] == 10

    def test_merge_accumulates(self):
        a, b = SimProfiler(), SimProfiler()
        a.add(("", "assign", 2), 1.0, 5, 1)
        b.add(("", "assign", 2), 0.5, 2, 1)
        b.add(("x", "always", 7), 0.25, 1, 1)
        a.merge(b)
        assert a.constructs[("", "assign", 2)] == [1.5, 2, 7, 2]
        assert ("x", "always", 7) in a.constructs

    def test_maybe_sim_profiler_requires_flag_and_sink(self):
        assert maybe_sim_profiler() is None  # disabled by default
        with profiling():
            assert profiling_enabled()
            assert maybe_sim_profiler() is None  # enabled, but no sink
            with TraceWriterSpy([]):
                assert isinstance(maybe_sim_profiler(), SimProfiler)
        assert not profiling_enabled()  # context restored the flag

    def test_record_profile_skips_empty_runs(self):
        seen = []
        with TraceWriterSpy(seen):
            record_profile(SimProfiler(), problem=1, sim_seconds=0.1)
        assert seen == []

    def test_profile_frame_shape(self):
        profiler = SimProfiler()
        profiler.add(("c1", "always", 4), 0.125, 9, 3)
        with job_tags(model="m", problem=5):
            frame = profile_frame(profiler, problem=5, sim_seconds=0.25)
        assert frame["type"] == "profile"
        assert frame["problem"] == 5
        assert frame["sim_seconds"] == pytest.approx(0.25)
        assert frame["tags"] == {"model": "m", "problem": 5}
        assert frame["constructs"][0]["path"] == "c1.always@4"
        json.dumps(frame)  # NDJSON-ready as-is


class TestProfileFramesEndToEnd:
    def test_evaluator_emits_profile_frames_when_enabled(self):
        seen = []
        with TraceWriterSpy(seen), profiling():
            session = Session(backend="stub-canonical")
            session.run_plan(session.plan(TINY))
        profiles = [f for f in seen if f.get("type") == "profile"]
        assert profiles, "canonical solutions simulate; frames expected"
        for frame in profiles:
            assert frame["problem"] in TINY.problem_numbers
            assert frame["sim_seconds"] > 0.0
            assert frame["constructs"]
        # a healthy run attributes the bulk of its sim time
        attributed = sum(
            row["seconds"] for f in profiles for row in f["constructs"]
        )
        sim_total = sum(f["sim_seconds"] for f in profiles)
        assert attributed / sim_total >= 0.5

    def test_disabled_profiling_emits_no_frames(self):
        seen = []
        with TraceWriterSpy(seen):
            session = Session(backend="stub-canonical")
            session.run_plan(session.plan(TINY))
        assert not any(f.get("type") == "profile" for f in seen)

    def test_trace_writer_persists_profile_frames(self, tmp_path):
        path = tmp_path / "profiled.trace"
        with TraceWriter(str(path)), profiling():
            session = Session(backend="stub-canonical")
            session.run_plan(session.plan(TINY))
        frames = load_trace(str(path))
        assert any(f["type"] == "profile" for f in frames)


class TestHotspotsSummary:
    @staticmethod
    def _write_profiled_trace(path, runs):
        """runs: list of (sim_seconds, [(path_key, seconds, evals)])."""
        with TraceWriter(str(path)):
            for sim_seconds, constructs in runs:
                profiler = SimProfiler()
                for key, seconds, evals in constructs:
                    profiler.add(key, seconds, evals, 1)
                record_profile(profiler, problem=1,
                               sim_seconds=sim_seconds)

    def test_aggregation_across_frames_and_files(self, tmp_path):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        self._write_profiled_trace(a, [
            (1.0, [(("", "always", 3), 0.6, 10), (("c", "assign", 7), 0.3, 5)]),
        ])
        self._write_profiled_trace(b, [
            (1.0, [(("", "always", 3), 0.5, 8)]),
        ])
        summary = summarize_traces([str(a), str(b)])
        profile = summary["profile"]
        assert profile["frames"] == 2
        assert profile["sim_seconds"] == pytest.approx(2.0)
        assert profile["attributed_seconds"] == pytest.approx(1.4)
        assert profile["coverage"] == pytest.approx(0.7)
        top = profile["constructs"][0]
        assert top["path"] == "always@3"
        assert top["seconds"] == pytest.approx(1.1)
        assert top["evals"] == 18

    def test_render_hotspots_stops_at_coverage(self, tmp_path):
        path = tmp_path / "p.trace"
        self._write_profiled_trace(path, [
            (1.0, [
                (("", "always", 1), 0.70, 1),
                (("", "always", 2), 0.20, 1),
                (("", "always", 3), 0.05, 1),
            ]),
        ])
        report = render_hotspots(
            summarize_traces([str(path)]), coverage=0.80
        )
        assert "always@1" in report and "always@2" in report
        assert "always@3" not in report
        assert "1 more construct(s)" in report
        assert "95.0% attributed" in report

    def test_render_stats_mentions_profile(self, tmp_path):
        path = tmp_path / "p.trace"
        self._write_profiled_trace(
            path, [(0.5, [(("", "initial", 2), 0.4, 3)])]
        )
        report = render_stats(summarize_traces([str(path)]))
        assert "sim profile: 1 run(s)" in report
        assert "repro hotspots" in report

    def test_render_hotspots_empty_message(self, tmp_path):
        path = tmp_path / "plain.trace"
        write_trace(path)
        report = render_hotspots(summarize_traces([str(path)]))
        assert "no profile frames found" in report

    def test_profile_frame_validation(self, tmp_path):
        bad = tmp_path / "bad.trace"
        bad.write_text('{"type":"profile","sim_seconds":0.1}\n')
        with pytest.raises(TraceFormatError, match="missing constructs"):
            load_trace(str(bad))
        bad.write_text('{"type":"profile","constructs":[]}\n')
        with pytest.raises(TraceFormatError, match="missing sim_seconds"):
            load_trace(str(bad))


class TestExpandTracePaths:
    def test_directory_expands_sorted_trace_files(self, tmp_path):
        (tmp_path / "b.trace").write_text("x")
        (tmp_path / "a.ndjson").write_text("x")
        (tmp_path / "notes.txt").write_text("x")
        expanded = expand_trace_paths([str(tmp_path)])
        assert [p.rsplit("/", 1)[-1] for p in expanded] == [
            "a.ndjson", "b.trace",
        ]

    def test_empty_directory_is_an_error(self, tmp_path):
        with pytest.raises(TraceFormatError, match="no .trace"):
            expand_trace_paths([str(tmp_path)])

    def test_glob_expands_and_misses_are_errors(self, tmp_path):
        (tmp_path / "w0.trace").write_text("x")
        (tmp_path / "w1.trace").write_text("x")
        expanded = expand_trace_paths([str(tmp_path / "w*.trace")])
        assert len(expanded) == 2
        with pytest.raises(TraceFormatError, match="matched no files"):
            expand_trace_paths([str(tmp_path / "nope-*.trace")])

    def test_literals_pass_through_and_dedupe(self, tmp_path):
        path = tmp_path / "run.trace"
        path.write_text("x")
        expanded = expand_trace_paths(
            [str(path), str(path), str(tmp_path)]
        )
        assert expanded == [str(path)]


# ----------------------------------------------------------------------
# Prometheus label escaping + histogram edge cases (regressions)
# ----------------------------------------------------------------------
class TestPrometheusEscaping:
    def test_special_characters_escaped_per_exposition_format(self):
        reg = MetricsRegistry()
        reg.inc("errors", route='path "with" quotes')
        reg.inc("errors", route="back\\slash")
        reg.inc("errors", route="two\nlines")
        text = render_prometheus(reg)
        assert 'errors{route="path \\"with\\" quotes"} 1.0' in text
        assert 'errors{route="back\\\\slash"} 1.0' in text
        assert 'errors{route="two\\nlines"} 1.0' in text
        # every series stays on one physical line
        for line in text.splitlines():
            assert line.count("{") <= 1

    def test_backslash_escaped_before_quotes(self):
        """Escape order regression: a pre-escaped-looking value must not
        be double-unescapable (backslash first, then quote)."""
        reg = MetricsRegistry()
        reg.inc("c", label='\\"')
        text = render_prometheus(reg)
        assert 'c{label="\\\\\\""} 1.0' in text


class TestHistogramEdgeCases:
    def test_empty_histogram_quantiles_are_zero(self):
        hist = Histogram()
        assert hist.quantile(0.5) == 0.0
        assert hist.quantile(0.99) == 0.0
        snap = hist.snapshot()
        assert snap["count"] == 0 and snap["sum"] == 0.0
        assert snap["p50"] == snap["p99"] == 0.0

    def test_single_sample_quantiles_clamp_to_value(self):
        hist = Histogram()
        hist.observe(3.5)
        assert hist.quantile(0.0) == 3.5
        assert hist.quantile(1.0) == 3.5

    def test_reset_clears_combined_state_and_rebuilds(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.0, stage="sim")
        reg.inc("count")
        reg.set_gauge("depth", 4)
        reg.reset()
        assert reg.histogram_snapshot("lat", stage="sim")["count"] == 0
        # the registry is fully usable after a combined reset
        reg.observe("lat", 2.0, stage="sim")
        snap = reg.histogram_snapshot("lat", stage="sim")
        assert snap["count"] == 1 and snap["min"] == 2.0


# ----------------------------------------------------------------------
# Fleet telemetry: pusher deltas, hub merge, routes
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTelemetryPusher:
    def _pusher(self, reg, sends, clock=None, **kwargs):
        return TelemetryPusher(
            sends.append, "w0", registry=reg,
            clock=clock or FakeClock(), **kwargs
        )

    def test_payload_carries_counter_deltas_not_absolutes(self):
        reg = MetricsRegistry()
        sends = []
        pusher = self._pusher(reg, sends)
        reg.inc("jobs", 3)
        assert pusher.push()
        reg.inc("jobs", 2)
        assert pusher.push()
        values = [
            entry["value"]
            for payload in sends
            for entry in payload["counters"]
            if entry["name"] == "jobs"
        ]
        assert values == [3.0, 2.0]
        # unchanged counters do not travel at all
        assert sends[1]["seq"] == 2

    def test_gauges_travel_absolute(self):
        reg = MetricsRegistry()
        sends = []
        pusher = self._pusher(reg, sends)
        reg.set_gauge("depth", 7)
        pusher.push()
        pusher.push()
        assert all(
            payload["gauges"][0]["value"] == 7.0 for payload in sends
        )

    def test_failed_push_deltas_ride_the_next_attempt(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 5)
        calls = []

        def flaky(payload):
            calls.append(payload)
            if len(calls) == 1:
                raise OSError("connection refused")

        clock = FakeClock()
        pusher = TelemetryPusher(flaky, "w0", registry=reg, clock=clock,
                                 interval=2.0)
        assert not pusher.push()
        assert pusher.failures == 1
        clock.advance(5.0)
        assert pusher.maybe_push()
        # the second payload still carries the full un-committed delta
        assert calls[1]["counters"][0]["value"] == 5.0

    def test_disables_after_consecutive_failures(self):
        reg = MetricsRegistry()

        def always_down(_payload):
            raise OSError("no route")

        clock = FakeClock()
        pusher = TelemetryPusher(always_down, "w0", registry=reg,
                                 clock=clock, interval=1.0)
        for _ in range(3):
            clock.advance(2.0)
            pusher.push()
        assert pusher.disabled
        assert not pusher.due()
        assert not pusher.push()  # disabled: no further sends

    def test_maybe_push_respects_interval(self):
        reg = MetricsRegistry()
        sends = []
        clock = FakeClock()
        pusher = self._pusher(reg, sends, clock=clock, interval=2.0)
        assert pusher.maybe_push()  # first push is immediate
        assert not pusher.maybe_push()  # too soon
        clock.advance(2.5)
        assert pusher.maybe_push()
        assert len(sends) == 2

    def test_histogram_deltas_only_when_new_samples(self):
        reg = MetricsRegistry()
        sends = []
        pusher = self._pusher(reg, sends)
        reg.observe("lat", 1.0)
        pusher.push()
        pusher.push()  # no new samples: histogram omitted
        reg.observe("lat", 3.0)
        pusher.push()
        hist_counts = [
            [h["count"] for h in payload["histograms"]]
            for payload in sends
        ]
        assert hist_counts == [[1], [], [1]]
        assert sends[2]["histograms"][0]["sum"] == pytest.approx(3.0)


class TestTelemetryHub:
    def _push(self, worker, counters=(), gauges=(), histograms=(), seq=1):
        return {
            "worker": worker, "seq": seq, "sent_unix": 0.0,
            "counters": list(counters), "gauges": list(gauges),
            "histograms": list(histograms),
        }

    def test_counters_accumulate_with_worker_label(self):
        hub = TelemetryHub(clock=FakeClock())
        row = {"name": "jobs", "labels": {"stage": "sim"}, "value": 2.0}
        hub.ingest(self._push("w0", counters=[row]))
        hub.ingest(self._push("w0", counters=[row], seq=2))
        hub.ingest(self._push("w1", counters=[row]))
        snapshot = hub.metrics_snapshot()
        jobs = {
            tuple(sorted(r["labels"].items())): r["value"]
            for r in snapshot["counters"] if r["name"] == "jobs"
        }
        assert jobs[(("stage", "sim"), ("worker", "w0"))] == 4.0
        assert jobs[(("stage", "sim"), ("worker", "w1"))] == 2.0

    def test_histograms_merge_counts_and_extremes(self):
        hub = TelemetryHub(clock=FakeClock())
        hub.ingest(self._push("w0", histograms=[
            {"name": "lat", "labels": {}, "count": 2, "sum": 3.0,
             "min": 1.0, "max": 2.0, "p50": 1.5, "p95": 2.0, "p99": 2.0},
        ]))
        hub.ingest(self._push("w0", seq=2, histograms=[
            {"name": "lat", "labels": {}, "count": 1, "sum": 9.0,
             "min": 9.0, "max": 9.0, "p50": 9.0, "p95": 9.0, "p99": 9.0},
        ]))
        row = hub.metrics_snapshot()["histograms"][0]
        assert row["count"] == 3 and row["sum"] == pytest.approx(12.0)
        assert row["min"] == 1.0 and row["max"] == 9.0
        assert row["p50"] == 9.0  # latest estimate wins

    def test_staleness_and_synthetic_gauges(self):
        clock = FakeClock()
        hub = TelemetryHub(stale_after=10.0, clock=clock)
        hub.ingest(self._push("w0"))
        clock.advance(3.0)
        hub.ingest(self._push("w1"))
        clock.advance(8.0)  # w0 now 11s old, w1 8s old
        rows = {row["worker"]: row for row in hub.workers()}
        assert rows["w0"]["stale"] and not rows["w1"]["stale"]
        ups = {
            row["labels"]["worker"]: row["value"]
            for row in hub.metrics_snapshot()["gauges"]
            if row["name"] == "telemetry_worker_up"
        }
        assert ups == {"w0": 0.0, "w1": 1.0}

    def test_ingest_validates_payload(self):
        hub = TelemetryHub()
        with pytest.raises(ValueError, match="object"):
            hub.ingest([1, 2])
        with pytest.raises(ValueError, match="worker"):
            hub.ingest({"seq": 1})
        # malformed series rows are skipped, not fatal
        ack = hub.ingest(self._push("w0", counters=["junk", {"x": 1}]))
        assert ack == {"ok": True, "worker": "w0", "pushes": 1}

    def test_fleet_prometheus_stacks_local_and_fleet(self):
        reg = MetricsRegistry()
        reg.inc("jobs", 1.0)
        hub = TelemetryHub(clock=FakeClock())
        hub.ingest(self._push("w0", counters=[
            {"name": "jobs", "labels": {}, "value": 2.0},
        ]))
        text = render_fleet_prometheus(reg, hub)
        assert text.count("# TYPE jobs counter") == 1  # declared once
        assert "jobs 1.0" in text
        assert 'jobs{worker="w0"} 2.0' in text
        assert '# TYPE telemetry_worker_up gauge' in text

    def test_empty_hub_output_identical_to_local_rendering(self):
        reg = MetricsRegistry()
        reg.inc("jobs", route="/x")
        assert render_fleet_prometheus(reg, TelemetryHub()) == \
            render_prometheus(reg)
        assert render_fleet_prometheus(reg, None) == render_prometheus(reg)


class TestTelemetryRoutes:
    def _payload(self, worker):
        return {
            "worker": worker, "seq": 1, "sent_unix": 0.0,
            "counters": [
                {"name": "worker_records_submitted", "labels": {},
                 "value": 4.0},
            ],
            "gauges": [], "histograms": [],
        }

    def test_service_app_telemetry_roundtrip(self):
        from repro.service import ServiceApp
        from repro.service.server import RAW_TEXT_KEY

        app = ServiceApp(Session(backend="zoo"))
        status, body = app.handle("POST", "/telemetry", self._payload("w0"))
        assert status == 200 and body["ok"] and body["worker"] == "w0"

        status, body = app.handle("GET", "/metrics")
        assert status == 200
        fleet = body["fleet"]
        assert [w["worker"] for w in fleet["workers"]] == ["w0"]
        assert any(
            row["name"] == "worker_records_submitted"
            and row["labels"] == {"worker": "w0"}
            for row in fleet["metrics"]["counters"]
        )

        status, body = app.handle("GET", "/metrics/prom")
        assert status == 200
        assert 'worker_records_submitted{worker="w0"} 4.0' in body[RAW_TEXT_KEY]

    def test_metrics_omits_fleet_until_first_push(self):
        from repro.service import ServiceApp

        app = ServiceApp(Session(backend="zoo"))
        _, body = app.handle("GET", "/metrics")
        assert "fleet" not in body

    def test_bad_telemetry_payload_is_400(self):
        from repro.service import ServiceApp

        app = ServiceApp(Session(backend="zoo"))
        status, body = app.handle("POST", "/telemetry", {"seq": 1})
        assert status == 400
        assert "worker" in body["error"]

    def test_dashboard_route_serves_html(self):
        from repro.service import ServiceApp
        from repro.service.server import RAW_TEXT_KEY

        app = ServiceApp(Session(backend="zoo"))
        status, body = app.handle("GET", "/dashboard")
        assert status == 200
        assert body["content_type"].startswith("text/html")
        html = body[RAW_TEXT_KEY]
        assert "<!DOCTYPE html>" in html
        assert "/metrics" in html and "/shard/status" in html
        # self-contained: no external asset loads from the page
        assert "http://" not in html and "https://" not in html

    @staticmethod
    def _post_json(url, payload):
        request = urllib.request.Request(
            url, data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with urllib.request.urlopen(request, timeout=5) as response:
            return response.status, json.loads(response.read())

    def test_fleet_routes_over_both_http_servers(self):
        """Both servers ingest pushes from two workers and expose the
        merged, worker-labelled fleet view on one scrape."""
        from repro.service import AsyncEvalService, EvalService

        with EvalService(Session(backend="zoo"), port=0) as stdlib_svc, \
                AsyncEvalService(Session(backend="zoo"), port=0) as aio_svc:
            for url in (stdlib_svc.url, aio_svc.url):
                for worker in ("w-a", "w-b"):
                    status, ack = self._post_json(
                        url + "/telemetry", self._payload(worker)
                    )
                    assert status == 200 and ack["ok"]
                with urllib.request.urlopen(
                    url + "/metrics/prom", timeout=5
                ) as response:
                    text = response.read().decode("utf-8")
                assert 'worker_records_submitted{worker="w-a"} 4.0' in text
                assert 'worker_records_submitted{worker="w-b"} 4.0' in text
                with urllib.request.urlopen(
                    url + "/dashboard", timeout=5
                ) as response:
                    assert response.headers.get_content_type() == "text/html"
                    assert b"repro dashboard" in response.read()


class TestWorkerTelemetryEndToEnd:
    def test_run_worker_pushes_registry_deltas(self):
        from repro.service import (
            ServiceApp,
            ShardCoordinator,
            ShardPlanner,
            in_process_transport,
            run_worker,
        )

        session = Session(backend="zoo")
        plan = session.plan(TINY, models=["codegen-2b-ft"])
        coordinator = ShardCoordinator(
            ShardPlanner(2).split(plan), lease_seconds=60
        )
        app = ServiceApp(session, coordinator=coordinator)
        summary = run_worker(
            transport=in_process_transport(app),
            session=Session(backend="zoo"),
            worker_id="w-tele",
            max_idle_polls=3,
            telemetry_seconds=0.001,
        )
        assert summary["shards"] == 2
        fleet = app.telemetry.fleet_snapshot()
        assert [w["worker"] for w in fleet["workers"]] == ["w-tele"]
        counters = {
            (row["name"], row["labels"]["worker"]): row["value"]
            for row in fleet["metrics"]["counters"]
        }
        assert counters[("worker_units_submitted", "w-tele")] == 2.0

    def test_telemetry_disabled_with_none_interval(self):
        from repro.service import (
            ServiceApp,
            ShardCoordinator,
            ShardPlanner,
            in_process_transport,
            run_worker,
        )

        session = Session(backend="zoo")
        plan = session.plan(TINY, models=["codegen-2b-ft"])
        coordinator = ShardCoordinator(
            ShardPlanner(1).split(plan), lease_seconds=60
        )
        app = ServiceApp(session, coordinator=coordinator)
        run_worker(
            transport=in_process_transport(app),
            session=Session(backend="zoo"),
            max_idle_polls=3,
            telemetry_seconds=None,
        )
        assert len(app.telemetry) == 0


# ----------------------------------------------------------------------
# Dashboard rendering + repro top
# ----------------------------------------------------------------------
class TestDashboardRender:
    def _view(self):
        return {
            "url": "http://127.0.0.1:1",
            "metrics": {
                "metrics": {
                    "counters": [
                        {"name": "repair_attempts",
                         "labels": {"verdict": "pass"}, "value": 3.0},
                        {"name": "repair_attempts",
                         "labels": {"verdict": "sim_fail"}, "value": 1.0},
                        {"name": "evaluator_cache",
                         "labels": {"result": "hit"}, "value": 5.0},
                        {"name": "evaluator_cache",
                         "labels": {"result": "miss"}, "value": 5.0},
                    ],
                    "gauges": [],
                    "histograms": [
                        {"name": "stage_seconds",
                         "labels": {"stage": "sim"}, "count": 4,
                         "sum": 3.0, "min": 0.1, "max": 2.0,
                         "p50": 0.5, "p95": 2.0, "p99": 2.0},
                        {"name": "stage_seconds",
                         "labels": {"stage": "generate"}, "count": 4,
                         "sum": 1.0, "min": 0.1, "max": 0.5,
                         "p50": 0.2, "p95": 0.5, "p99": 0.5},
                    ],
                },
                "fleet": {
                    "workers": [
                        {"worker": "w0", "pushes": 9, "seq": 9,
                         "age_seconds": 1.0, "stale": False},
                        {"worker": "w1", "pushes": 2, "seq": 2,
                         "age_seconds": 42.0, "stale": True},
                    ],
                    "metrics": {"counters": [], "gauges": [],
                                "histograms": []},
                },
            },
            "status": {
                "jobs_total": 10, "jobs_done": 6, "done": 3, "leased": 1,
                "pending": 2, "records_merged": 60, "records_streaming": 0,
                "store_hits": 4, "leases_reclaimed": 1,
                "leases": [
                    {"lease_id": "abcdef123456789", "shard_index": 4,
                     "worker_id": "w0", "expires_in": 55.2,
                     "records_streamed": 7},
                ],
                "workers": [
                    {"worker_id": "w0", "units": 3, "jobs": 6,
                     "records": 60, "errors": 1, "store_hits": 4,
                     "busy_seconds": 2.0, "jobs_per_second": 3.0},
                ],
            },
            "errors": [],
        }

    def test_page_sections(self):
        from repro.obs.dashboard import render_dashboard

        page = render_dashboard(self._view())
        assert "sweep: 6/10 jobs" in page
        assert "1 lease(s) reclaimed" in page
        assert "abcdef123456" in page  # lease id truncated to 12
        assert "up 1s ago" in page  # live worker mark
        assert "STALE 42s" in page  # stale telemetry-only worker
        assert "sim" in page and "generate" in page
        assert "lift 75.0%" in page  # 3 pass / 4 attempts
        assert "cache hit 50.0%" in page
        assert "job errors: 16.7%" in page  # 1 error / 6 jobs

    def test_no_coordinator_view(self):
        from repro.obs.dashboard import render_dashboard

        page = render_dashboard({
            "url": "u", "metrics": {"metrics": {
                "counters": [], "gauges": [], "histograms": []}},
            "status": None,
            "errors": ["/shard/status: HTTP 400"],
        })
        assert "no coordinator attached" in page
        # the status poll error is folded into that line, not repeated
        assert "poll error" not in page

    def test_stage_split_helper(self):
        from repro.obs.dashboard import stage_split

        split = stage_split(self._view()["metrics"]["metrics"])
        assert [row["stage"] for row in split] == ["sim", "generate"]
        assert split[0]["share"] == pytest.approx(0.75)

    def test_run_top_once_against_live_service(self, capsys):
        from repro.service import EvalService

        with EvalService(Session(backend="zoo"), port=0) as svc:
            assert main(["top", "--url", svc.url, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "\x1b[2J" not in out  # --once never clears the screen

    def test_run_top_once_unreachable_exits_one(self):
        from repro.obs.dashboard import run_top

        pages = []
        code = run_top("http://127.0.0.1:9", once=True, timeout=0.2,
                       out=pages.append)
        assert code == 1
        assert "poll error" in pages[0]

    def test_run_top_loop_clears_between_frames(self):
        from repro.obs.dashboard import CLEAR, run_top

        pages = []

        def stop(_seconds):
            raise KeyboardInterrupt

        code = run_top("http://127.0.0.1:9", timeout=0.2,
                       out=pages.append, sleep=stop)
        assert code == 0
        assert pages[0].startswith(CLEAR)


class TestHotspotsCli:
    @staticmethod
    def _profiled_sweep(tmp_path, name="run.trace"):
        trace = tmp_path / name
        code = main([
            "sweep", "--backend", "stub-canonical", "--problems", "1,2",
            "--temperatures", "0.1", "--n", "1", "--levels", "L",
            "--trace", str(trace), "--profile",
        ])
        assert code == 0
        return trace

    def test_profiled_sweep_then_hotspots(self, capsys, tmp_path):
        trace = self._profiled_sweep(tmp_path)
        out = capsys.readouterr().out
        assert "repro hotspots" in out  # the hint names the right command
        frames = load_trace(str(trace))
        meta = frames[0]
        assert meta["tags"]["profiled"] is True
        assert any(f["type"] == "profile" for f in frames)
        assert main(["hotspots", str(trace)]) == 0
        report = capsys.readouterr().out
        assert "sim hotspots" in report
        assert not profiling_enabled()  # flag restored after the command

    def test_hotspots_accepts_directory_and_glob(self, capsys, tmp_path):
        self._profiled_sweep(tmp_path)
        capsys.readouterr()
        assert main(["hotspots", str(tmp_path)]) == 0
        assert "sim hotspots" in capsys.readouterr().out
        assert main(["stats", str(tmp_path / "*.trace")]) == 0
        assert "sim profile" in capsys.readouterr().out

    def test_hotspots_json_output(self, capsys, tmp_path):
        trace = self._profiled_sweep(tmp_path)
        capsys.readouterr()
        assert main(["hotspots", str(trace), "--json"]) == 0
        profile = json.loads(capsys.readouterr().out)
        assert profile["frames"] > 0
        assert profile["constructs"]

    def test_hotspots_bad_inputs_exit_two(self, capsys, tmp_path):
        assert main(["hotspots", str(tmp_path / "missing.trace")]) == 2
        assert "error" in capsys.readouterr().out
        (tmp_path / "t.trace").write_text('{"type":"meta","version":1}\n')
        assert main([
            "hotspots", str(tmp_path / "t.trace"), "--coverage", "1.5",
        ]) == 2
        assert "--coverage" in capsys.readouterr().out

    def test_profile_without_trace_exits_two(self, capsys):
        assert main(["sweep", "--profile"]) == 2
        assert "--profile needs --trace" in capsys.readouterr().out
