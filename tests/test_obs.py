"""Tests for the observability layer (repro.obs): metrics registry,
span tracing + trace files, stage timers, retry timing, stream frames,
/metrics routes, and the ``repro stats`` CLI."""

import json
import urllib.request

import pytest

from repro.api import Session
from repro.backends import BackendError, StubBackend
from repro.cli import main
from repro.eval import Evaluator, RetryPolicy, SweepConfig, SweepPlanner
from repro.eval.export import error_from_dict, error_to_dict
from repro.eval.jobs import JobError, run_job_with_retry
from repro.obs import (
    REGISTRY,
    STAGES,
    Histogram,
    MetricsRegistry,
    TraceFormatError,
    TraceWriter,
    current_tags,
    job_tags,
    load_trace,
    observe_stage,
    record_span,
    render_prometheus,
    render_stats,
    reset_registry,
    span,
    summarize_traces,
    tracing_active,
)
from repro.problems import PromptLevel

TINY = SweepConfig(
    temperatures=(0.1,),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


@pytest.fixture(autouse=True)
def _clean_registry():
    """Each test sees a fresh process registry (and leaves one behind)."""
    reset_registry()
    yield
    reset_registry()


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_accumulate_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("units", worker="a")
        reg.inc("units", 2.0, worker="a")
        reg.inc("units", worker="b")
        assert reg.counter_value("units", worker="a") == 3.0
        assert reg.counter_value("units", worker="b") == 1.0
        assert reg.counter_value("units", worker="nope") == 0.0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("queue_depth", 5)
        reg.set_gauge("queue_depth", 2)
        snapshot = reg.snapshot()
        assert snapshot["gauges"] == [
            {"name": "queue_depth", "labels": {}, "value": 2.0}
        ]

    def test_histogram_percentiles_within_bucket_error(self):
        hist = Histogram()
        for ms in range(1, 1001):
            hist.observe(ms / 1000.0)
        snap = hist.snapshot()
        assert snap["count"] == 1000
        assert snap["min"] == 0.001 and snap["max"] == 1.0
        # log buckets are ~9.6% wide; quantiles land within one bucket
        assert snap["p50"] == pytest.approx(0.5, rel=0.11)
        assert snap["p95"] == pytest.approx(0.95, rel=0.11)
        assert snap["p99"] == pytest.approx(0.99, rel=0.11)

    def test_histogram_single_sample_is_exact_range(self):
        hist = Histogram()
        hist.observe(0.25)
        snap = hist.snapshot()
        # quantiles clamp to [min, max], so one sample answers itself
        assert snap["p50"] == snap["p99"] == 0.25

    def test_empty_histogram_snapshot_is_zeroes(self):
        reg = MetricsRegistry()
        assert reg.histogram_snapshot("never_observed")["count"] == 0

    def test_snapshot_shape_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.inc("b_counter")
        reg.inc("a_counter", stage="sim")
        reg.observe("latency", 0.5, stage="parse")
        snap = reg.snapshot()
        assert [row["name"] for row in snap["counters"]] == [
            "a_counter", "b_counter",
        ]
        hist_row = snap["histograms"][0]
        assert hist_row["labels"] == {"stage": "parse"}
        assert {"count", "sum", "min", "max", "p50", "p95", "p99"} <= set(
            hist_row
        )
        json.dumps(snap)  # must be JSON-serializable as-is

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.set_gauge("y", 1)
        reg.observe("z", 1.0)
        reg.reset()
        assert reg.snapshot() == {
            "counters": [], "gauges": [], "histograms": [],
        }


class TestPrometheusRendering:
    def test_counters_gauges_histograms_render(self):
        reg = MetricsRegistry()
        reg.inc("http_requests", 3, route="/health")
        reg.set_gauge("workers", 2)
        reg.observe("job_seconds", 0.5)
        text = render_prometheus(reg)
        assert "# TYPE http_requests counter" in text
        assert 'http_requests{route="/health"} 3.0' in text
        assert "# TYPE workers gauge" in text
        assert "# TYPE job_seconds summary" in text
        assert 'job_seconds{quantile="0.5"}' in text
        assert "job_seconds_count 1" in text
        assert "job_seconds_sum 0.5" in text
        assert text.endswith("\n")

    def test_output_stable_for_same_state(self):
        reg = MetricsRegistry()
        reg.inc("c", worker="b")
        reg.inc("c", worker="a")
        assert render_prometheus(reg) == render_prometheus(reg)
        # label sets render sorted, insertion order does not leak
        lines = render_prometheus(reg).splitlines()
        assert lines[1] == 'c{worker="a"} 1.0'

    def test_defaults_to_process_registry(self):
        REGISTRY.inc("process_wide_counter")
        assert "process_wide_counter 1.0" in render_prometheus()


# ----------------------------------------------------------------------
# Span tracing + trace files
# ----------------------------------------------------------------------
class TestSpans:
    def test_record_span_noop_without_sinks(self):
        assert not tracing_active()
        record_span("orphan", 0.1)  # must not raise or buffer anywhere

    def test_sink_receives_span_with_merged_tags(self):
        seen = []
        with TraceWriterSpy(seen):
            with job_tags(model="m1", problem=3):
                record_span("sim", 0.02, problem=4, cycles=10)
        assert len(seen) == 1
        frame = seen[0]
        assert frame["type"] == "span" and frame["name"] == "sim"
        assert frame["dur"] == pytest.approx(0.02)
        # explicit tags win over the ambient job context
        assert frame["tags"] == {"model": "m1", "problem": 4, "cycles": 10}

    def test_job_tags_nest_and_restore(self):
        assert current_tags() == {}
        with job_tags(model="m", problem=1):
            with job_tags(problem=2, level="L"):
                assert current_tags() == {
                    "model": "m", "problem": 2, "level": "L",
                }
            assert current_tags() == {"model": "m", "problem": 1}
        assert current_tags() == {}

    def test_span_context_manager_times_body(self):
        seen = []
        with TraceWriterSpy(seen):
            with span("elaborate", problem=7):
                pass
        assert seen[0]["name"] == "elaborate"
        assert seen[0]["dur"] >= 0.0
        assert seen[0]["tags"] == {"problem": 7}

    def test_span_context_manager_free_without_sinks(self):
        with span("nothing"):  # no sink installed: must not record
            pass
        assert not tracing_active()


class TraceWriterSpy:
    """A plain list-collecting sink with the TraceWriter install dance."""

    def __init__(self, frames):
        self.frames = frames

    def __call__(self, frame):
        self.frames.append(frame)

    def __enter__(self):
        from repro.obs import add_sink

        add_sink(self)
        return self

    def __exit__(self, *exc_info):
        from repro.obs import remove_sink

        remove_sink(self)


class TestTraceWriter:
    def test_file_layout_meta_spans_metrics(self, tmp_path):
        path = tmp_path / "run.ndjson"
        REGISTRY.inc("counted_once")
        with TraceWriter(str(path), tags={"worker": "w0"}):
            assert tracing_active()
            record_span("job", 0.5, model="m", problem=1)
            record_span("generate", 0.4)
        assert not tracing_active()
        frames = load_trace(str(path))
        assert [f["type"] for f in frames] == [
            "meta", "span", "span", "metrics",
        ]
        meta = frames[0]
        assert meta["version"] == 1
        assert meta["clock"] == "monotonic"
        assert meta["tags"] == {"worker": "w0"}
        # writer default tags live in the header only, not on spans
        assert frames[1]["tags"] == {"model": "m", "problem": 1}
        names = [row["name"] for row in frames[3]["metrics"]["counters"]]
        assert "counted_once" in names

    def test_every_line_is_one_json_object(self, tmp_path):
        path = tmp_path / "run.ndjson"
        with TraceWriter(str(path)):
            record_span("sim", 0.001, note='quote" and \\ backslash')
        for line in path.read_text().splitlines():
            assert isinstance(json.loads(line), dict)

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "run.ndjson"
        writer = TraceWriter(str(path))
        writer.close()
        writer.close()  # second close must not append or raise
        frames = load_trace(str(path))
        assert [f["type"] for f in frames] == ["meta", "metrics"]


# ----------------------------------------------------------------------
# Always-on stage timers + retry timing
# ----------------------------------------------------------------------
class TestStageTimers:
    def test_evaluation_feeds_stage_histograms(self):
        session = Session(backend="zoo")
        session.run_plan(session.plan(TINY, models=["codegen-2b-ft"]))
        snap = REGISTRY.snapshot()
        stages_seen = {
            row["labels"]["stage"]
            for row in snap["histograms"]
            if row["name"] == "stage_seconds"
        }
        # generate always runs; parse fires for every completion that
        # produced text; sim/testbench require a parse that elaborates
        assert "generate" in stages_seen
        assert "parse" in stages_seen
        assert stages_seen <= set(STAGES)
        job_rows = [
            row for row in snap["histograms"] if row["name"] == "job_seconds"
        ]
        assert job_rows and job_rows[0]["count"] == 2  # one job per problem

    def test_observe_stage_spans_only_when_tracing(self):
        seen = []
        observe_stage("parse", 0.01, problem=1)
        with TraceWriterSpy(seen):
            observe_stage("parse", 0.02, problem=1)
        assert len(seen) == 1  # first call predates the sink
        assert seen[0]["name"] == "parse"
        assert (
            REGISTRY.histogram_snapshot(
                "stage_seconds", stage="parse", problem=1
            )["count"]
            == 2
        )


class TestRetryTiming:
    def _flaky(self, failures):
        class Flaky(StubBackend):
            calls = 0

            def generate(self, model, prompt, config):
                Flaky.calls += 1
                if Flaky.calls <= failures:
                    raise BackendError(f"transient #{Flaky.calls}")
                return super().generate(model, prompt, config)

        return Flaky()

    def test_success_after_retries_schedules_backoff(self):
        backend = self._flaky(failures=2)
        job = SweepPlanner(backend).plan(TINY).jobs[0]
        slept = []
        records, failure, attempts = run_job_with_retry(
            backend,
            Evaluator(),
            job,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.5),
            sleep=slept.append,
        )
        assert failure is None and attempts == 3
        assert len(records) == job.n
        assert slept == [0.5, 1.0]  # doubling backoff, deterministic

    def test_exhausted_failure_carries_attempt_timings(self):
        backend = self._flaky(failures=99)
        job = SweepPlanner(backend).plan(TINY).jobs[0]
        records, failure, attempts = run_job_with_retry(
            backend,
            Evaluator(),
            job,
            retry=RetryPolicy(max_attempts=3, backoff_seconds=0.25),
            sleep=lambda _s: None,
        )
        assert records == [] and attempts == 3
        assert len(failure.attempt_seconds) == 3
        assert all(s >= 0.0 for s in failure.attempt_seconds)
        assert failure.backoff_seconds == pytest.approx(0.25 + 0.5)

    def test_timing_fields_excluded_from_equality(self):
        job = SweepPlanner(StubBackend()).plan(TINY).jobs[0]
        fast = JobError(job=job, error="boom", attempts=2,
                        attempt_seconds=(0.1, 0.2), backoff_seconds=0.5)
        slow = JobError(job=job, error="boom", attempts=2,
                        attempt_seconds=(9.0, 9.0), backoff_seconds=99.0)
        # the parity invariant: wall-clock metadata never breaks equality
        assert fast == slow
        assert fast != JobError(job=job, error="boom", attempts=3)

    def test_export_roundtrip_and_legacy_dicts(self):
        job = SweepPlanner(StubBackend()).plan(TINY).jobs[0]
        error = JobError(job=job, error="boom", attempts=2,
                         attempt_seconds=(0.125, 0.25), backoff_seconds=1.5)
        row = error_to_dict(error)
        back = error_from_dict(row)
        assert back == error
        assert back.attempt_seconds == (0.125, 0.25)
        assert back.backoff_seconds == 1.5
        # dicts written before the timing fields existed still load
        row.pop("attempt_seconds")
        row.pop("backoff_seconds")
        legacy = error_from_dict(row)
        assert legacy == error  # compare=False: equal despite defaults
        assert legacy.attempt_seconds == ()
        assert legacy.backoff_seconds == 0.0


# ----------------------------------------------------------------------
# Stream frames: metric/span events, strict vs lenient decode, parity
# ----------------------------------------------------------------------
class TestStreamFrames:
    def test_metric_and_span_frames_carry_t(self):
        from repro.service.aio.events import metric_frame, span_frame

        metric = metric_frame({"records_merged": 4})
        assert metric["event"] == "metric"
        assert metric["metrics"] == {"records_merged": 4}
        assert isinstance(metric["t"], float)

        frame = span_frame({"type": "span", "name": "sim", "t": 12.5,
                            "dur": 0.25, "tags": {"problem": 1}})
        assert frame["event"] == "span"
        assert "type" not in frame  # stream discriminator replaces it
        assert frame["t"] == 12.5 and frame["dur"] == 0.25

    def test_progress_and_attempt_frames_carry_t(self):
        from repro.service.aio.events import attempt_frame, progress_frame

        assert isinstance(progress_frame(1, 2, 3, 0)["t"], float)
        assert isinstance(
            attempt_frame({"model": "m", "problem": 1, "round": 0,
                           "verdict": "pass"})["t"],
            float,
        )

    def test_decode_frame_strict_rejects_unknown_event(self):
        from repro.service.aio.events import StreamProtocolError, decode_frame

        line = b'{"event":"hologram","x":1}'
        with pytest.raises(StreamProtocolError, match="unknown frame"):
            decode_frame(line)
        # lenient mode is the forward-compatibility path
        assert decode_frame(line, strict=False)["event"] == "hologram"

    def test_malformed_known_frames_fatal_in_both_modes(self):
        from repro.service.aio.events import StreamProtocolError, decode_frame

        for strict in (True, False):
            with pytest.raises(StreamProtocolError, match="missing"):
                decode_frame(b'{"event":"metric"}', strict=strict)
            with pytest.raises(StreamProtocolError, match="missing"):
                decode_frame(b'{"event":"span","name":"x"}', strict=strict)
            with pytest.raises(StreamProtocolError, match="not JSON"):
                decode_frame(b"{nope", strict=strict)
            with pytest.raises(StreamProtocolError, match="object"):
                decode_frame(b"[1,2]", strict=strict)
            with pytest.raises(StreamProtocolError, match="unknown"):
                decode_frame(b'{"no_event":1}', strict=strict)

    def test_decode_stream_passes_unknown_events_through(self):
        from repro.service.aio.events import decode_stream

        lines = [
            b'{"event":"metric","t":1.0,"metrics":{}}',
            b"",  # keep-alive
            b'{"event":"from_the_future","payload":1}',
            b'{"event":"span","name":"sim","dur":0.1}',
        ]
        events = [f["event"] for f in decode_stream(lines)]
        assert events == ["metric", "from_the_future", "span"]

    def test_assembly_ignores_observational_frames(self):
        """Interleaving metric/span frames anywhere in a stream must not
        change the reassembled result (the parity invariant)."""
        from repro.service.aio.events import (
            assemble_stream_result,
            metric_frame,
            result_to_frames,
            span_frame,
        )

        session = Session(backend="stub-canonical")
        plan = session.plan(TINY)
        result = session.run_plan(plan)
        frames = result_to_frames(plan, result)
        noisy = []
        for frame in frames:
            noisy.append(metric_frame({"records_merged": len(noisy)}))
            noisy.append(span_frame({"name": "sim", "dur": 0.01}))
            noisy.append(frame)
        rebuilt = assemble_stream_result(noisy)
        assert rebuilt.sweep.records == result.sweep.records
        assert rebuilt.errors == result.errors
        assert rebuilt.stats == result.stats


# ----------------------------------------------------------------------
# /metrics routes on both servers
# ----------------------------------------------------------------------
class TestMetricsRoutes:
    def test_service_app_metrics_json(self):
        from repro.service import ServiceApp

        REGISTRY.inc("route_test_counter")
        status, body = ServiceApp(Session(backend="zoo")).handle(
            "GET", "/metrics"
        )
        assert status == 200
        names = [row["name"] for row in body["metrics"]["counters"]]
        assert "route_test_counter" in names
        assert "coordinator" not in body  # none attached

    def test_service_app_metrics_prom_is_raw_text(self):
        from repro.service import ServiceApp
        from repro.service.server import RAW_TEXT_KEY

        REGISTRY.inc("route_test_counter")
        status, body = ServiceApp(Session(backend="zoo")).handle(
            "GET", "/metrics/prom"
        )
        assert status == 200
        assert body["content_type"] == "text/plain; version=0.0.4"
        assert "route_test_counter 1.0" in body[RAW_TEXT_KEY]

    @staticmethod
    def _fetch(url):
        with urllib.request.urlopen(url, timeout=5) as response:
            return (
                response.status,
                response.headers.get("Content-Type"),
                response.read().decode("utf-8"),
            )

    def test_routes_over_both_http_servers(self):
        """The stdlib and asyncio servers expose identical metrics
        routes: JSON snapshot at /metrics, Prometheus text at
        /metrics/prom with the exposition content type."""
        from repro.service import AsyncEvalService, EvalService

        REGISTRY.inc("served_counter", flavor="both")
        with EvalService(Session(backend="zoo"), port=0) as stdlib_svc, \
                AsyncEvalService(Session(backend="zoo"), port=0) as aio_svc:
            for url in (stdlib_svc.url, aio_svc.url):
                status, ctype, text = self._fetch(url + "/metrics")
                assert status == 200
                assert ctype.startswith("application/json")
                names = [
                    row["name"]
                    for row in json.loads(text)["metrics"]["counters"]
                ]
                assert "served_counter" in names

                status, ctype, text = self._fetch(url + "/metrics/prom")
                assert status == 200
                assert ctype == "text/plain; version=0.0.4"
                assert 'served_counter{flavor="both"} 1.0' in text
                assert "# TYPE served_counter counter" in text


# ----------------------------------------------------------------------
# Trace summarizer + repro stats CLI
# ----------------------------------------------------------------------
def write_trace(path, worker=None, jobs=2):
    """A small but complete trace file via the real writer."""
    tags = {"worker": worker} if worker else None
    with TraceWriter(str(path), tags=tags):
        for index in range(jobs):
            record_span("generate", 0.30, model="m", problem=index + 1)
            record_span("parse", 0.05, problem=index + 1)
            record_span("sim", 0.10, problem=index + 1)
            record_span("job", 0.50, t=float(index), model="m",
                        problem=index + 1)
        record_span("repair_attempt", 0.2, round=0, verdict="sim_fail")
        record_span("repair_attempt", 0.2, round=1, verdict="pass")


class TestTraceStats:
    def test_stage_split_and_job_percentiles(self, tmp_path):
        path = tmp_path / "a.ndjson"
        write_trace(path, jobs=4)
        summary = summarize_traces([str(path)])
        assert summary["stages"]["generate"]["count"] == 4
        assert summary["stages"]["generate"]["seconds"] == pytest.approx(1.2)
        total = summary["stage_seconds_total"]
        assert total == pytest.approx(4 * (0.30 + 0.05 + 0.10))
        assert summary["stages"]["generate"]["share"] == pytest.approx(
            1.2 / total
        )
        assert summary["jobs"]["count"] == 4
        assert summary["jobs"]["p50"] == pytest.approx(0.5)
        assert summary["jobs"]["p99"] == pytest.approx(0.5)
        assert summary["repair_attempts"] == {"sim_fail": 1, "pass": 1}

    def test_worker_attribution_from_meta_tags(self, tmp_path):
        """Multi-file merge: each file's meta-header worker tag labels
        its job spans; files without one fall back to a per-file id."""
        a, b, c = (tmp_path / name for name in ("a.nd", "b.nd", "c.nd"))
        write_trace(a, worker="w-alpha", jobs=3)
        write_trace(b, worker="w-beta", jobs=1)
        write_trace(c, worker=None, jobs=1)
        summary = summarize_traces([str(a), str(b), str(c)])
        workers = summary["workers"]
        assert workers["w-alpha"]["jobs"] == 3
        assert workers["w-beta"]["jobs"] == 1
        assert workers["file2"]["jobs"] == 1
        # wall clock spans first job start to last job end within a file
        assert workers["w-alpha"]["wall_seconds"] == pytest.approx(2.5)
        assert workers["w-alpha"]["jobs_per_second"] == pytest.approx(
            3 / 2.5
        )

    def test_malformed_lines_raise_with_location(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type":"meta","version":1}\n{nope\n')
        with pytest.raises(TraceFormatError, match="bad.ndjson:2"):
            load_trace(str(path))

    def test_unknown_frame_type_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type":"hologram"}\n')
        with pytest.raises(TraceFormatError, match="unknown frame type"):
            load_trace(str(path))

    def test_span_missing_dur_rejected(self, tmp_path):
        path = tmp_path / "bad.ndjson"
        path.write_text('{"type":"span","name":"sim"}\n')
        with pytest.raises(TraceFormatError, match="missing dur"):
            load_trace(str(path))

    def test_empty_trace_rejected(self, tmp_path):
        path = tmp_path / "empty.ndjson"
        path.write_text("\n\n")
        with pytest.raises(TraceFormatError, match="empty trace"):
            load_trace(str(path))

    def test_render_stats_report_shape(self, tmp_path):
        path = tmp_path / "a.ndjson"
        write_trace(path, worker="w0")
        report = render_stats(summarize_traces([str(path)]))
        assert "stage" in report and "generate" in report
        assert "p95" in report
        assert "w0" in report
        assert "repair attempts: pass=1, sim_fail=1" in report


class TestStatsCli:
    def test_stats_happy_path(self, capsys, tmp_path):
        path = tmp_path / "run.ndjson"
        write_trace(path, worker="w0")
        assert main(["stats", str(path)]) == 0
        out = capsys.readouterr().out
        assert "generate" in out and "w0" in out

    def test_stats_json_output(self, capsys, tmp_path):
        path = tmp_path / "run.ndjson"
        write_trace(path)
        assert main(["stats", str(path), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["jobs"]["count"] == 2

    def test_stats_bad_file_exits_two(self, capsys, tmp_path):
        missing = tmp_path / "no-such.ndjson"
        assert main(["stats", str(missing)]) == 2
        assert "error" in capsys.readouterr().out
        bad = tmp_path / "bad.ndjson"
        bad.write_text("{nope\n")
        assert main(["stats", str(bad)]) == 2
        assert "not JSON" in capsys.readouterr().out

    def test_sweep_trace_flag_writes_valid_trace(self, capsys, tmp_path):
        trace = tmp_path / "sweep.ndjson"
        code = main([
            "sweep", "--backend", "stub-canonical", "--problems", "1,2",
            "--temperatures", "0.1", "--n", "2", "--levels", "L",
            "--trace", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"wrote trace {trace}" in out
        frames = load_trace(str(trace))
        assert frames[0]["type"] == "meta"
        assert frames[0]["tags"]["command"] == "sweep"
        assert frames[-1]["type"] == "metrics"
        summary = summarize_traces([str(trace)])
        assert summary["jobs"]["count"] == 2  # one job per problem
        assert summary["stages"]["generate"]["count"] == 2
        assert not tracing_active()  # sink removed after the command

    def test_session_metrics_property(self):
        REGISTRY.inc("session_visible")
        snapshot = Session(backend="stub").metrics
        assert any(
            row["name"] == "session_visible"
            for row in snapshot["counters"]
        )
