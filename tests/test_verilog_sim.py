"""Simulator semantics tests: scheduling, NBA, delays, edges, tasks."""

import pytest

from repro.verilog import (
    SimulationError,
    compile_design,
    run_simulation,
    simulate,
)


def sim(source, top="tb", **kw):
    report, result = run_simulation(source, top=top, **kw)
    assert report.ok, report.errors
    assert result is not None, report.errors
    return result


class TestBasicExecution:
    def test_initial_display(self):
        result = sim('module tb; initial $display("hello"); endmodule')
        assert result.output == ["hello"]

    def test_finish_sets_flag(self):
        result = sim("module tb; initial $finish; endmodule")
        assert result.finished

    def test_no_finish_quiesces(self):
        result = sim('module tb; initial $display("x"); endmodule')
        assert not result.finished

    def test_delays_advance_time(self):
        result = sim(
            'module tb; initial begin #7 $display("t=%0t", $time); '
            "$finish; end endmodule"
        )
        assert result.output == ["t=7"]

    def test_sequential_delays_accumulate(self):
        result = sim(
            "module tb; initial begin #3; #4; "
            '$display("%0d", $time); $finish; end endmodule'
        )
        assert result.output == ["7"]

    def test_two_initial_blocks_interleave(self):
        result = sim(
            "module tb;\n"
            'initial begin #2 $display("a"); end\n'
            'initial begin #1 $display("b"); #2 $display("c"); end\n'
            "endmodule"
        )
        assert result.output == ["b", "a", "c"]

    def test_stop_behaves_like_finish(self):
        result = sim("module tb; initial $stop; endmodule")
        assert result.finished


class TestBlockingVsNonblocking:
    def test_blocking_visible_immediately(self):
        result = sim(
            "module tb; reg [3:0] a, b;\n"
            "initial begin a = 4'd3; b = a; "
            '$display("%0d", b); $finish; end endmodule'
        )
        assert result.output == ["3"]

    def test_nonblocking_old_value_in_same_step(self):
        result = sim(
            "module tb; reg [3:0] a, b;\n"
            "initial begin\n"
            "  a = 4'd1;\n"
            "  a <= 4'd5;\n"
            '  $display("before=%0d", a);\n'
            "  #1;\n"
            '  $display("after=%0d", a);\n'
            "  $finish;\nend\nendmodule"
        )
        assert result.output == ["before=1", "after=5"]

    def test_nba_swap_idiom(self):
        result = sim(
            "module tb; reg [3:0] a, b; reg clk;\n"
            "always @(posedge clk) a <= b;\n"
            "always @(posedge clk) b <= a;\n"
            "initial begin\n"
            "  a = 4'd1; b = 4'd2; clk = 0;\n"
            "  #1 clk = 1;\n"
            '  #1 $display("%0d %0d", a, b);\n'
            "  $finish;\nend\nendmodule"
        )
        assert result.output == ["2 1"]

    def test_nba_with_intra_delay(self):
        result = sim(
            "module tb; reg [3:0] q;\n"
            "initial begin\n"
            "  q = 0;\n"
            "  q <= #5 4'd9;\n"
            '  #1 $display("at1=%0d", q);\n'
            '  #5 $display("at6=%0d", q);\n'
            "  $finish;\nend\nendmodule"
        )
        assert result.output == ["at1=0", "at6=9"]

    def test_blocking_intra_delay(self):
        # a = #3 expr: RHS evaluated now, assigned after the delay
        result = sim(
            "module tb; reg [3:0] a, b;\n"
            "initial begin\n"
            "  a = 4'd1; b = 4'd0;\n"
            "  b = #3 a;\n"
            '  $display("t=%0t b=%0d", $time, b);\n'
            "  $finish;\nend\nendmodule"
        )
        assert result.output == ["t=3 b=1"]


class TestEdgesAndWaits:
    def test_posedge_wakeup(self):
        result = sim(
            "module tb; reg clk;\n"
            'initial begin clk = 0; #5 clk = 1; #5 clk = 0; #5 clk = 1; #1 $finish; end\n'
            'always @(posedge clk) $display("pos at %0t", $time);\n'
            "endmodule"
        )
        assert result.output == ["pos at 5", "pos at 15"]

    def test_negedge_wakeup(self):
        result = sim(
            "module tb; reg clk;\n"
            "initial begin clk = 0; #5 clk = 1; #5 clk = 0; #1 $finish; end\n"
            'always @(negedge clk) $display("neg at %0t", $time);\n'
            "endmodule"
        )
        assert result.output == ["neg at 10"]

    def test_x_to_one_is_posedge(self):
        result = sim(
            "module tb; reg clk;\n"
            "initial begin #5 clk = 1; #1 $finish; end\n"
            'always @(posedge clk) $display("pos");\n'
            "endmodule"
        )
        assert result.output == ["pos"]

    def test_any_change_sensitivity(self):
        # first write lands at t=1 so the always block is already waiting
        # (a t=0 write races with process start-up, as in real simulators)
        result = sim(
            "module tb; reg [1:0] v;\n"
            "initial begin #1 v = 0; #1 v = 1; #1 v = 2; #1 $finish; end\n"
            'always @(v) $display("v=%0d", v);\n'
            "endmodule"
        )
        assert result.output == ["v=0", "v=1", "v=2"]

    def test_star_sensitivity(self):
        result = sim(
            "module tb; reg a, b; reg y;\n"
            "always @* y = a & b;\n"
            "initial begin\n"
            "  a = 0; b = 0; #1;\n"
            "  a = 1; #1; b = 1; #1;\n"
            '  $display("y=%b", y); $finish;\nend\nendmodule'
        )
        assert result.output == ["y=1"]

    def test_wait_statement(self):
        result = sim(
            "module tb; reg go;\n"
            "initial begin go = 0; #7 go = 1; end\n"
            'initial begin wait (go) $display("went at %0t", $time); $finish; end\n'
            "endmodule"
        )
        assert result.output == ["went at 7"]

    def test_multiple_waiters_same_signal(self):
        result = sim(
            "module tb; reg clk;\n"
            "initial begin clk = 0; #5 clk = 1; #1 $finish; end\n"
            'always @(posedge clk) $display("w1");\n'
            'always @(posedge clk) $display("w2");\n'
            "endmodule"
        )
        assert sorted(result.output) == ["w1", "w2"]

    def test_clock_generator_always_delay(self):
        result = sim(
            "module tb; reg clk; integer n;\n"
            "always #5 clk = ~clk;\n"
            "initial begin clk = 0; n = 0; end\n"
            "always @(posedge clk) begin n = n + 1; if (n == 3) $finish; end\n"
            "endmodule"
        )
        assert result.finished
        assert result.time == 25


class TestContinuousAssign:
    def test_assign_follows_inputs(self):
        result = sim(
            "module tb; reg a, b; wire y;\n"
            "assign y = a ^ b;\n"
            "initial begin a = 0; b = 1; #1 "
            '$display("%b", y); a = 1; #1 $display("%b", y); $finish; end\n'
            "endmodule"
        )
        assert result.output == ["1", "0"]

    def test_assign_chains_propagate(self):
        result = sim(
            "module tb; reg a; wire b, c, d;\n"
            "assign b = ~a;\nassign c = ~b;\nassign d = ~c;\n"
            'initial begin a = 1; #1 $display("%b%b%b", b, c, d); $finish; end\n'
            "endmodule"
        )
        assert result.output == ["010"]

    def test_constant_assign(self):
        result = sim(
            "module tb; wire [3:0] k;\n"
            "assign k = 4'd9;\n"
            'initial begin #1 $display("%0d", k); $finish; end\nendmodule'
        )
        assert result.output == ["9"]

    def test_assign_to_part_select(self):
        result = sim(
            "module tb; reg [7:0] src; wire [7:0] y;\n"
            "assign y[3:0] = src[7:4];\n"
            "initial begin src = 8'hA5; #1 "
            '$display("%b", y[3:0]); $finish; end\nendmodule'
        )
        assert result.output == ["1010"]


class TestMemories:
    def test_memory_write_read(self):
        result = sim(
            "module tb; reg [7:0] mem [0:3];\n"
            "initial begin\n"
            "  mem[2] = 8'hAB;\n"
            '  $display("%h", mem[2]);\n'
            "  $finish;\nend\nendmodule"
        )
        assert result.output == ["ab"]

    def test_memory_uninitialized_is_x(self):
        result = sim(
            "module tb; reg [3:0] mem [0:3]; reg [3:0] v;\n"
            "initial begin v = mem[1]; "
            'if (v === 4\'bxxxx) $display("is-x"); $finish; end\nendmodule'
        )
        assert result.output == ["is-x"]

    def test_memory_out_of_range_read_is_x(self):
        result = sim(
            "module tb; reg [3:0] mem [0:3];\n"
            "initial begin mem[0] = 1; "
            'if (mem[9] === 4\'bxxxx) $display("oob-x"); $finish; end\nendmodule'
        )
        assert result.output == ["oob-x"]

    def test_memory_variable_index(self):
        result = sim(
            "module tb; reg [7:0] mem [0:7]; integer i; reg [7:0] total;\n"
            "initial begin\n"
            "  for (i = 0; i < 8; i = i + 1) mem[i] = i[7:0];\n"
            "  total = 0;\n"
            "  for (i = 0; i < 8; i = i + 1) total = total + mem[i];\n"
            '  $display("%0d", total); $finish;\nend\nendmodule'
        )
        assert result.output == ["28"]


class TestDisplayFormatting:
    def test_decimal_binary_hex(self):
        result = sim(
            "module tb; reg [7:0] v;\n"
            'initial begin v = 8\'hA5; $display("%d %b %h", v, v, v); $finish; end\n'
            "endmodule"
        )
        assert result.output == ["165 10100101 a5"]

    def test_x_renders_in_each_base(self):
        result = sim(
            "module tb; reg [3:0] v;\n"
            'initial begin $display("%d %b", v, v); $finish; end\nendmodule'
        )
        assert result.output == ["x xxxx"]

    def test_percent_escape_and_newline(self):
        result = sim(
            'module tb; initial begin $display("100%%\\ndone"); $finish; end endmodule'
        )
        assert result.output == ["100%\ndone"]

    def test_display_without_format(self):
        result = sim(
            "module tb; reg [3:0] a; initial begin a = 5; "
            "$display(a); $finish; end endmodule"
        )
        assert result.output == ["5"]

    def test_monitor_prints_on_change(self):
        result = sim(
            "module tb; reg [3:0] v;\n"
            "initial begin\n"
            '  $monitor("v=%0d", v);\n'
            "  v = 0; #1 v = 1; #1 v = 1; #1 v = 2; #1 $finish;\n"
            "end\nendmodule"
        )
        assert result.output == ["v=0", "v=1", "v=2"]

    def test_signed_display(self):
        result = sim(
            "module tb; reg signed [7:0] v;\n"
            'initial begin v = -3; $display("%0d", v); $finish; end\nendmodule'
        )
        assert result.output == ["-3"]


class TestGuards:
    def test_always_without_timing_raises(self):
        report, result = run_simulation(
            "module tb; reg a; always a = ~a; endmodule", top="tb"
        )
        assert report.ok  # compiles fine...
        assert result is None  # ...but dies at runtime
        assert "runtime" in report.errors[0] or result is None

    def test_zero_delay_oscillation_detected(self):
        # x is a fixed point of ~, so the classic inverter loop settles; a
        # case-equality loop genuinely oscillates in zero time instead.
        source = (
            "module tb; wire a; wire b;\n"
            "assign a = (b === 1'b0) ? 1'b1 : 1'b0;\nassign b = a;\n"
            "initial #1 $finish;\nendmodule"
        )
        report, result = run_simulation(source, top="tb", max_steps=20_000)
        assert result is None  # oscillates in zero time -> step limit

    def test_inverter_loop_settles_at_x(self):
        # the 4-state fixed point: ~x == x, so this quiesces, not hangs
        source = (
            "module tb; wire a; wire b;\n"
            "assign a = ~b;\nassign b = a;\n"
            "initial begin #1 if (a === 1'bx) $display(\"settled-x\"); "
            "$finish; end\nendmodule"
        )
        report, result = run_simulation(source, top="tb")
        assert result is not None
        assert result.output == ["settled-x"]

    def test_max_time_stops_clock(self):
        result = sim(
            "module tb; reg clk; always #5 clk = ~clk;\n"
            "initial clk = 0;\nendmodule",
            max_time=100,
        )
        assert not result.finished
        assert result.time <= 100

    def test_runaway_while_loop_detected(self):
        report, result = run_simulation(
            "module tb; reg [3:0] i; initial begin i = 0; "
            "while (1) i = i + 1; end endmodule",
            top="tb",
            max_steps=20_000,
        )
        assert result is None


class TestRandom:
    def test_random_is_deterministic(self):
        source = (
            "module tb; integer a;\n"
            'initial begin a = $random; $display("%0d", a); $finish; end\nendmodule'
        )
        first = sim(source).output
        second = sim(source).output
        assert first == second

    def test_random_values_differ_in_sequence(self):
        result = sim(
            "module tb; integer a, b;\n"
            "initial begin a = $random; b = $random; "
            'if (a !== b) $display("differ"); $finish; end\nendmodule'
        )
        assert result.output == ["differ"]


class TestHierarchy:
    DUT = """
    module inv(input x, output y);
      assign y = ~x;
    endmodule
    """

    def test_instance_connection(self):
        result = sim(
            self.DUT
            + "module tb; reg a; wire b;\n"
            "inv dut(.x(a), .y(b));\n"
            'initial begin a = 0; #1 $display("%b", b); $finish; end\nendmodule'
        )
        assert result.output == ["1"]

    def test_positional_connection(self):
        result = sim(
            self.DUT
            + "module tb; reg a; wire b;\n"
            "inv dut(a, b);\n"
            'initial begin a = 1; #1 $display("%b", b); $finish; end\nendmodule'
        )
        assert result.output == ["0"]

    def test_two_level_hierarchy(self):
        source = (
            self.DUT
            + """
        module double_inv(input x, output y);
          wire mid;
          inv i0(.x(x), .y(mid));
          inv i1(.x(mid), .y(y));
        endmodule
        module tb; reg a; wire b;
          double_inv dut(.x(a), .y(b));
          initial begin a = 1; #1 $display("%b", b); $finish; end
        endmodule
        """
        )
        result = sim(source)
        assert result.output == ["1"]

    def test_parameter_override(self):
        source = """
        module widget #(parameter W = 4)(output [7:0] size);
          assign size = W;
        endmodule
        module tb;
          wire [7:0] s1, s2;
          widget w1(.size(s1));
          widget #(.W(9)) w2(.size(s2));
          initial begin #1 $display("%0d %0d", s1, s2); $finish; end
        endmodule
        """
        result = sim(source)
        assert result.output == ["4 9"]

    def test_output_drives_expression_target(self):
        source = """
        module pair(output [1:0] o);
          assign o = 2'b10;
        endmodule
        module tb;
          wire a, b;
          pair p(.o({a, b}));
          initial begin #1 $display("%b%b", a, b); $finish; end
        endmodule
        """
        result = sim(source)
        assert result.output == ["10"]


class TestFunctions:
    def test_function_call_in_assign(self):
        source = """
        module tb;
          reg [3:0] a; wire [3:0] b;
          function [3:0] plus2;
            input [3:0] x;
            plus2 = x + 2;
          endfunction
          assign b = plus2(a);
          initial begin a = 3; #1 $display("%0d", b); $finish; end
        endmodule
        """
        assert sim(source).output == ["5"]

    def test_function_with_case(self):
        source = """
        module tb;
          wire [1:0] g;
          function [1:0] gray;
            input [1:0] x;
            case (x)
              2'd0: gray = 2'b00;
              2'd1: gray = 2'b01;
              2'd2: gray = 2'b11;
              default: gray = 2'b10;
            endcase
          endfunction
          assign g = gray(2'd2);
          initial begin #1 $display("%b", g); $finish; end
        endmodule
        """
        assert sim(source).output == ["11"]

    def test_recursive_data_flow_through_function(self):
        source = """
        module tb;
          integer i; reg [7:0] acc;
          function [7:0] dbl;
            input [7:0] x;
            dbl = x * 2;
          endfunction
          initial begin
            acc = 1;
            for (i = 0; i < 3; i = i + 1) acc = dbl(acc);
            $display("%0d", acc); $finish;
          end
        endmodule
        """
        assert sim(source).output == ["8"]


class TestCaseSemantics:
    def test_casez_wildcard(self):
        source = """
        module tb; reg [3:0] v; reg [1:0] out;
          always @(*) casez (v)
            4'b1???: out = 2'd3;
            4'b01??: out = 2'd2;
            default: out = 2'd0;
          endcase
          initial begin
            v = 4'b1010; #1 $display("%0d", out);
            v = 4'b0110; #1 $display("%0d", out);
            v = 4'b0010; #1 $display("%0d", out);
            $finish;
          end
        endmodule
        """
        assert sim(source).output == ["3", "2", "0"]

    def test_case_x_exact_match(self):
        source = """
        module tb; reg [1:0] v; reg hit;
          initial begin
            hit = 0;
            case (v)
              2'bxx: hit = 1;
              default: hit = 0;
            endcase
            $display("%b", hit); $finish;
          end
        endmodule
        """
        assert sim(source).output == ["1"]

    def test_case_no_match_no_default(self):
        source = """
        module tb; reg [1:0] v; reg [1:0] out;
          initial begin
            v = 2'd3; out = 2'd0;
            case (v)
              2'd0: out = 2'd1;
              2'd1: out = 2'd2;
            endcase
            $display("%0d", out); $finish;
          end
        endmodule
        """
        assert sim(source).output == ["0"]


class TestWidthSemantics:
    def test_carry_preserved_by_context(self):
        source = """
        module tb; reg a, b; wire [1:0] s;
          assign s = a + b;
          initial begin a = 1; b = 1; #1 $display("%0d", s); $finish; end
        endmodule
        """
        assert sim(source).output == ["2"]

    def test_comparison_widens_add(self):
        source = """
        module tb; reg a, b; reg ok;
          initial begin
            a = 1; b = 1;
            ok = ({1'b1, 1'b0} == a + b);
            $display("%b", ok); $finish;
          end
        endmodule
        """
        assert sim(source).output == ["1"]

    def test_truncation_on_assign(self):
        source = """
        module tb; reg [3:0] q;
          initial begin q = 8'hFF; $display("%0d", q); $finish; end
        endmodule
        """
        assert sim(source).output == ["15"]

    def test_signed_arithmetic(self):
        source = """
        module tb; reg signed [7:0] a, b; reg signed [7:0] c;
          initial begin a = -5; b = 3; c = a + b; $display("%0d", c); $finish; end
        endmodule
        """
        assert sim(source).output == ["-2"]

    def test_arith_shift_signed_register(self):
        source = """
        module tb; reg signed [7:0] a;
          initial begin a = -8; a = a >>> 1; $display("%0d", a); $finish; end
        endmodule
        """
        assert sim(source).output == ["-4"]
