"""Tests for the evaluation framework (repro.eval)."""

import pytest
from hypothesis import given, strategies as st

from repro.eval import (
    Evaluator,
    Sweep,
    SweepConfig,
    has_endmodule,
    mean,
    pass_at_k,
    pass_fraction,
    run_sweep,
    truncate_completion,
)
from repro.eval.harness import CompletionRecord
from repro.models import GenerationConfig, make_model
from repro.problems import Difficulty, PromptLevel, get_problem


class TestTruncation:
    def test_keeps_through_first_endmodule(self):
        text = "assign a = b;\nendmodule\n// trailing prose\nmodule junk; endmodule"
        out = truncate_completion(text)
        assert out.endswith("endmodule")
        assert "junk" not in out

    def test_no_endmodule_unchanged(self):
        text = "assign a = b;\n// never closed"
        assert truncate_completion(text) == text

    def test_endmodule_inside_identifier_not_matched(self):
        text = "wire endmodule_like;\nendmodule"
        out = truncate_completion(text)
        assert out.endswith("endmodule")
        assert "endmodule_like" in out

    def test_has_endmodule(self):
        assert has_endmodule("x endmodule")
        assert not has_endmodule("xendmodule")

    @given(st.text(max_size=300))
    def test_prop_truncation_is_idempotent(self, text):
        once = truncate_completion(text)
        assert truncate_completion(once) == once

    @given(st.text(max_size=300))
    def test_prop_truncation_is_prefix(self, text):
        assert text.startswith(truncate_completion(text))


class TestMetrics:
    def test_pass_fraction(self):
        assert pass_fraction([True, False, True, True]) == 0.75
        assert pass_fraction([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_pass_at_k_exact_cases(self):
        assert pass_at_k(10, 0, 5) == 0.0
        assert pass_at_k(10, 10, 1) == 1.0
        assert pass_at_k(2, 1, 1) == pytest.approx(0.5)

    def test_pass_at_k_bounds_errors(self):
        with pytest.raises(ValueError):
            pass_at_k(5, 6, 1)
        with pytest.raises(ValueError):
            pass_at_k(5, 1, 0)
        with pytest.raises(ValueError):
            pass_at_k(5, 1, 6)

    @given(
        n=st.integers(min_value=1, max_value=50),
        c=st.integers(min_value=0, max_value=50),
        k=st.integers(min_value=1, max_value=50),
    )
    def test_prop_pass_at_k_in_unit_interval(self, n, c, k):
        if c > n or k > n:
            return
        value = pass_at_k(n, c, k)
        assert 0.0 <= value <= 1.0

    @given(n=st.integers(min_value=2, max_value=30),
           c=st.integers(min_value=0, max_value=30))
    def test_prop_pass_at_k_monotone_in_k(self, n, c):
        if c > n:
            return
        values = [pass_at_k(n, c, k) for k in range(1, n + 1)]
        assert values == sorted(values)


class TestEvaluator:
    def test_canonical_passes(self):
        problem = get_problem(2)
        outcome = Evaluator().evaluate(problem, problem.canonical_body)
        assert outcome.compiled and outcome.passed
        assert outcome.verdict == "pass"

    def test_wrong_variant_fails(self):
        problem = get_problem(2)
        outcome = Evaluator().evaluate(problem, problem.wrong_variants[0].body)
        assert outcome.compiled and not outcome.passed
        assert outcome.verdict == "test-fail"

    def test_garbage_does_not_compile(self):
        problem = get_problem(2)
        outcome = Evaluator().evaluate(problem, "q;;; garbage $$")
        assert not outcome.compiled
        assert outcome.verdict == "compile-error"
        assert outcome.compile_errors

    def test_trailing_junk_truncated_before_compile(self):
        problem = get_problem(1)
        text = problem.canonical_body + "\nthis is not verilog at all"
        outcome = Evaluator().evaluate(problem, text)
        assert outcome.compiled and outcome.passed

    def test_cache_hits_on_repeat(self):
        evaluator = Evaluator()
        problem = get_problem(1)
        evaluator.evaluate(problem, problem.canonical_body)
        evaluator.evaluate(problem, problem.canonical_body)
        assert evaluator.cache_info["hits"] == 1
        assert evaluator.cache_info["misses"] == 1

    def test_cache_distinguishes_problems(self):
        evaluator = Evaluator()
        evaluator.evaluate(get_problem(1), "assign out = in;\nendmodule")
        evaluator.evaluate(get_problem(2), "assign out = a & b;\nendmodule")
        assert evaluator.cache_info["misses"] == 2

    def test_level_does_not_change_verdict(self):
        problem = get_problem(3)
        evaluator = Evaluator()
        verdicts = {
            evaluator.evaluate(problem, problem.canonical_body, level).passed
            for level in PromptLevel
        }
        assert verdicts == {True}


def _record(**kw):
    base = dict(
        model="m-ft", base_model="m", fine_tuned=True, problem=1,
        difficulty=Difficulty.BASIC, level=PromptLevel.LOW, temperature=0.1,
        n=10, sample_index=0, compiled=True, passed=True,
        inference_seconds=1.0,
    )
    base.update(kw)
    return CompletionRecord(**base)


class TestSweepSlicing:
    def test_filter_by_fields(self):
        sweep = Sweep(records=[
            _record(problem=1), _record(problem=2, passed=False),
            _record(model="x-pt", base_model="x", fine_tuned=False),
        ])
        assert len(sweep.filter(model="m-ft")) == 2
        assert len(sweep.filter(fine_tuned=False)) == 1
        assert len(sweep.filter(problem=2)) == 1

    def test_rate_metrics(self):
        records = [_record(passed=True), _record(passed=False, compiled=True)]
        assert Sweep.rate(records, "passed") == 0.5
        assert Sweep.rate(records, "compiled") == 1.0
        with pytest.raises(ValueError):
            Sweep.rate(records, "velocity")

    def test_best_temperature_selects_max(self):
        records = []
        for t, good in ((0.1, 8), (0.5, 3)):
            for i in range(10):
                records.append(
                    _record(temperature=t, sample_index=i, passed=i < good)
                )
        sweep = Sweep(records=records)
        best_t, rate = sweep.best_temperature(
            "m-ft", Difficulty.BASIC, PromptLevel.LOW, 10
        )
        assert best_t == 0.1
        assert rate == 0.8

    def test_best_temperature_empty(self):
        sweep = Sweep()
        assert sweep.best_temperature("x", Difficulty.BASIC, None, 10) == (0.0, 0.0)

    def test_mean_inference_seconds(self):
        sweep = Sweep(records=[
            _record(inference_seconds=1.0), _record(inference_seconds=3.0),
        ])
        assert sweep.mean_inference_seconds("m-ft") == 2.0


class TestRunSweep:
    def test_small_sweep_shape(self):
        model = make_model("codegen-6b", fine_tuned=True)
        config = SweepConfig(
            temperatures=(0.1, 0.5),
            completions_per_prompt=(4,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2),
        )
        sweep = run_sweep([model], config)
        # 1 model x 2 problems x 1 level x 2 temps x 4 completions
        assert len(sweep) == 16
        assert sweep.temperatures() == [0.1, 0.5]
        assert sweep.model_names() == ["codegen-6b-ft"]

    def test_sweep_skips_unsupported_n(self):
        model = make_model("j1-large-7b", fine_tuned=True)
        config = SweepConfig(
            temperatures=(0.1,),
            completions_per_prompt=(1, 25),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1,),
        )
        sweep = run_sweep([model], config)
        assert {r.n for r in sweep.records} == {1}

    def test_sweep_is_deterministic(self):
        model = make_model("codegen-2b", fine_tuned=True)
        config = SweepConfig(
            temperatures=(0.1,), completions_per_prompt=(5,),
            levels=(PromptLevel.MEDIUM,), problem_numbers=(3,),
        )
        a = run_sweep([model], config)
        b = run_sweep([model], config)
        assert [(r.compiled, r.passed) for r in a.records] == [
            (r.compiled, r.passed) for r in b.records
        ]

    def test_records_carry_difficulty(self):
        model = make_model("codegen-2b")
        config = SweepConfig(
            temperatures=(0.1,), completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,), problem_numbers=(13,),
        )
        sweep = run_sweep([model], config)
        assert all(r.difficulty == Difficulty.ADVANCED for r in sweep.records)


class TestExport:
    @pytest.fixture()
    def tiny_sweep(self):
        model = make_model("codegen-6b", fine_tuned=True)
        config = SweepConfig(
            temperatures=(0.1,), completions_per_prompt=(3,),
            levels=(PromptLevel.LOW,), problem_numbers=(1, 2),
        )
        return run_sweep([model], config)

    def test_csv_shape(self, tiny_sweep):
        from repro.eval import sweep_to_csv

        text = sweep_to_csv(tiny_sweep)
        lines = text.strip().splitlines()
        assert lines[0].startswith("model,base_model,fine_tuned")
        assert len(lines) == 1 + len(tiny_sweep)

    def test_json_round_trip(self, tiny_sweep):
        from repro.eval import load_sweep_json, sweep_to_json

        clone = load_sweep_json(sweep_to_json(tiny_sweep))
        assert len(clone) == len(tiny_sweep)
        original, restored = tiny_sweep.records[0], clone.records[0]
        assert (restored.model, restored.problem, restored.level) == (
            original.model, original.problem, original.level
        )
        assert (restored.compiled, restored.passed) == (
            original.compiled, original.passed
        )
        # inference time is rounded to microseconds on export
        assert restored.inference_seconds == pytest.approx(
            original.inference_seconds, abs=1e-5
        )
        assert Sweep.rate(clone.records) == Sweep.rate(tiny_sweep.records)

    def test_save_csv_and_json(self, tiny_sweep, tmp_path):
        from repro.eval import save_sweep

        csv_path = tmp_path / "sweep.csv"
        json_path = tmp_path / "sweep.json"
        save_sweep(tiny_sweep, str(csv_path))
        save_sweep(tiny_sweep, str(json_path))
        assert csv_path.read_text().count("\n") > 1
        assert json_path.read_text().startswith("[")

    def test_save_unknown_extension(self, tiny_sweep, tmp_path):
        from repro.eval import save_sweep

        with pytest.raises(ValueError):
            save_sweep(tiny_sweep, str(tmp_path / "sweep.parquet"))
