"""Tests for the training-corpus pipeline (repro.corpus)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.corpus import (
    Corpus,
    CorpusConfig,
    MAX_FILE_CHARS,
    MinHasher,
    SourceFile,
    SyntheticGitHub,
    apply_filters,
    bigquery_verilog_query,
    build_combined_corpus,
    build_github_corpus,
    deduplicate,
    estimate_jaccard,
    exact_jaccard,
    has_module_pair,
    shingles,
    strip_comments,
)
from repro.corpus.generators import GENERATORS, random_verilog_file
from repro.verilog import check_syntax


class TestDocuments:
    def test_source_file_properties(self):
        f = SourceFile(path="a/b.v", text="module m; endmodule")
        assert f.extension == ".v"
        assert f.size == len(f.text)

    def test_no_extension(self):
        assert SourceFile(path="README", text="").extension == ""

    def test_corpus_bookkeeping(self):
        corpus = Corpus()
        corpus.add(SourceFile(path="x.v", text="abc"))
        corpus.drop("too_large")
        corpus.drop("too_large")
        assert len(corpus) == 1
        assert corpus.total_bytes == 3
        assert corpus.dropped == {"too_large": 2}

    def test_training_text_joins_files(self):
        corpus = Corpus()
        corpus.add(SourceFile(path="a.v", text="AAA"))
        corpus.add(SourceFile(path="b.v", text="BBB"))
        assert corpus.training_text() == "AAA\n\nBBB"

    def test_stats_by_origin(self):
        corpus = Corpus()
        corpus.add(SourceFile(path="a.v", text="x", origin="github"))
        corpus.add(SourceFile(path="b.txt", text="y", origin="textbook"))
        assert corpus.stats()["by_origin"] == {"github": 1, "textbook": 1}


class TestFilters:
    def test_strip_comments(self):
        assert strip_comments("a // module\nb /* endmodule */ c") == "a \nb  c"

    def test_module_pair_detection(self):
        assert has_module_pair("module m; endmodule")
        assert not has_module_pair("`define X 1")
        assert not has_module_pair("module m;")  # no endmodule

    def test_module_in_comment_does_not_count(self):
        assert not has_module_pair("// module endmodule discussion\nwire x;")

    def test_size_filter(self):
        files = [
            SourceFile(path="ok.v", text="module m; endmodule"),
            SourceFile(
                path="big.v",
                text="module m; endmodule\n" + "x" * MAX_FILE_CHARS,
            ),
        ]
        corpus = apply_filters(files)
        assert len(corpus) == 1
        assert corpus.dropped == {"too_large": 1}

    def test_extension_filter(self):
        files = [SourceFile(path="a.vhd", text="module m; endmodule")]
        corpus = apply_filters(files)
        assert len(corpus) == 0
        assert corpus.dropped == {"extension": 1}

    def test_filter_order_reports_first_failure(self):
        files = [SourceFile(path="a.v", text="no hardware here")]
        assert apply_filters(files).dropped == {"no_module_pair": 1}


class TestMinHash:
    def test_identical_texts_full_similarity(self):
        hasher = MinHasher(num_perm=32)
        sig = hasher.signature(shingles("module m; endmodule" * 3))
        assert estimate_jaccard(sig, sig) == 1.0

    def test_disjoint_texts_low_similarity(self):
        hasher = MinHasher(num_perm=64)
        a = hasher.signature(shingles("aaaaaaaaaaaaaaaaaaaaaaaaaaaa"))
        b = hasher.signature(shingles("zzzzzzzzzzzzzzzzzzzzzzzzzzzz"))
        assert estimate_jaccard(a, b) < 0.3

    def test_signature_length(self):
        hasher = MinHasher(num_perm=16)
        assert len(hasher.signature(shingles("hello world"))) == 16

    def test_signature_deterministic(self):
        hasher = MinHasher(num_perm=16, seed=3)
        s = shingles("module m; endmodule")
        assert hasher.signature(s) == hasher.signature(s)

    def test_mismatched_signatures_rejected(self):
        with pytest.raises(ValueError):
            estimate_jaccard((1, 2), (1, 2, 3))

    def test_exact_jaccard(self):
        assert exact_jaccard({1, 2}, {2, 3}) == pytest.approx(1 / 3)
        assert exact_jaccard(set(), set()) == 1.0
        assert exact_jaccard({1}, set()) == 0.0

    def test_dedup_removes_exact_duplicates(self):
        texts = ["module a; endmodule" * 5, "module a; endmodule" * 5,
                 "totally different content here that shares nothing at all"]
        keep = deduplicate(texts, threshold=0.9)
        assert keep == [0, 2]

    def test_dedup_keeps_distinct(self):
        texts = [
            "module adder(input a, b); assign s = a + b; endmodule" * 3,
            "completely unrelated prose about simulation semantics" * 3,
        ]
        assert deduplicate(texts, threshold=0.8) == [0, 1]

    def test_dedup_near_duplicates(self):
        base = "module counter(input clk); always @(posedge clk) q <= q + 1; endmodule\n" * 6
        near = base.replace("clk", "clock")
        keep = deduplicate([base, near], threshold=0.5)
        assert keep == [0]

    def test_dedup_empty_input(self):
        assert deduplicate([]) == []

    @settings(max_examples=20, deadline=None)
    @given(st.text(min_size=20, max_size=200))
    def test_prop_minhash_estimates_self_similarity(self, text):
        hasher = MinHasher(num_perm=32)
        sig = hasher.signature(shingles(text))
        assert estimate_jaccard(sig, sig) == 1.0

    @settings(max_examples=15, deadline=None)
    @given(
        a=st.sets(st.integers(min_value=0, max_value=500), min_size=5, max_size=60),
        b=st.sets(st.integers(min_value=0, max_value=500), min_size=5, max_size=60),
    )
    def test_prop_minhash_estimate_near_exact_jaccard(self, a, b):
        hasher = MinHasher(num_perm=256)
        estimated = estimate_jaccard(hasher.signature(a), hasher.signature(b))
        exact = exact_jaccard(a, b)
        assert abs(estimated - exact) < 0.25  # 256 perms -> ~1/16 std dev


class TestGenerators:
    def test_every_generator_output_parses(self):
        rng = random.Random(7)
        for gen in GENERATORS:
            for _ in range(5):
                source = gen(rng)
                assert check_syntax(source).ok, (gen.__name__, source)

    def test_random_file_may_contain_multiple_modules(self):
        rng = random.Random(0)
        sizes = {random_verilog_file(rng).count("endmodule") for _ in range(50)}
        assert any(size > 1 for size in sizes)

    def test_generators_deterministic_under_seed(self):
        a = random_verilog_file(random.Random(5))
        b = random_verilog_file(random.Random(5))
        assert a == b


class TestSyntheticGitHub:
    def test_snapshot_cached(self):
        hub = SyntheticGitHub(repos=10)
        assert hub.snapshot() is hub.snapshot()

    def test_snapshot_deterministic(self):
        a = SyntheticGitHub(repos=10, seed=3).snapshot()
        b = SyntheticGitHub(repos=10, seed=3).snapshot()
        assert [f.path for r in a for f in r.files] == [
            f.path for r in b for f in r.files
        ]

    def test_snapshot_contains_pathologies(self):
        hub = SyntheticGitHub(repos=40, seed=1)
        files = [f for r in hub.snapshot() for f in r.files]
        assert any(not f.path.endswith(".v") for f in files), "noise files"
        assert any(len(f.text) >= MAX_FILE_CHARS for f in files), "oversized"
        texts = [f.text for f in files if f.path.endswith(".v")]
        assert len(texts) != len(set(texts)), "exact forks exist"

    def test_query_selects_by_extension(self):
        hub = SyntheticGitHub(repos=15, seed=2)
        selected = bigquery_verilog_query(hub.snapshot())
        assert all(
            f.path.endswith(".v") or True for f in selected
        )  # over-approximation allowed
        assert any(f.path.endswith(".v") for f in selected)


class TestPipeline:
    def test_github_corpus_stage_log(self):
        training = build_github_corpus(CorpusConfig(repos=20))
        stages = dict(training.stage_log)
        assert stages["queried"] >= stages["after_dedup"] >= stages["after_filters"]

    def test_all_surviving_files_are_verilog(self):
        training = build_github_corpus(CorpusConfig(repos=20))
        for f in training.corpus.files:
            assert f.path.endswith(".v")
            assert has_module_pair(f.text)
            assert len(f.text) < MAX_FILE_CHARS

    def test_surviving_files_parse(self):
        training = build_github_corpus(CorpusConfig(repos=15))
        for f in training.corpus.files:
            assert check_syntax(f.text).ok, f.path

    def test_combined_corpus_adds_textbook_examples(self):
        github_only = build_github_corpus(CorpusConfig(repos=15))
        combined = build_combined_corpus(
            CorpusConfig(repos=15, textbook_count=3)
        )
        assert len(combined.corpus) > len(github_only.corpus)
        origins = {f.origin for f in combined.corpus.files}
        assert origins == {"github", "textbook"}

    def test_corpus_deterministic(self):
        a = build_github_corpus(CorpusConfig(repos=12, seed=9))
        b = build_github_corpus(CorpusConfig(repos=12, seed=9))
        assert a.text == b.text

    def test_dedup_threshold_affects_file_count(self):
        strict = build_github_corpus(CorpusConfig(repos=25, dedup_threshold=0.5))
        loose = build_github_corpus(CorpusConfig(repos=25, dedup_threshold=0.99))
        assert len(strict.corpus) <= len(loose.corpus)
