"""Round-trip tests for the export codecs (repro.eval.export): record
tables, full sweep results with skip/error metadata, and the job/config
wire schema the service + shard layers share."""

import json

import pytest

from repro.backends import LocalZooBackend, StubBackend
from repro.eval import (
    SweepConfig,
    SweepExecutor,
    SweepPlanner,
    load_sweep_json,
    load_sweep_result_json,
    save_sweep,
    save_sweep_result,
    sweep_result_to_json,
    sweep_to_csv,
    sweep_to_json,
)
from repro.eval.export import (
    config_from_dict,
    config_to_dict,
    error_from_dict,
    error_to_dict,
    job_from_dict,
    job_to_dict,
    skip_from_dict,
    skip_to_dict,
)
from repro.eval.jobs import JobError
from repro.models import make_model, match_prompt_to_problem
from repro.problems import PromptLevel

CONFIG = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(2, 25),
    levels=(PromptLevel.LOW, PromptLevel.MEDIUM),
    problem_numbers=(1, 2),
)


def run_small():
    backend = LocalZooBackend(
        [
            make_model("codegen-6b", fine_tuned=True),
            make_model("j1-large-7b", fine_tuned=True),  # n=25 skips
        ]
    )
    plan = SweepPlanner(backend).plan(CONFIG)
    return SweepExecutor(backend).run(plan), plan


class TestSweepRoundTrip:
    def test_save_sweep_load_sweep_json_parity(self, tmp_path):
        result, _plan = run_small()
        path = str(tmp_path / "records.json")
        save_sweep(result.sweep, path)
        restored = load_sweep_json(open(path, encoding="utf-8").read())
        # JSON rounds inference_seconds to 6 digits; re-serialization is
        # the fixed point and must be identical
        assert sweep_to_json(restored) == sweep_to_json(result.sweep)
        assert len(restored) == len(result.sweep)
        first, again = result.sweep.records[0], restored.records[0]
        assert (first.model, first.problem, first.level) == (
            again.model, again.problem, again.level,
        )

    def test_csv_and_json_agree_on_rows(self):
        result, _plan = run_small()
        csv_lines = sweep_to_csv(result.sweep).strip().splitlines()
        rows = json.loads(sweep_to_json(result.sweep))
        assert len(csv_lines) - 1 == len(rows)  # minus header


class TestSweepResultRoundTrip:
    def test_full_result_round_trip_with_skips(self, tmp_path):
        result, _plan = run_small()
        assert result.skipped, "fixture should produce n=25 skips"
        path = str(tmp_path / "result.json")
        save_sweep_result(result, path)
        restored = load_sweep_result_json(open(path, encoding="utf-8").read())
        assert restored.skipped == result.skipped
        assert restored.errors == result.errors
        assert sweep_to_json(restored.sweep) == sweep_to_json(result.sweep)
        assert restored.stats["backend"] == result.stats["backend"]

    def test_round_trip_preserves_error_metadata(self):
        class FlakyBackend(StubBackend):
            def generate(self, model, prompt, config):
                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise RuntimeError("boom")
                return super().generate(model, prompt, config)

        backend = FlakyBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(2,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2),
            )
        )
        result = SweepExecutor(backend).run(plan)
        assert len(result.errors) == 1
        restored = load_sweep_result_json(sweep_result_to_json(result))
        assert restored.errors == result.errors
        assert restored.errors[0].job == result.errors[0].job
        assert restored.errors[0].attempts == 1
        assert "boom" in restored.errors[0].error

    def test_save_sweep_result_requires_json(self, tmp_path):
        result, _plan = run_small()
        with pytest.raises(ValueError, match=".json"):
            save_sweep_result(result, str(tmp_path / "result.csv"))


class TestWireCodecs:
    def test_job_codec_round_trip(self):
        _result, plan = run_small()
        for job in plan.jobs:
            assert job_from_dict(job_to_dict(job)) == job

    def test_skip_codec_round_trip(self):
        _result, plan = run_small()
        assert plan.skipped
        for skip in plan.skipped:
            assert skip_from_dict(skip_to_dict(skip)) == skip

    def test_error_codec_round_trip_and_attempts_default(self):
        _result, plan = run_small()
        error = JobError(job=plan.jobs[0], error="x: y", attempts=3)
        assert error_from_dict(error_to_dict(error)) == error
        legacy = error_to_dict(error)
        del legacy["attempts"]  # pre-retry files have no attempts field
        assert error_from_dict(legacy).attempts == 1

    def test_config_codec_round_trip(self):
        assert config_from_dict(config_to_dict(CONFIG)) == CONFIG
        assert config_from_dict(config_to_dict(SweepConfig())) == SweepConfig()

    def test_config_from_partial_dict_uses_defaults(self):
        config = config_from_dict({"temperatures": [0.2]})
        assert config.temperatures == (0.2,)
        assert config.levels == SweepConfig().levels
        assert config.problem_numbers == SweepConfig().problem_numbers
