"""Tests for the trainable LM substrates (n-gram, transformer, sampling)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (
    GenerationConfig,
    NGramModel,
    TransformerConfig,
    TransformerLM,
    apply_temperature,
    nucleus_filter,
    sample_token,
    softmax,
    stable_hash,
)
from repro.tokenizer import BPETokenizer

TRAIN_TEXT = (
    "module counter(input clk, input rst, output reg [3:0] q);\n"
    "  always @(posedge clk) begin\n"
    "    if (rst) q <= 4'd0;\n"
    "    else q <= q + 4'd1;\n"
    "  end\n"
    "endmodule\n"
) * 12


@pytest.fixture(scope="module")
def tokenizer():
    return BPETokenizer.train(TRAIN_TEXT, vocab_size=320)


@pytest.fixture(scope="module")
def ngram(tokenizer):
    return NGramModel(tokenizer=tokenizer, order=3).fit(TRAIN_TEXT)


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("abc") == stable_hash("abc")

    def test_distinct(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_64_bit(self):
        assert 0 <= stable_hash("anything") < (1 << 64)


class TestSampling:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs.argmax() == 2

    def test_softmax_stable_for_large_logits(self):
        probs = softmax(np.array([1000.0, 1001.0]))
        assert np.isfinite(probs).all()

    def test_temperature_sharpens(self):
        logits = np.array([1.0, 2.0])
        hot = softmax(apply_temperature(logits, 2.0))
        cold = softmax(apply_temperature(logits, 0.1))
        assert cold[1] > hot[1]

    def test_temperature_zero_rejected(self):
        with pytest.raises(ValueError):
            apply_temperature(np.array([1.0]), 0.0)

    def test_nucleus_keeps_top_mass(self):
        probs = np.array([0.5, 0.3, 0.15, 0.05])
        filtered = nucleus_filter(probs, 0.8)
        assert filtered[3] == 0.0
        assert filtered.sum() == pytest.approx(1.0)

    def test_nucleus_top_p_one_identity(self):
        probs = np.array([0.25, 0.75])
        assert (nucleus_filter(probs, 1.0) == probs).all()

    def test_nucleus_bad_p_rejected(self):
        with pytest.raises(ValueError):
            nucleus_filter(np.array([1.0]), 0.0)

    def test_sample_token_respects_nucleus(self):
        rng = np.random.default_rng(0)
        logits = np.array([10.0, 0.0, 0.0, 0.0])
        tokens = {sample_token(logits, 1.0, 0.5, rng) for _ in range(20)}
        assert tokens == {0}

    @given(st.lists(st.floats(min_value=-5, max_value=5), min_size=2, max_size=16))
    def test_prop_softmax_is_distribution(self, logits):
        probs = softmax(np.array(logits))
        assert probs.sum() == pytest.approx(1.0)
        assert (probs >= 0).all()


class TestGenerationConfig:
    def test_defaults_match_paper(self):
        config = GenerationConfig()
        assert config.max_tokens == 300
        assert config.top_p == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"temperature": 0.0},
            {"temperature": -1.0},
            {"n": 0},
            {"max_tokens": 0},
            {"top_p": 0.0},
            {"top_p": 1.5},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GenerationConfig(**kwargs)


class TestNGram:
    def test_distribution_sums_to_one(self, ngram, tokenizer):
        context = tokenizer.encode("module counter")
        dist = ngram.next_distribution(context)
        assert dist.sum() == pytest.approx(1.0)
        assert len(dist) == tokenizer.vocab_size

    def test_training_reduces_perplexity(self, tokenizer):
        untrained = NGramModel(tokenizer=tokenizer, order=3)
        untrained._counts = {n: {} for n in range(1, 4)}
        trained = NGramModel(tokenizer=tokenizer, order=3).fit(TRAIN_TEXT)
        holdout = "module counter(input clk, input rst, output reg [3:0] q);"
        assert trained.perplexity(holdout) < untrained.perplexity(holdout)

    def test_in_domain_beats_out_of_domain(self, ngram):
        in_domain = "always @(posedge clk) begin"
        out_domain = "the quick brown fox jumps over"
        assert ngram.perplexity(in_domain) < ngram.perplexity(out_domain)

    def test_generate_n_completions(self, ngram):
        out = ngram.generate(
            "module ", GenerationConfig(temperature=0.5, n=3, max_tokens=10)
        )
        assert len(out) == 3
        assert all(c.tokens == 10 for c in out)

    def test_generate_deterministic(self, ngram):
        config = GenerationConfig(temperature=0.5, n=2, max_tokens=8)
        a = ngram.generate("module ", config)
        b = ngram.generate("module ", config)
        assert [c.text for c in a] == [c.text for c in b]

    def test_low_temperature_concentrates(self, ngram):
        cold = ngram.generate(
            "module counter(input clk",
            GenerationConfig(temperature=0.05, n=4, max_tokens=6),
        )
        texts = {c.text for c in cold}
        assert len(texts) <= 2  # near-greedy

    def test_log_prob_negative(self, ngram, tokenizer):
        tokens = tokenizer.encode("module counter")
        assert ngram.log_prob(tokens) < 0

    def test_trained_tokens_recorded(self, ngram):
        assert ngram.trained_tokens > 100


class TestTransformer:
    @pytest.fixture(scope="class")
    def model(self, tokenizer):
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, d_model=32, n_heads=4,
            n_layers=2, context=48,
        )
        return TransformerLM(tokenizer, config, seed=7)

    def test_parameter_count_positive(self, model):
        assert model.parameter_count > 10_000

    def test_logits_shape(self, model, tokenizer):
        tokens = tokenizer.encode("module counter(")
        logits = model.logits(tokens)
        assert logits.shape == (len(tokens), tokenizer.vocab_size)

    def test_vocab_mismatch_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            TransformerLM(
                tokenizer,
                TransformerConfig(vocab_size=10, d_model=8, n_heads=2),
            )

    def test_gradients_match_numerical(self, model, tokenizer):
        tokens = tokenizer.encode(TRAIN_TEXT)[:16]
        loss, grads = model.loss_and_grads(tokens)
        eps = 1e-5
        for key in ("h0.qkv_w", "wte"):
            param = model.params[key]
            idx = tuple(np.unravel_index(13 % param.size, param.shape))
            orig = param[idx]
            param[idx] = orig + eps
            up, _ = model.loss_and_grads(tokens)
            param[idx] = orig - eps
            down, _ = model.loss_and_grads(tokens)
            param[idx] = orig
            numerical = (up - down) / (2 * eps)
            relative = abs(numerical - grads[key][idx]) / max(
                1e-8, abs(numerical) + abs(grads[key][idx])
            )
            assert relative < 1e-4, key

    def test_training_reduces_loss(self, tokenizer):
        config = TransformerConfig(
            vocab_size=tokenizer.vocab_size, d_model=32, n_heads=4,
            n_layers=1, context=48,
        )
        model = TransformerLM(tokenizer, config, seed=3)
        losses = model.fit(TRAIN_TEXT, steps=25, lr=3e-3)
        assert losses[-1] < losses[0]

    def test_too_short_sequence_rejected(self, model):
        with pytest.raises(ValueError):
            model.loss_and_grads([1])

    def test_generate_interface(self, model):
        out = model.generate(
            "module ", GenerationConfig(temperature=1.0, n=2, max_tokens=5)
        )
        assert len(out) == 2
        assert all(c.tokens == 5 for c in out)

    def test_context_clipping(self, model, tokenizer):
        long_tokens = tokenizer.encode(TRAIN_TEXT)
        logits = model.logits(long_tokens)
        assert logits.shape[0] <= model.config.context
