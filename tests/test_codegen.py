"""The netlist→closure compiler vs the tree-walking interpreter.

The compiled engine's contract is *observational equivalence*: for any
design, running with ``compile_sim=True`` must produce byte-identical
``$display`` output, identical finish state/time, identical error
stages/lines/messages, and identical verdicts.  These tests enforce the
contract differentially over the reference designs, their curated wrong
variants, and seeded mutation perturbations, then pin down the engine's
own mechanics (two-state proof, per-process fallback, plan cache,
profiler attribution).
"""

from __future__ import annotations

import random

import pytest

from repro.eval.pipeline import Evaluator
from repro.eval.store import CompileSimCache, VerdictStore
from repro.models import mutations
from repro.obs import REGISTRY
from repro.obs.profile import SimProfiler, profile_frame
from repro.problems import ALL_PROBLEMS, PromptLevel
from repro.verilog import CompiledEngine, prove_two_state, run_simulation
from repro.verilog.compile import compile_design


def run_both(source: str, top: str | None = None, max_time: int = 1_000_000,
             max_steps: int = 2_000_000):
    """(interpreted, compiled) observable outcomes for one source."""

    def observe(compile_sim: bool):
        report, sim = run_simulation(
            source, top=top, max_time=max_time, max_steps=max_steps,
            compile_sim=compile_sim,
        )
        return report, sim, (
            report.ok, report.stage, report.line, tuple(report.errors),
            None if sim is None
            else (sim.finished, sim.time, tuple(sim.output)),
        )

    return observe(False), observe(True)


def assert_parity(source: str, top: str | None = None, **kwargs):
    (_, _, interpreted), (report, _, compiled) = run_both(
        source, top=top, **kwargs
    )
    assert interpreted == compiled
    return report


# ----------------------------------------------------------------------
# Differential property test (the tentpole's acceptance contract)
# ----------------------------------------------------------------------
class TestReferenceParity:
    @pytest.mark.parametrize(
        "problem", ALL_PROBLEMS, ids=[f"p{p.number:02d}" for p in ALL_PROBLEMS]
    )
    def test_canonical_bench_parity(self, problem):
        source = problem.bench_source(problem.canonical_body, PromptLevel.LOW)
        report = assert_parity(source, top="tb")
        # every reference design compiles fully: no interpreter fallback
        plan = report.sim_engine
        assert plan is not None
        assert plan["fallbacks"] == []
        assert plan["compiled"] == plan["processes"] > 0
        assert plan["two_state"] is True

    @pytest.mark.parametrize(
        "problem", ALL_PROBLEMS, ids=[f"p{p.number:02d}" for p in ALL_PROBLEMS]
    )
    def test_wrong_variant_parity(self, problem):
        for variant in problem.wrong_variants:
            assert_parity(
                problem.bench_source(variant.body, PromptLevel.LOW), top="tb"
            )

    def test_mutation_parity(self):
        """Seeded perturbations: broken syntax, x-states, runtime crashes.

        Mutated completions exercise the paths a clean reference never
        reaches — parse/elaborate rejections, x/z propagation through
        the two-state guards, simulations that die mid-bench.
        """
        rng = random.Random(0xC0DE6E)
        for problem in ALL_PROBLEMS:
            bodies = [problem.canonical_body]
            bodies.append(mutations.broken_completion(bodies[0], rng))
            bodies.append(mutations.cosmetic_variant(bodies[0], rng))
            for body in bodies:
                assert_parity(
                    problem.bench_source(body, PromptLevel.LOW), top="tb"
                )

    def test_evaluator_verdict_parity(self):
        """Full-pipeline differential: CompletionEvaluation equality.

        The frozen dataclass compares stage, error_line, compile_errors
        and findings too, so stage/line failure fields are covered, not
        just the pass booleans.
        """
        interpreted = Evaluator(compile_sim=False)
        compiled = Evaluator(compile_sim=True)
        for problem in ALL_PROBLEMS[:6]:
            bodies = [problem.canonical_body] + [
                variant.body for variant in problem.wrong_variants[:2]
            ]
            for body in bodies:
                assert compiled.evaluate(problem, body) == \
                    interpreted.evaluate(problem, body)


class TestRuntimeErrorParity:
    def test_always_without_timing_control(self):
        source = (
            "module tb;\n"
            "  reg a;\n"
            "  always a = ~a;\n"
            "endmodule\n"
        )
        assert_parity(source, top="tb")

    def test_runaway_zero_time_loop(self):
        source = (
            "module tb;\n"
            "  integer i;\n"
            "  initial begin\n"
            "    i = 0;\n"
            "    while (1) i = i + 1;\n"
            "  end\n"
            "endmodule\n"
        )
        (_, _, interpreted), (_, _, compiled) = run_both(source, top="tb")
        assert interpreted == compiled
        assert "runaway zero-time loop" in compiled[3][0]

    def test_step_overflow_message(self):
        source = (
            "module tb;\n"
            "  reg clk;\n"
            "  initial clk = 0;\n"
            "  always #1 clk = ~clk;\n"
            "endmodule\n"
        )
        (_, _, interpreted), (_, _, compiled) = run_both(
            source, top="tb", max_time=50, max_steps=20
        )
        assert interpreted == compiled
        assert "exceeded" in compiled[3][0]


# ----------------------------------------------------------------------
# Engine mechanics
# ----------------------------------------------------------------------
def _engine_for(source: str, top: str = "tb", **kwargs) -> CompiledEngine:
    report = compile_design(source, top=top)
    assert report.ok, report.errors
    return CompiledEngine(report.design, **kwargs)


class TestEngine:
    def test_unsupported_statement_falls_back_per_process(self):
        source = (
            "module tb;\n"
            "  reg a;\n"
            "  initial begin : blk\n"
            "    a = 0;\n"
            "    disable blk;\n"
            "    a = 1;\n"
            "  end\n"
            "  initial #1 $finish;\n"
            "endmodule\n"
        )
        report = assert_parity(source, top="tb")
        plan = report.sim_engine
        if plan is not None:  # engine built: the disable process fell back
            assert plan["compiled"] < plan["processes"]
            assert any("Disable" in f["reason"] for f in plan["fallbacks"])

    def test_two_state_veto_on_xz_literal(self):
        source = (
            "module tb;\n"
            "  reg [3:0] q;\n"
            "  initial q = 4'bxx01;\n"
            "endmodule\n"
        )
        report = compile_design(source, top="tb")
        assert prove_two_state(report.design) is False

    def test_two_state_allows_case_eq_x_checks(self):
        source = (
            "module tb;\n"
            "  reg [3:0] q;\n"
            "  initial if (q !== 4'bxxxx) $display(\"known\");\n"
            "endmodule\n"
        )
        report = compile_design(source, top="tb")
        assert prove_two_state(report.design) is True

    def test_two_state_veto_from_xprop_finding(self):
        class Finding:
            code = "x-prop"

        source = "module tb;\n  reg a;\n  initial a = 0;\nendmodule\n"
        report = compile_design(source, top="tb")
        assert prove_two_state(report.design) is True
        assert prove_two_state(report.design, findings=[Finding()]) is False

    def test_forced_two_state_still_exact_on_x_design(self):
        """The guards, not the proof, carry correctness: forcing the
        fast path onto an x-manufacturing design must still match."""
        source = (
            "module tb;\n"
            "  reg [3:0] q, r;\n"
            "  initial begin\n"
            "    q = 4'bx01z;\n"
            "    r = q + 4'd3;\n"
            "    $display(\"q=%b r=%b sum=%d\", q, r, q ^ r);\n"
            "    $finish;\n"
            "  end\n"
            "endmodule\n"
        )
        from repro.verilog import simulate

        report = compile_design(source, top="tb")
        baseline = simulate(report.design)
        fresh = compile_design(source, top="tb")
        engine = CompiledEngine(fresh.design, two_state=True)
        assert engine.two_state is True
        result = simulate(fresh.design, engine=engine)
        assert result.output == baseline.output
        assert (result.finished, result.time) == \
            (baseline.finished, baseline.time)

    def test_plan_shape(self):
        engine = _engine_for(
            "module tb;\n  reg a;\n  initial a = 0;\nendmodule\n"
        )
        plan = engine.plan()
        assert plan["version"] == 1
        assert set(plan) == {
            "version", "two_state", "processes", "compiled", "fallbacks"
        }

    def test_memory_and_wait_constructs_parity(self):
        source = (
            "module tb;\n"
            "  reg [7:0] mem [0:3];\n"
            "  reg [7:0] sum;\n"
            "  reg go;\n"
            "  integer i;\n"
            "  always @(*) sum = mem[0] + mem[1] + mem[2] + mem[3];\n"
            "  initial begin\n"
            "    go = 0;\n"
            "    for (i = 0; i < 4; i = i + 1) mem[i] = i * 7;\n"
            "    #2 go = 1;\n"
            "  end\n"
            "  initial begin\n"
            "    wait (go) $display(\"sum=%d\", sum);\n"
            "    $finish;\n"
            "  end\n"
            "endmodule\n"
        )
        assert_parity(source, top="tb")


# ----------------------------------------------------------------------
# Compiled-plan cache
# ----------------------------------------------------------------------
class TestCompileSimCache:
    def test_round_trip_and_store_attachment(self, tmp_path):
        store = VerdictStore(str(tmp_path / "store"))
        cache = store.sim_cache()
        assert isinstance(cache, CompileSimCache)
        plan = {"version": 1, "two_state": True, "processes": 3,
                "compiled": 3, "fallbacks": []}
        cache.put(0xDEADBEEF, plan)
        assert cache.get(0xDEADBEEF) == plan
        assert cache.get(0x12345678) is None
        # plans are invisible to the verdict store's own accounting
        assert len(store) == 0

    def test_pack_and_compact_shared_path(self, tmp_path):
        cache = CompileSimCache(str(tmp_path / "simcache"))
        for index in range(4):
            cache.put(index, {"version": 1, "two_state": False,
                              "processes": index, "compiled": 0,
                              "fallbacks": []})
        assert cache.pack() == 4
        assert cache.stats()["files"] == 0
        assert cache.stats()["packed"] == 4
        cache.put(0, {"version": 1, "two_state": True, "processes": 0,
                      "compiled": 0, "fallbacks": []})
        assert cache.pack() == 1
        assert cache.compact() == 1  # the shadowed line dies
        assert cache.get(0)["two_state"] is True

    def test_sim_cache_absent_until_created(self, tmp_path):
        store = VerdictStore(str(tmp_path / "store"))
        assert store.sim_cache(create=False) is None
        store.sim_cache()  # creates simcache/
        assert store.sim_cache(create=False) is not None

    def test_evaluator_populates_and_hits(self, tmp_path):
        problem = ALL_PROBLEMS[0]
        store = VerdictStore(str(tmp_path / "store"))
        before = _cache_hits()
        Evaluator(store=store).evaluate(problem, problem.canonical_body)
        cache = store.sim_cache(create=False)
        assert cache is not None and len(cache) == 1
        assert _cache_hits() == before
        # a fresh evaluator (cold in-memory cache, cleared verdicts)
        # rebuilds the engine from the cached plan and counts the hit
        store.clear()
        Evaluator(store=store).evaluate(problem, problem.canonical_body)
        assert _cache_hits() == before + 1

    def test_no_cache_without_store(self):
        evaluator = Evaluator(compile_sim=True)
        problem = ALL_PROBLEMS[0]
        before = _cache_hits()
        evaluator.evaluate(problem, problem.canonical_body)
        assert _cache_hits() == before


def _cache_hits() -> float:
    for counter in REGISTRY.snapshot()["counters"]:
        if counter["name"] == "sim_compile_cache_hits_total":
            return counter["value"]
    return 0.0


# ----------------------------------------------------------------------
# Profiler interplay
# ----------------------------------------------------------------------
class TestProfilerInterplay:
    def test_compiled_run_attributes_constructs(self):
        """--profile --compile-sim still attributes wall time (never a
        silent 0%-coverage profile)."""
        problem = ALL_PROBLEMS[14]
        source = problem.bench_source(problem.canonical_body, PromptLevel.LOW)
        profiler = SimProfiler()
        report, sim = run_simulation(
            source, top="tb", profiler=profiler, compile_sim=True
        )
        assert report.sim_engine is not None and sim is not None
        assert profiler.constructs
        assert profiler.attributed_seconds > 0.0
        assert any(row[3] > 0 for row in profiler.constructs.values())

    def test_frame_engine_tag(self):
        profiler = SimProfiler()
        profiler.add(("", "always", 3), 0.5, 0, 2)
        frame = profile_frame(profiler, problem=1, engine="compiled")
        assert frame["engine"] == "compiled"
        assert frame["evals_attributed"] is False
        frame = profile_frame(profiler, problem=1, engine="interpreter")
        assert frame["evals_attributed"] is True
        assert "engine" not in profile_frame(profiler, problem=1)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestCli:
    def test_simulate_engine_line_and_opt_out(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tb.v"
        path.write_text(
            "module tb;\n"
            "  initial begin $display(\"hi\"); $finish; end\n"
            "endmodule\n"
        )
        assert main(["simulate", str(path)]) == 0
        out = capsys.readouterr().out
        assert "hi" in out and "engine=compiled" in out
        assert main(["simulate", str(path), "--no-compile-sim"]) == 0
        out = capsys.readouterr().out
        assert "hi" in out and "engine=compiled" not in out

    def test_store_info_reports_simcache(self, tmp_path, capsys):
        from repro.cli import main

        store = VerdictStore(str(tmp_path))
        cache = store.sim_cache()
        cache.put(1, {"version": 1, "two_state": True, "processes": 1,
                      "compiled": 1, "fallbacks": []})
        assert main(["store", "info", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "simcache" in out and "1 plan(s)" in out

    def test_sweep_accepts_compile_sim_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["sweep", "--no-compile-sim"])
        assert args.compile_sim is False
        args = build_parser().parse_args(["sweep", "--compile-sim"])
        assert args.compile_sim is True
