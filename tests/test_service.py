"""Tests for the distributed eval service (repro.service server/client)
and the process-pool executor."""

import pytest

from repro.api import Session
from repro.backends import BackendError, StubBackend, available_backends, create_backend
from repro.eval import SweepConfig, SweepExecutor, SweepPlanner
from repro.problems import PromptLevel
from repro.models import GenerationConfig
from repro.service import (
    EvalService,
    ProcessPoolSweepExecutor,
    ServiceApp,
    ServiceBackend,
    in_process_transport,
    serve,
)

SMALL = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(2,),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2),
)


@pytest.fixture()
def app():
    return ServiceApp(Session(backend="zoo"))


@pytest.fixture()
def client(app):
    return ServiceBackend(transport=in_process_transport(app))


class TestServiceApp:
    def test_health(self, app):
        status, body = app.handle("GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["backend"] == "zoo"
        assert body["models"] == 11

    def test_models(self, app):
        status, body = app.handle("GET", "/models")
        assert status == 200
        assert "codegen-16b-ft" in body["models"]

    def test_capabilities_includes_identity(self, app):
        status, body = app.handle(
            "POST", "/capabilities", {"model": "j1-large-7b-ft"}
        )
        assert status == 200
        assert body["supports_n25"] is False
        assert body["max_tokens"] == 256
        assert body["base_model"] == "j1-large-7b"
        assert body["fine_tuned"] is True

    def test_generate(self, app):
        from repro.problems import get_problem

        status, body = app.handle(
            "POST",
            "/generate",
            {
                "model": "codegen-6b-ft",
                "prompt": get_problem(1).prompt(PromptLevel.LOW),
                "config": {"temperature": 0.1, "n": 3},
            },
        )
        assert status == 200
        assert len(body["completions"]) == 3
        assert all("text" in c for c in body["completions"])

    def test_sweep_route_matches_local_run(self, app):
        from repro.eval.export import config_to_dict, sweep_result_from_dict

        status, body = app.handle(
            "POST",
            "/sweep",
            {"config": config_to_dict(SMALL), "models": ["codegen-6b-ft"]},
        )
        assert status == 200
        remote = sweep_result_from_dict(body)
        local = Session(backend="zoo").run_sweep(
            SMALL, models=["codegen-6b-ft"]
        )
        # wire floats are rounded to 6 digits; compare serialized forms
        from repro.eval.export import sweep_result_to_dict

        assert body["records"] == sweep_result_to_dict(local)["records"]
        assert len(remote.sweep) == len(local.sweep)

    def test_unknown_route_404(self, app):
        status, body = app.handle("GET", "/teapot")
        assert status == 404
        assert "no route" in body["error"]

    def test_unknown_model_400(self, app):
        status, body = app.handle("POST", "/capabilities", {"model": "gpt-9"})
        assert status == 400
        assert "does not serve" in body["error"]

    def test_bad_config_400(self, app):
        status, body = app.handle(
            "POST",
            "/generate",
            {
                "model": "codegen-6b-ft",
                "prompt": "module m();",
                "config": {"temperature": -1.0},
            },
        )
        assert status == 400
        assert "temperature" in body["error"]

    def test_missing_field_400(self, app):
        status, body = app.handle("POST", "/generate", {"model": "x"})
        assert status == 400

    def test_trailing_slash_tolerated(self, app):
        status, _ = app.handle("GET", "/models/")
        assert status == 200


class TestServiceBackend:
    def test_registered_in_registry(self):
        assert "service" in available_backends()
        backend = create_backend("service", url="http://127.0.0.1:1")
        assert isinstance(backend, ServiceBackend)

    def test_models_and_capabilities(self, client):
        assert "codegen-16b-ft" in client.models()
        caps = client.capabilities("j1-large-7b-ft")
        assert caps.supports_n25 is False and caps.max_tokens == 256
        assert client.identity("codegen-16b-ft") == ("codegen-16b", True)

    def test_capabilities_cached(self, app):
        calls = []
        inner = in_process_transport(app)

        def transport(method, path, payload=None):
            calls.append(path)
            return inner(method, path, payload)

        backend = ServiceBackend(transport=transport)
        backend.capabilities("codegen-6b-ft")
        backend.identity("codegen-6b-ft")
        backend.capabilities("codegen-6b-ft")
        assert calls.count("/capabilities") == 1

    def test_generate_matches_local_backend(self, client):
        from repro.problems import get_problem

        prompt = get_problem(1).prompt(PromptLevel.LOW)
        config = GenerationConfig(temperature=0.1, n=3)
        local = create_backend("zoo").generate("codegen-6b-ft", prompt, config)
        remote = client.generate("codegen-6b-ft", prompt, config)
        assert [c.text for c in local] == [c.text for c in remote]

    def test_sweep_through_service_matches_local(self, client):
        """Acceptance: ServiceBackend sweep == local-backend sweep."""
        models = ["codegen-6b-ft", "j1-large-7b-ft"]
        local = Session(backend="zoo").run_sweep(SMALL, models=models)
        remote = Session(backend=client, workers=4).run_sweep(
            SMALL, models=models
        )
        assert remote.sweep.records == local.sweep.records
        assert remote.skipped == local.skipped
        assert remote.errors == local.errors

    def test_unknown_model_surfaces_as_backend_error(self, client):
        with pytest.raises(BackendError, match="does not serve"):
            client.generate("gpt-9", "module m();", GenerationConfig(n=1))

    def test_unreachable_server_raises_backend_error(self):
        backend = ServiceBackend(url="http://127.0.0.1:9", timeout=0.2)
        with pytest.raises(BackendError, match="cannot reach"):
            backend.models()

    def test_malformed_response_is_not_a_connection_error(self):
        """A 200 whose body is not JSON (wrong port, proxy error page)
        must report "malformed response", not "cannot reach"."""
        import threading
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        class NotJSONHandler(BaseHTTPRequestHandler):
            def do_GET(self):
                body = b"<html>totally not the eval service</html>"
                self.send_response(200)
                self.send_header("Content-Type", "text/html")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(("127.0.0.1", 0), NotJSONHandler)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            backend = ServiceBackend(
                url=f"http://127.0.0.1:{server.server_address[1]}",
                timeout=2.0,
            )
            with pytest.raises(BackendError, match="malformed response") as exc:
                backend.models()
            assert "totally not the eval service" in str(exc.value)
            assert "cannot reach" not in str(exc.value)
        finally:
            server.shutdown()
            server.server_close()

    def test_run_remote_sweep(self, client):
        result = client.run_remote_sweep(SMALL, models=["codegen-6b-ft"])
        assert len(result.sweep) == 2 * 2 * 2  # problems x temps x n
        assert result.stats["backend"] == "zoo"


class TestGenerateBatch:
    def requests(self, count=3):
        from repro.problems import get_problem

        return [
            (get_problem(n).prompt(PromptLevel.LOW),
             GenerationConfig(temperature=0.1, n=2))
            for n in (1, 2, 3)[:count]
        ]

    def test_route_matches_per_request_generate(self, app):
        requests = self.requests()
        status, body = app.handle(
            "POST",
            "/generate_batch",
            {
                "model": "codegen-6b-ft",
                "requests": [
                    {"prompt": p, "config": {"temperature": c.temperature,
                                             "n": c.n}}
                    for p, c in requests
                ],
            },
        )
        assert status == 200
        backend = create_backend("zoo")
        expected = [
            backend.generate("codegen-6b-ft", p, c) for p, c in requests
        ]
        assert [
            [c["text"] for c in batch] for batch in body["batches"]
        ] == [[c.text for c in batch] for batch in expected]

    def test_client_forwards_batch_in_one_round_trip(self, app):
        calls = []
        inner = in_process_transport(app)

        def transport(method, path, payload=None):
            calls.append(path)
            return inner(method, path, payload)

        backend = ServiceBackend(transport=transport)
        requests = self.requests()
        batches = backend.generate_batch("codegen-6b-ft", requests)
        assert calls == ["/generate_batch"]
        local = create_backend("zoo").generate_batch(
            "codegen-6b-ft", requests
        )
        assert [[c.text for c in b] for b in batches] == [
            [c.text for c in b] for b in local
        ]

    def test_single_request_skips_the_batch_route(self, app):
        calls = []
        inner = in_process_transport(app)

        def transport(method, path, payload=None):
            calls.append(path)
            return inner(method, path, payload)

        backend = ServiceBackend(transport=transport)
        backend.generate_batch("codegen-6b-ft", self.requests(count=1))
        assert calls == ["/generate"]

    def test_falls_back_per_request_when_route_missing(self, app):
        """An older server without /generate_batch degrades gracefully."""
        calls = []
        inner = in_process_transport(app)

        def transport(method, path, payload=None):
            calls.append(path)
            if path == "/generate_batch":
                raise BackendError("eval service 404 on /generate_batch")
            return inner(method, path, payload)

        backend = ServiceBackend(transport=transport)
        requests = self.requests()
        batches = backend.generate_batch("codegen-6b-ft", requests)
        assert calls == ["/generate_batch"] + ["/generate"] * 3
        local = create_backend("zoo").generate_batch(
            "codegen-6b-ft", requests
        )
        assert [[c.text for c in b] for b in batches] == [
            [c.text for c in b] for b in local
        ]

    def test_batch_length_mismatch_rejected(self, app):
        inner = in_process_transport(app)

        def transport(method, path, payload=None):
            if path == "/generate_batch":
                response = inner(method, path, payload)
                return {"batches": response["batches"][:-1]}
            return inner(method, path, payload)

        backend = ServiceBackend(transport=transport)
        with pytest.raises(BackendError, match="2 batches for 3 requests"):
            backend.generate_batch("codegen-6b-ft", self.requests())

    def test_batched_sweep_through_service_matches_serial(self, app):
        """--batch-size over the service backend: same records, fewer
        round-trips (the PR 2 silent-degradation fix)."""
        calls = []
        inner = in_process_transport(app)

        def transport(method, path, payload=None):
            calls.append(path)
            return inner(method, path, payload)

        models = ["codegen-6b-ft"]
        serial = Session(backend="zoo").run_sweep(SMALL, models=models)
        batched = Session(
            backend=ServiceBackend(transport=transport), batch_size=4
        ).run_sweep(SMALL, models=models)
        assert batched.sweep.records == serial.sweep.records
        assert calls.count("/generate_batch") > 0
        assert calls.count("/generate") == 0


class TestEvalServiceHTTP:
    def test_real_http_round_trip(self):
        session = Session(backend="zoo")
        with EvalService(session, port=0) as service:
            backend = ServiceBackend(url=service.url)
            assert backend.health()["status"] == "ok"
            local = Session(backend="zoo").run_sweep(
                SMALL, models=["codegen-6b-ft"]
            )
            remote = Session(backend=backend).run_sweep(
                SMALL, models=["codegen-6b-ft"]
            )
        assert remote.sweep.records == local.sweep.records

    def test_http_error_status(self):
        with EvalService(Session(backend="zoo"), port=0) as service:
            backend = ServiceBackend(url=service.url)
            with pytest.raises(BackendError, match="400"):
                backend.capabilities("gpt-9")

    def test_serve_helper_builds_unstarted_service(self):
        service = serve(backend="stub", workers=2, port=0)
        assert isinstance(service, EvalService)
        assert service.app.session.backend.name == "stub"

    def test_stop_is_idempotent(self):
        service = EvalService(Session(backend="stub"), port=0)
        service.start()
        service.stop()
        service.stop()


class TestProcessPoolExecutor:
    def test_parity_with_thread_executor(self):
        backend = create_backend("zoo")
        plan = SweepPlanner(backend).plan(
            SMALL, models=["codegen-6b-ft", "j1-large-7b-ft"]
        )
        serial = SweepExecutor(backend).run(plan)
        process = ProcessPoolSweepExecutor(backend, workers=2).run(plan)
        assert process.sweep.records == serial.sweep.records
        assert process.errors == serial.errors
        assert process.stats["executor"] == "process"

    def test_progress_fires_in_plan_order(self):
        backend = StubBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(1,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2, 3),
            )
        )
        seen = []
        ProcessPoolSweepExecutor(
            backend, workers=2, progress=lambda d, t, j: seen.append((d, j.problem))
        ).run(plan)
        assert seen == [(1, 1), (2, 2), (3, 3)]

    def test_unpicklable_backend_rejected_up_front(self):
        backend = StubBackend()
        backend.hook = lambda: None  # closures don't pickle
        with pytest.raises(BackendError, match="not picklable"):
            ProcessPoolSweepExecutor(backend, workers=2)

    def test_workers_validated(self):
        with pytest.raises(ValueError):
            ProcessPoolSweepExecutor(StubBackend(), workers=0)

    def test_empty_plan_short_circuits(self):
        from repro.eval import SweepPlan

        result = ProcessPoolSweepExecutor(StubBackend(), workers=2).run(
            SweepPlan()
        )
        assert len(result.sweep) == 0
        assert result.stats["jobs"] == 0


class TestSessionServiceEntrypoints:
    def test_session_executor_validation(self):
        with pytest.raises(ValueError, match="unknown executor"):
            Session(backend="stub", executor="quantum")

    def test_session_process_executor(self):
        models = ["codegen-6b-ft"]
        thread = Session(backend="zoo").run_sweep(SMALL, models=models)
        process = Session(
            backend="zoo", executor="process", workers=2
        ).run_sweep(SMALL, models=models)
        assert process.sweep.records == thread.sweep.records

    def test_session_serve_returns_service(self):
        service = Session(backend="stub").serve(port=0)
        assert isinstance(service, EvalService)
        url = service.bind()
        assert url.startswith("http://127.0.0.1:")
        service.stop()

    def test_session_plan_shards(self):
        shards = Session(backend="zoo").plan_shards(
            3, SMALL, models=["codegen-6b-ft"]
        )
        assert len(shards) == 3
        assert sum(len(s.plan.jobs) for s in shards) == 2 * 2  # problems x temps


class TestProcessPoolCacheStats:
    """Satellite regression: ProcessPoolSweepExecutor used to hardcode
    ``evaluator_cache: {}``, so store_hits from worker processes were
    invisible to the coordinator and /shard/status reported 0."""

    def test_worker_cache_stats_are_collected(self):
        backend = create_backend("stub-canonical")
        plan = SweepPlanner(backend).plan(SMALL)
        result = ProcessPoolSweepExecutor(backend, workers=2).run(plan)
        cache = result.stats["evaluator_cache"]
        assert cache, "evaluator_cache must not be the hardcoded {}"
        assert cache["misses"] > 0  # cold caches really did evaluate

    def test_warm_store_hits_surface_in_stats(self, tmp_path):
        from repro.eval import VerdictStore

        store = VerdictStore(str(tmp_path))
        backend = create_backend("stub-canonical")
        plan = SweepPlanner(backend).plan(SMALL)
        cold = ProcessPoolSweepExecutor(
            backend, workers=2, store=store
        ).run(plan)
        assert cold.stats["evaluator_cache"]["misses"] > 0
        warm = ProcessPoolSweepExecutor(
            backend, workers=2, store=store
        ).run(plan)
        assert warm.stats["evaluator_cache"]["store_hits"] > 0
        assert warm.stats["evaluator_cache"]["misses"] == 0
        assert warm.sweep.records == cold.sweep.records

    def test_coordinator_status_store_hits_for_process_fleet(self, tmp_path):
        """Acceptance: /shard/status store_hits is nonzero for a
        warm-store --executor process worker fleet."""
        from repro.service import ShardCoordinator, run_worker

        store_dir = str(tmp_path / "verdicts")
        # warm the shared store with one serial run
        Session(backend="stub-canonical", store=store_dir).run_sweep(SMALL)

        worker_session = Session(
            backend="stub-canonical",
            executor="process",
            workers=2,
            store=store_dir,
        )
        coordinator = ShardCoordinator(
            worker_session.plan_shards(2, SMALL), lease_seconds=60
        )
        run_worker(
            transport=in_process_transport(
                ServiceApp(worker_session, coordinator=coordinator)
            ),
            session=worker_session,
            max_idle_polls=3,
        )
        status = ServiceApp(
            worker_session, coordinator=coordinator
        ).handle("GET", "/shard/status")[1]
        assert status["store_hits"] > 0
        assert coordinator.result().stats["evaluator_cache"][
            "store_hits"
        ] > 0
