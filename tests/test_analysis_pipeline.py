"""The analysis gate in the eval pipeline + the corpus analyze runner."""

import pytest

from repro.eval import (
    AnalysisTarget,
    Evaluator,
    analysis_report_to_dict,
    analyze_targets,
    corpus_summary,
    evaluation_from_dict,
    evaluation_to_dict,
    render_analysis_report,
    targets_from_problems,
)
from repro.eval.export import error_from_dict, error_to_dict
from repro.eval.jobs import GenerationJob, failure_from_exception, make_job_error
from repro.problems import ALL_PROBLEMS, PromptLevel
from repro.verilog import AnalysisError

SIMPLE_WIRE = ALL_PROBLEMS[0]

#: completion for ``module simple_wire(input in, output out)`` with a
#: combinational cycle through ``loop``; the cycle settles at ``x`` in
#: 4-state simulation, so the unanalyzed pipeline fails the bench too
#: (the parity the gate promises)
LOOP_COMPLETION = """
  wire loop;
  assign out = ~loop;
  assign loop = out;
endmodule
"""

CLEAN_COMPLETION = """
  assign out = in;
endmodule
"""


class TestAnalysisGate:
    def test_comb_loop_rejected_at_analysis_stage(self):
        verdict = Evaluator().evaluate(SIMPLE_WIRE, LOOP_COMPLETION)
        assert verdict.compiled and not verdict.passed
        assert verdict.stage == "analysis"
        assert any(f.code == "comb-loop" for f in verdict.findings)
        assert verdict.compile_errors  # stringified gate findings

    def test_clean_completion_unaffected(self):
        verdict = Evaluator().evaluate(SIMPLE_WIRE, CLEAN_COMPLETION)
        assert verdict.passed and verdict.stage == ""
        assert verdict.findings == ()

    def test_analysis_off_matches_verdict_booleans(self):
        # parity invariant: the gate only flips designs simulation
        # would fail anyway (here: the sim hits its iteration limit)
        gated = Evaluator().evaluate(SIMPLE_WIRE, LOOP_COMPLETION)
        ungated = Evaluator(analysis=False, max_steps=2_000).evaluate(
            SIMPLE_WIRE, LOOP_COMPLETION
        )
        assert (gated.compiled, gated.passed) == (
            ungated.compiled, ungated.passed,
        )
        assert ungated.stage != "analysis"

    def test_strict_mode_raises_structured_error(self):
        with pytest.raises(AnalysisError) as info:
            Evaluator(strict_analysis=True).evaluate(
                SIMPLE_WIRE, LOOP_COMPLETION
            )
        assert info.value.code == "comb-loop"
        assert info.value.path
        assert info.value.line

    def test_strict_error_classifies_as_analysis_job_failure(self):
        try:
            Evaluator(strict_analysis=True).evaluate(
                SIMPLE_WIRE, LOOP_COMPLETION
            )
        except AnalysisError as exc:
            failure = failure_from_exception(exc)
        assert failure.stage == "analysis"
        assert failure.code == "comb-loop"
        assert failure.path and failure.line

    def test_job_error_carries_code_and_path(self):
        job = GenerationJob(
            model="m", base_model="m", fine_tuned=False,
            problem=SIMPLE_WIRE.number, level=PromptLevel.LOW,
            temperature=0.1, n=1, max_tokens=100,
        )
        try:
            Evaluator(strict_analysis=True).evaluate(
                SIMPLE_WIRE, LOOP_COMPLETION
            )
        except AnalysisError as exc:
            error = make_job_error(job, failure_from_exception(exc), 1)
        assert (error.stage, error.code) == ("analysis", "comb-loop")
        assert error_from_dict(error_to_dict(error)) == error


class TestEvaluationCodec:
    def test_round_trip_with_findings(self):
        verdict = Evaluator().evaluate(SIMPLE_WIRE, LOOP_COMPLETION)
        assert verdict.findings
        assert evaluation_from_dict(evaluation_to_dict(verdict)) == verdict

    def test_legacy_rows_load_without_findings(self):
        row = {"compiled": True, "passed": False, "stage": "testbench"}
        verdict = evaluation_from_dict(row)
        assert verdict.findings == ()


class TestFeedback:
    def test_analysis_stage_headline_and_findings(self):
        from repro.agentic.feedback import format_feedback

        verdict = Evaluator().evaluate(SIMPLE_WIRE, LOOP_COMPLETION)
        text = format_feedback(verdict, round_index=1)
        assert "static analysis" in text
        assert "comb-loop" in text
        assert all(line.startswith("//") for line in text.splitlines())


class TestCorpusRunner:
    def make_targets(self):
        return [
            AnalysisTarget(
                name="clean",
                source=SIMPLE_WIRE.full_source(CLEAN_COMPLETION),
                top="simple_wire",
            ),
            AnalysisTarget(
                name="loop",
                source=SIMPLE_WIRE.full_source(LOOP_COMPLETION),
                top="simple_wire",
            ),
            AnalysisTarget(name="broken", source="module m(; endmodule"),
        ]

    def test_reports_preserve_input_order(self):
        def key(reports):
            return [
                (r.name, r.compiled, r.stage, r.errors, r.findings)
                for r in reports
            ]

        serial = analyze_targets(self.make_targets(), workers=1)
        fanned = analyze_targets(self.make_targets(), workers=4)
        assert key(serial) == key(fanned)  # seconds is wall time, varies
        assert [r.name for r in serial] == ["clean", "loop", "broken"]

    def test_summary_counts(self):
        reports = analyze_targets(self.make_targets())
        summary = corpus_summary(reports)
        assert summary["targets"] == 3
        assert summary["compile_failures"] == 1
        assert summary["gated"] == 1
        assert summary["clean"] == 1
        assert summary["findings_by_code"].get("comb-loop") == 1

    def test_report_dict_and_render(self):
        reports = analyze_targets(self.make_targets())
        payload = analysis_report_to_dict(reports)
        assert [t["name"] for t in payload["targets"]] == [
            "clean", "loop", "broken",
        ]
        text = render_analysis_report(reports)
        assert "comb-loop" in text and "-- loop" in text
        assert "-- clean" not in text  # clean targets stay out of the way

    def test_problem_targets_cover_the_set(self):
        targets = targets_from_problems(ALL_PROBLEMS)
        assert len(targets) == len(ALL_PROBLEMS)
        reports = analyze_targets(targets, workers=4)
        assert all(r.compiled and not r.error_findings for r in reports)

    def test_traced_corpus_emits_one_analysis_span_per_target(self):
        from repro.obs import add_sink, remove_sink

        frames = []
        add_sink(frames.append)
        try:
            analyze_targets(self.make_targets())
        finally:
            remove_sink(frames.append)
        spans = [f for f in frames if f["type"] == "span"]
        assert [s["name"] for s in spans] == ["analysis"] * 3
        by_target = {s["tags"]["target"]: s["tags"] for s in spans}
        assert by_target["clean"]["outcome"] == "clean"
        assert by_target["loop"]["outcome"] == "findings"
        assert by_target["loop"]["findings"] >= 1
        assert by_target["broken"]["outcome"] == "parse"
