"""Regression designs: realistic RTL blocks simulated end to end.

These go beyond the 17-problem set to stress the simulator the way a
real corpus would: a synchronous FIFO with full/empty flags, a UART
transmitter with a baud divider, a Moore traffic-light controller, a
register-file + ALU datapath, a parameterized ripple-carry adder built
from instantiated full adders, and a debouncer.  Each test bench is
self-checking and must reach ``ALL TESTS PASSED``.
"""

from repro.verilog import run_simulation

PASS = "ALL TESTS PASSED"


def check(source: str, max_steps: int = 4_000_000) -> str:
    report, result = run_simulation(source, top="tb", max_steps=max_steps)
    assert report.ok, report.errors
    assert result is not None, report.errors
    assert result.finished, "test bench must reach $finish"
    assert PASS in result.text, result.text
    return result.text


def test_synchronous_fifo():
    check("""
    module fifo #(parameter WIDTH = 8, DEPTH_BITS = 3)(
      input clk, input rst,
      input push, input [WIDTH-1:0] din,
      input pop, output [WIDTH-1:0] dout,
      output full, output empty
    );
      reg [WIDTH-1:0] mem [0:(1<<DEPTH_BITS)-1];
      reg [DEPTH_BITS:0] wptr, rptr;
      assign empty = (wptr == rptr);
      assign full = (wptr[DEPTH_BITS] != rptr[DEPTH_BITS]) &&
                    (wptr[DEPTH_BITS-1:0] == rptr[DEPTH_BITS-1:0]);
      assign dout = mem[rptr[DEPTH_BITS-1:0]];
      always @(posedge clk) begin
        if (rst) begin
          wptr <= 0; rptr <= 0;
        end else begin
          if (push && !full) begin
            mem[wptr[DEPTH_BITS-1:0]] <= din;
            wptr <= wptr + 1;
          end
          if (pop && !empty) rptr <= rptr + 1;
        end
      end
    endmodule

    module tb;
      reg clk, rst, push, pop;
      reg [7:0] din;
      wire [7:0] dout;
      wire full, empty;
      integer errors, i;
      fifo dut(.clk(clk), .rst(rst), .push(push), .din(din),
               .pop(pop), .dout(dout), .full(full), .empty(empty));
      always #5 clk = ~clk;
      initial begin
        errors = 0;
        clk = 0; rst = 1; push = 0; pop = 0; din = 0;
        @(posedge clk); #1 rst = 0;
        if (empty !== 1'b1) begin $display("FAIL not empty after rst"); errors = errors + 1; end
        // fill completely
        push = 1;
        for (i = 0; i < 8; i = i + 1) begin
          din = 8'h20 + i[7:0];
          @(posedge clk); #1;
        end
        push = 0;
        if (full !== 1'b1) begin $display("FAIL not full"); errors = errors + 1; end
        // pushing while full must not corrupt
        push = 1; din = 8'hEE; @(posedge clk); #1; push = 0;
        // drain and check FIFO order
        pop = 1;
        for (i = 0; i < 8; i = i + 1) begin
          if (dout !== 8'h20 + i[7:0]) begin
            $display("FAIL pop %0d got %h", i, dout);
            errors = errors + 1;
          end
          @(posedge clk); #1;
        end
        pop = 0;
        if (empty !== 1'b1) begin $display("FAIL not empty at end"); errors = errors + 1; end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)


def test_uart_transmitter():
    check("""
    module uart_tx #(parameter DIV = 4)(
      input clk, input rst,
      input start, input [7:0] data,
      output reg tx, output busy
    );
      reg [3:0] state;      // 0 idle, 1 start, 2..9 data bits, 10 stop
      reg [7:0] shifter;
      reg [7:0] baud;
      assign busy = (state != 0);
      always @(posedge clk) begin
        if (rst) begin
          state <= 0; tx <= 1'b1; baud <= 0;
        end else if (state == 0) begin
          if (start) begin
            shifter <= data; state <= 1; tx <= 1'b0; baud <= DIV - 1;
          end
        end else begin
          if (baud != 0) baud <= baud - 1;
          else begin
            baud <= DIV - 1;
            if (state >= 1 && state <= 8) begin
              tx <= shifter[0];
              shifter <= shifter >> 1;
              state <= state + 1;
            end else if (state == 9) begin
              tx <= 1'b1;  // stop bit
              state <= 10;
            end else begin
              state <= 0;
            end
          end
        end
      end
    endmodule

    module tb;
      reg clk, rst, start;
      reg [7:0] data;
      wire tx, busy;
      reg [7:0] captured;
      integer errors, i, j;
      uart_tx #(.DIV(2)) dut(.clk(clk), .rst(rst), .start(start),
                             .data(data), .tx(tx), .busy(busy));
      always #5 clk = ~clk;
      initial begin
        errors = 0;
        clk = 0; rst = 1; start = 0; data = 0;
        @(posedge clk); #1 rst = 0;
        if (tx !== 1'b1) begin $display("FAIL idle line not high"); errors = errors + 1; end
        data = 8'hA7; start = 1;
        @(posedge clk); #1 start = 0;
        if (tx !== 1'b0) begin $display("FAIL no start bit"); errors = errors + 1; end
        if (busy !== 1'b1) begin $display("FAIL not busy"); errors = errors + 1; end
        // sample each data bit in the middle of its 2-cycle period
        for (i = 0; i < 8; i = i + 1) begin
          @(posedge clk); @(posedge clk); #1;
          captured[i] = tx;
        end
        if (captured !== 8'hA7) begin
          $display("FAIL captured %h", captured);
          errors = errors + 1;
        end
        @(posedge clk); @(posedge clk); #1;
        if (tx !== 1'b1) begin $display("FAIL no stop bit"); errors = errors + 1; end
        // wait for idle
        for (j = 0; j < 6 && busy; j = j + 1) begin @(posedge clk); #1; end
        if (busy !== 1'b0) begin $display("FAIL still busy"); errors = errors + 1; end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)


def test_traffic_light_moore_fsm():
    check("""
    module traffic(input clk, input rst, output reg [1:0] light);
      // 0 = red, 1 = green, 2 = yellow; dwell counts per state
      parameter RED = 0, GREEN = 1, YELLOW = 2;
      reg [2:0] count;
      always @(posedge clk) begin
        if (rst) begin
          light <= RED; count <= 0;
        end else begin
          count <= count + 1;
          case (light)
            RED:    if (count == 3) begin light <= GREEN; count <= 0; end
            GREEN:  if (count == 3) begin light <= YELLOW; count <= 0; end
            YELLOW: if (count == 1) begin light <= RED; count <= 0; end
            default: begin light <= RED; count <= 0; end
          endcase
        end
      end
    endmodule

    module tb;
      reg clk, rst;
      wire [1:0] light;
      integer errors, i;
      reg [1:0] seen [0:31];
      traffic dut(.clk(clk), .rst(rst), .light(light));
      always #5 clk = ~clk;
      initial begin
        errors = 0;
        clk = 0; rst = 1;
        @(posedge clk); #1 rst = 0;
        if (light !== 2'd0) begin $display("FAIL reset not red"); errors = errors + 1; end
        for (i = 0; i < 22; i = i + 1) begin
          @(posedge clk); #1;
          seen[i] = light;
        end
        // red dwells 4 ticks, then green 4, then yellow 2, then red again
        if (seen[2] !== 2'd0) begin $display("FAIL red dwell"); errors = errors + 1; end
        if (seen[4] !== 2'd1) begin $display("FAIL not green at 4: %0d", seen[4]); errors = errors + 1; end
        if (seen[8] !== 2'd2) begin $display("FAIL not yellow at 8: %0d", seen[8]); errors = errors + 1; end
        if (seen[10] !== 2'd0) begin $display("FAIL not red at 10: %0d", seen[10]); errors = errors + 1; end
        if (seen[14] !== 2'd1) begin $display("FAIL second green"); errors = errors + 1; end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)


def test_regfile_alu_datapath():
    check("""
    module regfile(input clk, input we, input [2:0] waddr, input [7:0] wdata,
                   input [2:0] ra, input [2:0] rb,
                   output [7:0] qa, output [7:0] qb);
      reg [7:0] regs [0:7];
      always @(posedge clk) if (we) regs[waddr] <= wdata;
      assign qa = regs[ra];
      assign qb = regs[rb];
    endmodule

    module alu(input [7:0] a, input [7:0] b, input [1:0] op,
               output reg [7:0] y);
      always @(*) begin
        case (op)
          2'b00: y = a + b;
          2'b01: y = a - b;
          2'b10: y = a & b;
          default: y = a ^ b;
        endcase
      end
    endmodule

    module datapath(input clk, input we, input [2:0] waddr,
                    input [7:0] wdata, input [2:0] ra, input [2:0] rb,
                    input [1:0] op, output [7:0] result);
      wire [7:0] qa, qb;
      regfile rf(.clk(clk), .we(we), .waddr(waddr), .wdata(wdata),
                 .ra(ra), .rb(rb), .qa(qa), .qb(qb));
      alu core(.a(qa), .b(qb), .op(op), .y(result));
    endmodule

    module tb;
      reg clk, we;
      reg [2:0] waddr, ra, rb;
      reg [7:0] wdata;
      reg [1:0] op;
      wire [7:0] result;
      integer errors;
      datapath dut(.clk(clk), .we(we), .waddr(waddr), .wdata(wdata),
                   .ra(ra), .rb(rb), .op(op), .result(result));
      always #5 clk = ~clk;
      initial begin
        errors = 0;
        clk = 0; we = 1;
        waddr = 3'd1; wdata = 8'd60;  @(posedge clk); #1;
        waddr = 3'd2; wdata = 8'd15;  @(posedge clk); #1;
        we = 0; ra = 3'd1; rb = 3'd2;
        op = 2'b00; #1;
        if (result !== 8'd75) begin $display("FAIL add %0d", result); errors = errors + 1; end
        op = 2'b01; #1;
        if (result !== 8'd45) begin $display("FAIL sub %0d", result); errors = errors + 1; end
        op = 2'b10; #1;
        if (result !== (8'd60 & 8'd15)) begin $display("FAIL and"); errors = errors + 1; end
        op = 2'b11; #1;
        if (result !== (8'd60 ^ 8'd15)) begin $display("FAIL xor"); errors = errors + 1; end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)


def test_structural_ripple_carry_adder():
    check("""
    module full_adder(input a, input b, input cin, output s, output cout);
      assign s = a ^ b ^ cin;
      assign cout = (a & b) | (a & cin) | (b & cin);
    endmodule

    module rca4(input [3:0] a, input [3:0] b, input cin,
                output [3:0] s, output cout);
      wire c1, c2, c3;
      full_adder fa0(.a(a[0]), .b(b[0]), .cin(cin), .s(s[0]), .cout(c1));
      full_adder fa1(.a(a[1]), .b(b[1]), .cin(c1),  .s(s[1]), .cout(c2));
      full_adder fa2(.a(a[2]), .b(b[2]), .cin(c2),  .s(s[2]), .cout(c3));
      full_adder fa3(.a(a[3]), .b(b[3]), .cin(c3),  .s(s[3]), .cout(cout));
    endmodule

    module tb;
      reg [3:0] a, b;
      reg cin;
      wire [3:0] s;
      wire cout;
      reg [4:0] expected;
      integer errors, i, j;
      rca4 dut(.a(a), .b(b), .cin(cin), .s(s), .cout(cout));
      initial begin
        errors = 0;
        // exhaustive over a, b with both carries
        for (i = 0; i < 16; i = i + 1) begin
          for (j = 0; j < 16; j = j + 1) begin
            a = i[3:0]; b = j[3:0];
            cin = 0; #1;
            expected = i[4:0] + j[4:0];
            if ({cout, s} !== expected) begin
              $display("FAIL %0d+%0d got %0d", i, j, {cout, s});
              errors = errors + 1;
            end
            cin = 1; #1;
            expected = i[4:0] + j[4:0] + 5'd1;
            if ({cout, s} !== expected) begin
              $display("FAIL %0d+%0d+1", i, j);
              errors = errors + 1;
            end
          end
        end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)


def test_debouncer():
    check("""
    module debounce #(parameter N = 3)(input clk, input rst, input noisy,
                                       output reg clean);
      reg [1:0] count;
      reg last;
      always @(posedge clk) begin
        if (rst) begin
          last <= 0; count <= 0; clean <= 0;
        end else begin
          last <= noisy;
          if (noisy != last) count <= 0;
          else if (count == N - 1) clean <= last;
          else count <= count + 1;
        end
      end
    endmodule

    module tb;
      reg clk, rst, noisy;
      wire clean;
      integer errors;
      debounce dut(.clk(clk), .rst(rst), .noisy(noisy), .clean(clean));
      always #5 clk = ~clk;
      initial begin
        errors = 0;
        clk = 0; rst = 1; noisy = 0;
        @(posedge clk); #1 rst = 0;
        repeat (6) @(posedge clk);
        #1 if (clean !== 1'b0) begin $display("FAIL initial"); errors = errors + 1; end
        // a glitch shorter than N cycles must not flip the output
        noisy = 1; @(posedge clk); #1 noisy = 0;
        repeat (4) @(posedge clk); #1;
        if (clean !== 1'b0) begin $display("FAIL glitch passed"); errors = errors + 1; end
        // a held level must propagate
        noisy = 1;
        repeat (6) @(posedge clk); #1;
        if (clean !== 1'b1) begin $display("FAIL level not passed"); errors = errors + 1; end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)


def test_gray_code_counter_properties():
    check("""
    module gray4(input clk, input rst, output [3:0] gray);
      reg [3:0] bin;
      always @(posedge clk) begin
        if (rst) bin <= 0;
        else bin <= bin + 1;
      end
      assign gray = bin ^ (bin >> 1);
    endmodule

    module tb;
      reg clk, rst;
      wire [3:0] gray;
      reg [3:0] prev;
      reg [3:0] diff;
      integer errors, i, ones;
      integer k;
      gray4 dut(.clk(clk), .rst(rst), .gray(gray));
      always #5 clk = ~clk;
      initial begin
        errors = 0;
        clk = 0; rst = 1;
        @(posedge clk); #1 rst = 0;
        prev = gray;
        // across a full wrap, consecutive codes differ in exactly 1 bit
        for (i = 0; i < 16; i = i + 1) begin
          @(posedge clk); #1;
          diff = gray ^ prev;
          ones = 0;
          for (k = 0; k < 4; k = k + 1) ones = ones + diff[k];
          if (ones !== 1) begin
            $display("FAIL hamming %0d at step %0d", ones, i);
            errors = errors + 1;
          end
          prev = gray;
        end
        if (errors == 0) $display("ALL TESTS PASSED");
        $finish;
      end
    endmodule
    """)
