"""Tests for VCD dumping, prompt engineering and sweep analysis."""

import pytest

from repro.eval import (
    Evaluator,
    PROBLEM_HINTS,
    SweepConfig,
    bootstrap_interval,
    engineered_prompt,
    has_hint,
    hint_coverage,
    hint_for,
    model_comparison,
    pass_at_k_curve,
    run_sweep,
    scenario_pass_at_k,
)
from repro.models import GenerationConfig, make_model
from repro.problems import PromptLevel, get_problem
from repro.verilog import run_simulation
from repro.verilog.vcd import VcdRecorder, _id_code
from repro.verilog.values import Vec


class TestVcdRecorder:
    def test_id_codes_unique(self):
        codes = {_id_code(i) for i in range(500)}
        assert len(codes) == 500

    def test_register_and_text(self):
        recorder = VcdRecorder()
        code = recorder.register(1, "clk", 1, Vec.from_int(0, 1))
        recorder.record(5, Vec.from_int(1, 1), code)
        text = recorder.text("tb")
        assert "$var wire 1" in text
        assert "#5" in text
        assert f"1{code}" in text

    def test_multibit_format(self):
        recorder = VcdRecorder()
        code = recorder.register(2, "bus", 4, Vec.unknown(4))
        recorder.record(1, Vec.from_int(5, 4), code)
        assert f"b0101 {code}" in recorder.text()

    def test_write_file(self, tmp_path):
        recorder = VcdRecorder()
        recorder.register(3, "x", 1, Vec.from_int(0, 1))
        path = tmp_path / "wave.vcd"
        recorder.write(str(path))
        assert "$enddefinitions" in path.read_text()

    def test_hierarchical_names_sanitized(self):
        recorder = VcdRecorder()
        recorder.register(4, "dut.q", 4, Vec.unknown(4))
        assert "dut_q" in recorder.text()


class TestVcdInSimulation:
    SOURCE = """
    module tb; reg clk; reg [3:0] q;
      initial begin
        $dumpfile("out.vcd");
        $dumpvars;
        clk = 0; q = 0;
        repeat (3) begin #5 clk = ~clk; q = q + 1; end
        $finish;
      end
    endmodule
    """

    def test_dump_recorded(self):
        report, result = run_simulation(self.SOURCE, top="tb")
        assert report.ok and result.finished
        assert result.vcd is not None
        assert result.vcd_file == "out.vcd"
        assert result.vcd.change_count >= 6  # clk + q, 3 times each

    def test_vcd_text_is_valid_shape(self):
        _, result = run_simulation(self.SOURCE, top="tb")
        text = result.vcd.text("tb")
        assert text.index("$enddefinitions") < text.index("$dumpvars")
        assert "#5" in text and "#15" in text

    def test_no_dumpvars_no_recorder(self):
        source = "module tb; initial $finish; endmodule"
        _, result = run_simulation(source, top="tb")
        assert result.vcd is None

    def test_hierarchy_signals_included(self):
        source = """
        module child(input i, output o); assign o = ~i; endmodule
        module tb; reg a; wire b;
          child c(.i(a), .o(b));
          initial begin $dumpvars; a = 0; #1 a = 1; #1 $finish; end
        endmodule
        """
        _, result = run_simulation(source, top="tb")
        assert "c_i" in result.vcd.text()


class TestPromptEngineering:
    def test_hint_marker_detection(self):
        assert has_hint("// hint: do better")
        assert not has_hint("// just a comment")

    def test_targeted_hints_for_hard_problems(self):
        assert set(PROBLEM_HINTS) == {7, 9, 12}
        coverage = hint_coverage()
        assert coverage[7] and coverage[12]
        assert not coverage[1]

    def test_engineered_prompt_appends_hint(self):
        problem = get_problem(7)
        prompt = engineered_prompt(problem, PromptLevel.HIGH)
        assert prompt.startswith(problem.prompt(PromptLevel.HIGH).rstrip("\n"))
        assert has_hint(prompt)

    def test_generic_hint_for_easy_problem(self):
        assert "step by step" in hint_for(get_problem(1))

    def test_hint_lifts_hard_problem(self):
        model = make_model("codegen-16b", fine_tuned=True)
        evaluator = Evaluator()
        problem = get_problem(7)
        config = GenerationConfig(temperature=0.1, n=40)
        plain = sum(
            evaluator.evaluate(problem, c.text).passed
            for c in model.generate(problem.prompt(PromptLevel.HIGH), config)
        )
        hinted = sum(
            evaluator.evaluate(problem, c.text).passed
            for c in model.generate(
                engineered_prompt(problem, PromptLevel.HIGH), config
            )
        )
        assert plain == 0
        assert hinted > 0

    def test_hint_does_not_break_level_detection(self):
        from repro.models import match_prompt_to_problem

        problem = get_problem(12)
        matched = match_prompt_to_problem(
            engineered_prompt(problem, PromptLevel.MEDIUM)
        )
        assert matched is not None
        assert matched[0].number == 12
        assert matched[1] == PromptLevel.MEDIUM


@pytest.fixture(scope="module")
def small_sweep():
    models = [
        make_model("codegen-16b", fine_tuned=True),
        make_model("megatron-355m", fine_tuned=True),
    ]
    config = SweepConfig(
        temperatures=(0.1,),
        completions_per_prompt=(10,),
        problem_numbers=(1, 2, 3, 4),
    )
    return run_sweep(models, config, Evaluator())


class TestAnalysis:
    def test_pass_at_k_curve_monotone(self, small_sweep):
        curve = pass_at_k_curve(
            small_sweep, "codegen-16b-ft", 1, PromptLevel.LOW, 0.1
        )
        values = [curve[k] for k in sorted(curve)]
        assert values == sorted(values)
        assert 0.0 <= values[0] <= values[-1] <= 1.0

    def test_pass_at_k_curve_empty_for_unknown(self, small_sweep):
        assert pass_at_k_curve(small_sweep, "ghost", 1, PromptLevel.LOW, 0.1) == {}

    def test_scenario_pass_at_k(self, small_sweep):
        at_1 = scenario_pass_at_k(small_sweep, "codegen-16b-ft", k=1)
        at_10 = scenario_pass_at_k(small_sweep, "codegen-16b-ft", k=10)
        assert 0.0 <= at_1 <= at_10 <= 1.0

    def test_bootstrap_interval_contains_point(self):
        interval = bootstrap_interval([True] * 30 + [False] * 10)
        assert interval.point == pytest.approx(0.75)
        assert interval.point in interval
        assert interval.low < interval.high

    def test_bootstrap_empty(self):
        interval = bootstrap_interval([])
        assert interval.point == 0.0

    def test_bootstrap_deterministic(self):
        a = bootstrap_interval([True, False] * 20, seed=5)
        b = bootstrap_interval([True, False] * 20, seed=5)
        assert (a.low, a.high) == (b.low, b.high)

    def test_model_comparison_decisive(self, small_sweep):
        win = model_comparison(
            small_sweep, "codegen-16b-ft", "megatron-355m-ft",
            resamples=400,
        )
        assert win > 0.9

    def test_model_comparison_requires_records(self, small_sweep):
        with pytest.raises(ValueError):
            model_comparison(small_sweep, "codegen-16b-ft", "ghost")
