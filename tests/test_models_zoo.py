"""Tests for calibration data, mutations, and the simulated model zoo."""

import random

import pytest

from repro.eval import Evaluator
from repro.models import (
    COMPILE_RATES,
    FUNCTIONAL_RATES,
    GenerationConfig,
    INFERENCE_SECONDS,
    MODEL_SPECS,
    MODEL_TABLE,
    SimulatedLLM,
    break_syntax,
    cosmetic_variant,
    finetune_ngram,
    finetune_transformer,
    finetune_zoo_model,
    make_model,
    match_prompt_to_problem,
    paper_model_variants,
    resolve_rates,
    temperature_factor,
)
from repro.models.calibration import PROBLEM_HARDNESS, hardness_factor
from repro.models.mutations import broken_completion
from repro.corpus import CorpusConfig, build_github_corpus
from repro.problems import (
    ALL_PROBLEMS,
    Difficulty,
    PromptLevel,
    get_problem,
    problems_by_difficulty,
)


class TestModelTable:
    def test_six_models(self):
        assert len(MODEL_TABLE) == 6

    def test_table1_architectures(self):
        spec = MODEL_SPECS["codegen-16b"]
        assert (spec.layers, spec.heads, spec.embed) == (34, 24, 256)
        spec = MODEL_SPECS["megatron-355m"]
        assert (spec.layers, spec.heads, spec.embed) == (24, 16, 64)

    def test_codex_architecture_unknown(self):
        spec = MODEL_SPECS["code-davinci-002"]
        assert spec.layers is None
        assert spec.context_length == 8000

    def test_j1_quirks(self):
        spec = MODEL_SPECS["j1-large-7b"]
        assert not spec.supports_n25
        assert spec.max_tokens == 256

    def test_codex_not_fine_tunable(self):
        assert not MODEL_SPECS["code-davinci-002"].fine_tunable
        with pytest.raises(ValueError):
            make_model("code-davinci-002", fine_tuned=True)


class TestCalibrationData:
    def test_eleven_variants_have_compile_rates(self):
        assert len(COMPILE_RATES) == 11

    def test_functional_never_reported_above_one(self):
        for rates in FUNCTIONAL_RATES.values():
            for by_level in rates.values():
                for rate in by_level.values():
                    assert 0.0 <= rate <= 1.0

    def test_ft_beats_pt_in_aggregate(self):
        # paper RQ2: every fine-tuned model outperforms its pre-trained self
        for name in ("megatron-355m", "codegen-2b", "codegen-6b",
                     "j1-large-7b", "codegen-16b"):
            pt = sum(COMPILE_RATES[(name, False)].values())
            ft = sum(COMPILE_RATES[(name, True)].values())
            assert ft > pt, name

    def test_inference_times_match_table4(self):
        assert INFERENCE_SECONDS[("codegen-16b", True)] == 1.994
        assert INFERENCE_SECONDS[("j1-large-7b", False)] == 7.146

    def test_temperature_factor_peaks_at_best(self):
        assert temperature_factor(0.1) == pytest.approx(1.0)
        assert temperature_factor(0.3) < 1.0
        assert temperature_factor(1.0) < temperature_factor(0.5)

    def test_hardness_preserves_aggregate(self):
        intermediate = [p.number for p in
                        problems_by_difficulty(Difficulty.INTERMEDIATE)]
        factors = [hardness_factor(n, intermediate) for n in intermediate]
        assert sum(factors) / len(factors) == pytest.approx(1.0)

    def test_hard_problems_zeroed(self):
        intermediate = [p.number for p in
                        problems_by_difficulty(Difficulty.INTERMEDIATE)]
        assert hardness_factor(7, intermediate) == 0.0
        assert hardness_factor(12, intermediate) == 0.0
        assert 0 < hardness_factor(9, intermediate) < 0.5

    def test_resolve_rates_coherent(self):
        intermediate = [p.number for p in
                        problems_by_difficulty(Difficulty.INTERMEDIATE)]
        point = resolve_rates(
            "codegen-16b", True, Difficulty.INTERMEDIATE, PromptLevel.MEDIUM,
            problem_number=6, difficulty_problem_numbers=intermediate,
            temperature=0.1, n=10,
        )
        assert point.p_functional <= point.p_compile <= 1.0

    def test_resolve_rates_unknown_model(self):
        with pytest.raises(KeyError):
            resolve_rates(
                "gpt-9", False, Difficulty.BASIC, PromptLevel.LOW,
                1, [1, 2, 3, 4], 0.1, 10,
            )

    def test_textbook_bonus_applies_to_ft_only(self):
        basic = [1, 2, 3, 4]
        common = dict(
            difficulty=Difficulty.BASIC, level=PromptLevel.LOW,
            problem_number=2, difficulty_problem_numbers=basic,
            temperature=0.3, n=10,
        )
        ft_plain = resolve_rates("codegen-16b", True, **common)
        ft_books = resolve_rates(
            "codegen-16b", True, textbook_corpus=True, **common
        )
        assert ft_books.p_functional > ft_plain.p_functional


class TestMutations:
    def test_cosmetic_variant_preserves_compilability(self):
        rng = random.Random(0)
        evaluator = Evaluator()
        problem = get_problem(6)
        for _ in range(10):
            text = cosmetic_variant(problem.canonical_body, rng)
            outcome = evaluator.evaluate(problem, text)
            assert outcome.compiled and outcome.passed

    def test_cosmetic_variants_form_small_set(self):
        rng = random.Random(0)
        problem = get_problem(1)
        variants = {
            cosmetic_variant(problem.canonical_body, rng) for _ in range(200)
        }
        assert len(variants) <= 16

    def test_break_syntax_always_changes_text(self):
        rng = random.Random(0)
        body = get_problem(6).canonical_body
        for _ in range(20):
            assert break_syntax(body, rng) != body

    def test_broken_completion_never_compiles(self):
        rng = random.Random(1)
        evaluator = Evaluator()
        for problem in ALL_PROBLEMS:
            for variant in problem.wrong_variants:
                text = broken_completion(variant.body, rng)
                outcome = evaluator.evaluate(problem, text)
                assert not outcome.compiled, (problem.slug, variant.name, text)


class TestPromptMatching:
    def test_matches_all_problems_and_levels(self):
        for problem in ALL_PROBLEMS:
            for level in PromptLevel:
                matched = match_prompt_to_problem(problem.prompt(level))
                assert matched is not None, (problem.slug, level)
                assert matched[0].number == problem.number
                assert matched[1] == level

    def test_module_word_in_comment_ignored(self):
        prompt = "// This module does things\nmodule truth_table(input x3, input x2, input x1, output f);\n"
        matched = match_prompt_to_problem(prompt)
        assert matched is not None
        assert matched[0].number == 12

    def test_unknown_module_unmatched(self):
        assert match_prompt_to_problem("module mystery(input a);\n") is None

    def test_no_module_header_unmatched(self):
        assert match_prompt_to_problem("just some text") is None


class TestSimulatedLLM:
    def test_names_encode_variant(self):
        assert make_model("codegen-2b").name == "codegen-2b-pt"
        assert make_model("codegen-2b", fine_tuned=True).name == "codegen-2b-ft"
        books = make_model("codegen-2b", fine_tuned=True, textbook_corpus=True)
        assert books.name == "codegen-2b-ft-books"

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_model("gpt-4")

    def test_generation_deterministic(self):
        model = make_model("codegen-6b", fine_tuned=True)
        prompt = get_problem(3).prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.3, n=6)
        first = [c.text for c in model.generate(prompt, config)]
        second = [c.text for c in model.generate(prompt, config)]
        assert first == second

    def test_seed_changes_output(self):
        prompt = get_problem(3).prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.3, n=8)
        a = [c.text for c in make_model("codegen-6b", True, seed=0).generate(prompt, config)]
        b = [c.text for c in make_model("codegen-6b", True, seed=1).generate(prompt, config)]
        assert a != b

    def test_n_completions_returned(self):
        model = make_model("codegen-16b", fine_tuned=True)
        out = model.generate(
            get_problem(1).prompt(PromptLevel.LOW),
            GenerationConfig(temperature=0.1, n=25),
        )
        assert len(out) == 25

    def test_j1_rejects_n25(self):
        model = make_model("j1-large-7b")
        with pytest.raises(ValueError):
            model.generate(
                get_problem(1).prompt(PromptLevel.LOW),
                GenerationConfig(temperature=0.1, n=25),
            )

    def test_inference_time_near_table4(self):
        model = make_model("codegen-16b", fine_tuned=True)
        out = model.generate(
            get_problem(1).prompt(PromptLevel.LOW),
            GenerationConfig(temperature=0.1, n=20),
        )
        mean_seconds = sum(c.inference_seconds for c in out) / len(out)
        assert mean_seconds == pytest.approx(1.994, rel=0.12)

    def test_good_model_mostly_passes_basic(self):
        model = make_model("codegen-6b", fine_tuned=True)
        problem = get_problem(1)
        evaluator = Evaluator()
        out = model.generate(
            problem.prompt(PromptLevel.LOW),
            GenerationConfig(temperature=0.1, n=30),
        )
        passes = sum(
            evaluator.evaluate(problem, c.text).passed for c in out
        )
        assert passes >= 24  # table rate is 1.000 at best-t

    def test_megatron_pt_never_compiles(self):
        model = make_model("megatron-355m")
        evaluator = Evaluator()
        problem = get_problem(2)
        out = model.generate(
            problem.prompt(PromptLevel.LOW),
            GenerationConfig(temperature=0.1, n=20),
        )
        assert all(
            not evaluator.evaluate(problem, c.text).compiled for c in out
        )

    def test_hard_problem_never_passes_functionally(self):
        model = make_model("codegen-16b", fine_tuned=True)
        evaluator = Evaluator()
        for number in (7, 12):
            problem = get_problem(number)
            out = model.generate(
                problem.prompt(PromptLevel.HIGH),
                GenerationConfig(temperature=0.1, n=20),
            )
            assert not any(
                evaluator.evaluate(problem, c.text).passed for c in out
            ), number

    def test_freeform_prompt_still_generates(self):
        model = make_model("codegen-16b", fine_tuned=True)
        out = model.generate(
            "// an unknown design\nmodule mystery(input a, output b);\n",
            GenerationConfig(temperature=0.5, n=3),
        )
        assert len(out) == 3
        assert all(c.text for c in out)

    def test_paper_model_variants_complete(self):
        names = {m.name for m in paper_model_variants()}
        assert len(names) == 11
        assert "code-davinci-002-pt" in names
        assert "codegen-16b-ft" in names


class TestFinetune:
    @pytest.fixture(scope="class")
    def corpus(self):
        return build_github_corpus(CorpusConfig(repos=12, seed=4))

    def test_finetune_ngram_report(self, corpus):
        model, report = finetune_ngram(
            corpus, holdout="module counter(input clk);"
        )
        assert report.corpus_files == len(corpus.corpus)
        assert report.perplexity_after < report.perplexity_before

    def test_finetune_transformer_loss_drops(self, corpus):
        model, report = finetune_transformer(corpus, steps=15)
        assert len(report.losses) == 15
        assert report.losses[-1] < report.losses[0]

    def test_finetune_zoo_flips_to_ft(self):
        model, report = finetune_zoo_model(
            "codegen-2b", CorpusConfig(repos=8)
        )
        assert model.fine_tuned
        assert not model.textbook_corpus
        assert report.corpus_files > 0

    def test_finetune_zoo_with_books(self):
        model, _ = finetune_zoo_model(
            "codegen-2b",
            CorpusConfig(repos=8, include_textbooks=True, textbook_count=2),
        )
        assert model.textbook_corpus

    def test_finetune_unknown_model(self):
        with pytest.raises(KeyError):
            finetune_zoo_model("nonexistent")
