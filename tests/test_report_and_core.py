"""Tests for report assembly and the core pipeline facade.

A single reduced-but-real sweep is shared by the whole module (session
cost ~seconds thanks to the evaluation cache).
"""

import pytest

from repro import VGenConfig, VGenPipeline, quick_evaluate
from repro.corpus import CorpusConfig
from repro.eval import (
    Evaluator,
    SweepConfig,
    fig6_completions,
    fig6_temperature,
    fig7_difficulty,
    fig7_levels,
    headline_numbers,
    per_problem_pass_counts,
    render_headline,
    render_series,
    render_table3,
    render_table4,
    run_sweep,
    table3,
    table4,
)
from repro.models import make_model, paper_model_variants
from repro.problems import Difficulty, PromptLevel


@pytest.fixture(scope="module")
def sweep():
    """Reduced sweep: three representative variants, all problems."""
    models = [
        make_model("codegen-16b", fine_tuned=True),
        make_model("codegen-16b"),
        make_model("code-davinci-002"),
    ]
    config = SweepConfig(temperatures=(0.1, 0.5), completions_per_prompt=(10,))
    return run_sweep(models, config, Evaluator())


class TestTables:
    def test_table3_keys(self, sweep):
        table = table3(sweep)
        assert ("codegen-16b", True) in table
        assert ("code-davinci-002", False) in table
        for row in table.values():
            assert set(row) == {
                Difficulty.BASIC, Difficulty.INTERMEDIATE, Difficulty.ADVANCED
            }

    def test_table3_ft_beats_pt(self, sweep):
        table = table3(sweep)
        for difficulty in Difficulty:
            assert (
                table[("codegen-16b", True)][difficulty]
                >= table[("codegen-16b", False)][difficulty]
            )

    def test_table3_rates_in_unit_interval(self, sweep):
        for row in table3(sweep).values():
            for rate in row.values():
                assert 0.0 <= rate <= 1.0

    def test_table4_structure(self, sweep):
        table = table4(sweep)
        row = table[("codegen-16b", True)]
        assert row["time"] > 0
        assert set(row[Difficulty.BASIC]) == set(PromptLevel)

    def test_table4_functional_below_compile(self, sweep):
        compile_t = table3(sweep)
        functional_t = table4(sweep)
        for key in functional_t:
            for difficulty in Difficulty:
                func_best = max(functional_t[key][difficulty].values())
                # compile rate is a per-level mean; allow small slack
                assert func_best <= compile_t[key][difficulty] + 0.15

    def test_renderings_mention_paper_reference(self, sweep):
        text3 = render_table3(table3(sweep))
        text4 = render_table4(table4(sweep))
        assert "Table III" in text3
        assert "Table IV" in text4
        assert "(" in text3  # paper reference values present

    def test_render_without_reference(self, sweep):
        text = render_table3(table3(sweep), reference=False)
        assert "(0." not in text


class TestFigures:
    def test_fig6_temperature_decreases(self, sweep):
        series = fig6_temperature(sweep)["codegen-16b-ft"]
        assert series[0.1] > series[0.5]

    def test_fig6_completions_keys(self, sweep):
        series = fig6_completions(sweep)
        assert set(series["codegen-16b-ft"]) == {10}

    def test_fig7_difficulty_monotone_for_good_model(self, sweep):
        series = fig7_difficulty(sweep)["codegen-16b-ft"]
        assert series[Difficulty.BASIC] > series[Difficulty.INTERMEDIATE]
        assert series[Difficulty.BASIC] > series[Difficulty.ADVANCED]

    def test_fig7_levels_all_present(self, sweep):
        series = fig7_levels(sweep)["codegen-16b-ft"]
        assert set(series) == set(PromptLevel)

    def test_render_series(self, sweep):
        text = render_series("Fig 6", fig6_temperature(sweep))
        assert "Fig 6" in text
        assert "codegen-16b-ft" in text


class TestHeadlinesAndFailures:
    def test_headline_fields(self, sweep):
        headline = headline_numbers(sweep)
        assert headline.best_ft_overall > headline.codex_overall * 0.8
        assert 0 <= headline.pt_functional_mean < headline.ft_functional_mean

    def test_render_headline(self, sweep):
        text = render_headline(headline_numbers(sweep))
        assert "paper" in text
        assert "CodeGen-16B FT overall" in text

    def test_per_problem_failures_match_sec6(self, sweep):
        counts = per_problem_pass_counts(sweep, "codegen-16b-ft")
        assert counts[7][0] == 0, "LFSR should never pass (Sec. VI)"
        assert counts[12][0] == 0, "truth table should never pass (Sec. VI)"
        assert counts[9][0] <= counts[6][0], "shift/rotate nearly never passes"
        assert counts[1][0] > 0, "the simple wire does pass"


class TestCorePipeline:
    def test_quick_evaluate(self):
        sweep = quick_evaluate(
            make_model("codegen-6b", fine_tuned=True),
            problem_numbers=(1, 2, 3),
            temperature=0.1,
            n=5,
        )
        assert len(sweep) == 3 * 3 * 5  # problems x levels x n

    def test_pipeline_components(self):
        pipeline = VGenPipeline(
            VGenConfig(
                corpus=CorpusConfig(repos=8),
                sweep=SweepConfig(
                    temperatures=(0.1,),
                    completions_per_prompt=(2,),
                    levels=(PromptLevel.LOW,),
                    problem_numbers=(1, 5),
                ),
            )
        )
        corpus = pipeline.build_corpus()
        assert len(corpus.corpus) > 0
        pt_models = pipeline.models(fine_tune=False)
        assert all(not m.fine_tuned for m in pt_models)
        ft_models, reports = pipeline.finetune(["codegen-2b"])
        assert ft_models[0].fine_tuned
        assert reports[0].corpus_files == len(corpus.corpus)
        sweep = pipeline.evaluate(ft_models)
        assert len(sweep) == 2 * 2  # 2 problems x n=2

    def test_full_run_reduced(self):
        pipeline = VGenPipeline(
            VGenConfig(
                corpus=CorpusConfig(repos=6),
                sweep=SweepConfig(
                    temperatures=(0.1,),
                    completions_per_prompt=(2,),
                    levels=(PromptLevel.LOW,),
                    problem_numbers=(1,),
                ),
            )
        )
        result = pipeline.run()
        assert result.table3
        assert result.table4
        assert result.headline is not None
        assert len(result.finetune_reports) == 5

    def test_variants_cover_table(self):
        assert len(paper_model_variants()) == 11
