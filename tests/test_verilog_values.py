"""Unit and property tests for four-state vectors (repro.verilog.values)."""

import pytest
from hypothesis import given, strategies as st

from repro.verilog import values
from repro.verilog.values import Vec


def vec(v, w, signed=False):
    return Vec.from_int(v, w, signed)


class TestConstruction:
    def test_from_int_masks_to_width(self):
        assert vec(0x1FF, 8).to_unsigned() == 0xFF

    def test_from_int_negative_two_complement(self):
        assert vec(-1, 8).to_unsigned() == 0xFF

    def test_signed_to_int_round_trip(self):
        assert vec(-5, 8, signed=True).to_int() == -5

    def test_unsigned_to_int(self):
        assert vec(200, 8).to_int() == 200

    def test_zero_width_rejected(self):
        with pytest.raises(ValueError):
            Vec(0, 0, 0)

    def test_unknown_has_no_int(self):
        assert Vec.unknown(4).to_int() is None

    def test_high_z_not_fully_known(self):
        assert not Vec.high_z(4).is_fully_known

    def test_from_bits_mixed(self):
        v = Vec.from_bits("10xz")
        assert v.bits() == "10xz"

    def test_from_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            Vec.from_bits("10a1")

    def test_from_bits_empty_rejected(self):
        with pytest.raises(ValueError):
            Vec.from_bits("")

    def test_bit_accessor(self):
        v = Vec.from_bits("1x0z")
        assert v.bit(3) == "1"
        assert v.bit(2) == "x"
        assert v.bit(1) == "0"
        assert v.bit(0) == "z"

    def test_bit_out_of_range_is_x(self):
        assert vec(1, 1).bit(5) == "x"

    def test_str_known(self):
        assert str(vec(5, 4)) == "4'd5"

    def test_str_unknown(self):
        assert "x" in str(Vec.unknown(2))


class TestResize:
    def test_zero_extend_unsigned(self):
        assert vec(0x80, 8).resize(16).to_unsigned() == 0x80

    def test_sign_extend_signed(self):
        assert vec(-2, 4, signed=True).resize(8).to_int() == -2

    def test_truncate(self):
        assert vec(0x1F, 8).resize(4).to_unsigned() == 0xF

    def test_x_msb_extends_x(self):
        v = Vec.from_bits("x1").resize(4)
        assert v.bits() == "xxx1"

    def test_z_msb_extends_z(self):
        v = Vec.from_bits("z1").resize(4)
        assert v.bits() == "zzz1"

    def test_same_width_noop(self):
        v = vec(3, 4)
        assert v.resize(4).to_unsigned() == 3

    def test_as_signed_flag(self):
        assert vec(0xFF, 8).as_signed().to_int() == -1


class TestTruthiness:
    def test_nonzero_truthy(self):
        assert vec(2, 4).truthy()

    def test_zero_falsy(self):
        assert not vec(0, 4).truthy()

    def test_all_x_falsy(self):
        assert not Vec.unknown(4).truthy()

    def test_one_bit_with_x_truthy(self):
        assert Vec.from_bits("1x").truthy()

    def test_definitely_zero(self):
        assert vec(0, 4).is_definitely_zero()
        assert not Vec.unknown(4).is_definitely_zero()


class TestBitwise:
    def test_and_known(self):
        assert values.bit_and(vec(0b1100, 4), vec(0b1010, 4)).to_unsigned() == 0b1000

    def test_and_zero_dominates_x(self):
        out = values.bit_and(Vec.from_bits("0x"), Vec.from_bits("xx"))
        assert out.bit(1) == "0"
        assert out.bit(0) == "x"

    def test_or_one_dominates_x(self):
        out = values.bit_or(Vec.from_bits("1x"), Vec.from_bits("xx"))
        assert out.bit(1) == "1"
        assert out.bit(0) == "x"

    def test_xor_x_poisons_bit(self):
        out = values.bit_xor(Vec.from_bits("1x"), Vec.from_bits("11"))
        assert out.bit(1) == "0"
        assert out.bit(0) == "x"

    def test_not_keeps_x(self):
        out = values.bit_not(Vec.from_bits("1x0"))
        assert out.bits() == "0x1"

    def test_xnor(self):
        out = values.bit_xnor(vec(0b1100, 4), vec(0b1010, 4))
        assert out.to_unsigned() == 0b1001

    def test_width_mismatch_extends(self):
        out = values.bit_or(vec(1, 1), vec(0b1000, 4))
        assert out.to_unsigned() == 0b1001


class TestReductions:
    def test_reduce_and_all_ones(self):
        assert values.reduce_and(vec(0xF, 4)).to_unsigned() == 1

    def test_reduce_and_with_zero_bit_is_zero_even_with_x(self):
        assert values.reduce_and(Vec.from_bits("0x")).to_unsigned() == 0

    def test_reduce_and_x_without_zero(self):
        assert values.reduce_and(Vec.from_bits("1x")).to_int() is None

    def test_reduce_or_one_bit_wins_over_x(self):
        assert values.reduce_or(Vec.from_bits("1x")).to_unsigned() == 1

    def test_reduce_or_zero(self):
        assert values.reduce_or(vec(0, 4)).to_unsigned() == 0

    def test_reduce_xor_parity(self):
        assert values.reduce_xor(vec(0b0111, 4)).to_unsigned() == 1
        assert values.reduce_xor(vec(0b0110, 4)).to_unsigned() == 0

    def test_reduce_xor_x(self):
        assert values.reduce_xor(Vec.from_bits("1x")).to_int() is None

    def test_reduce_nand_nor_xnor(self):
        assert values.reduce_nand(vec(0xF, 4)).to_unsigned() == 0
        assert values.reduce_nor(vec(0, 4)).to_unsigned() == 1
        assert values.reduce_xnor(vec(0b11, 2)).to_unsigned() == 1


class TestLogical:
    def test_and_true(self):
        assert values.logical_and(vec(3, 4), vec(1, 1)).to_unsigned() == 1

    def test_and_false_dominates_x(self):
        assert values.logical_and(vec(0, 1), Vec.unknown(1)).to_unsigned() == 0

    def test_or_true_dominates_x(self):
        assert values.logical_or(vec(1, 1), Vec.unknown(1)).to_unsigned() == 1

    def test_or_x(self):
        assert values.logical_or(vec(0, 1), Vec.unknown(1)).to_int() is None

    def test_not(self):
        assert values.logical_not(vec(0, 4)).to_unsigned() == 1
        assert values.logical_not(vec(7, 4)).to_unsigned() == 0
        assert values.logical_not(Vec.unknown(1)).to_int() is None


class TestArithmetic:
    def test_add_wraps(self):
        assert values.add(vec(0xFF, 8), vec(1, 8)).to_unsigned() == 0

    def test_add_width_extension(self):
        out = values.add(vec(0xFF, 8), vec(1, 16))
        assert out.to_unsigned() == 0x100

    def test_sub_underflow_wraps(self):
        assert values.sub(vec(0, 4), vec(1, 4)).to_unsigned() == 0xF

    def test_mul(self):
        assert values.mul(vec(7, 8), vec(6, 8)).to_unsigned() == 42

    def test_div_truncates_toward_zero_signed(self):
        out = values.div(vec(-7, 8, True), vec(2, 8, True))
        assert out.to_int() == -3

    def test_div_by_zero_is_x(self):
        assert values.div(vec(1, 4), vec(0, 4)).to_int() is None

    def test_mod_sign_follows_dividend(self):
        out = values.mod(vec(-7, 8, True), vec(2, 8, True))
        assert out.to_int() == -1

    def test_mod_by_zero_is_x(self):
        assert values.mod(vec(1, 4), vec(0, 4)).to_int() is None

    def test_power(self):
        assert values.power(vec(2, 8), vec(5, 8)).to_unsigned() == 32

    def test_x_poisons_arithmetic(self):
        assert values.add(Vec.unknown(4), vec(1, 4)).to_int() is None

    def test_negate(self):
        assert values.negate(vec(5, 8, True)).to_int() == -5

    def test_negate_x(self):
        assert values.negate(Vec.unknown(4)).to_int() is None


class TestShifts:
    def test_shift_left(self):
        assert values.shift_left(vec(1, 8), vec(3, 4)).to_unsigned() == 8

    def test_shift_left_overflow(self):
        assert values.shift_left(vec(0x80, 8), vec(1, 4)).to_unsigned() == 0

    def test_shift_left_by_width_is_zero(self):
        assert values.shift_left(vec(0xFF, 8), vec(8, 8)).to_unsigned() == 0

    def test_shift_right_logical(self):
        assert values.shift_right(vec(0x80, 8), vec(7, 4)).to_unsigned() == 1

    def test_arith_shift_right_signed_fills_sign(self):
        out = values.arith_shift_right(vec(-8, 8, True), vec(2, 4))
        assert out.to_int() == -2

    def test_arith_shift_right_unsigned_is_logical(self):
        out = values.arith_shift_right(vec(0x80, 8), vec(4, 4))
        assert out.to_unsigned() == 0x08

    def test_shift_by_x_is_x(self):
        assert values.shift_left(vec(1, 4), Vec.unknown(2)).to_int() is None

    def test_arith_shift_left_same_as_logical(self):
        a = values.arith_shift_left(vec(3, 8), vec(2, 4))
        b = values.shift_left(vec(3, 8), vec(2, 4))
        assert a.to_unsigned() == b.to_unsigned()


class TestComparisons:
    def test_eq_true(self):
        assert values.eq(vec(5, 4), vec(5, 8)).to_unsigned() == 1

    def test_eq_false(self):
        assert values.eq(vec(5, 4), vec(6, 4)).to_unsigned() == 0

    def test_eq_with_x_is_x(self):
        assert values.eq(Vec.from_bits("1x"), vec(2, 2)).to_int() is None

    def test_case_eq_matches_x_literally(self):
        a = Vec.from_bits("1x")
        assert values.case_eq(a, Vec.from_bits("1x")).to_unsigned() == 1
        assert values.case_eq(a, Vec.from_bits("11")).to_unsigned() == 0

    def test_case_neq(self):
        assert values.case_neq(Vec.from_bits("1x"), Vec.from_bits("11")).to_unsigned() == 1

    def test_relational_signed(self):
        assert values.lt(vec(-1, 4, True), vec(1, 4, True)).to_unsigned() == 1

    def test_relational_unsigned(self):
        # -1 as unsigned 4-bit is 15 > 1
        assert values.lt(vec(-1, 4), vec(1, 4)).to_unsigned() == 0

    def test_relational_x(self):
        assert values.ge(Vec.unknown(4), vec(0, 4)).to_int() is None

    def test_le_gt(self):
        assert values.le(vec(3, 4), vec(3, 4)).to_unsigned() == 1
        assert values.gt(vec(4, 4), vec(3, 4)).to_unsigned() == 1


class TestConcatSelect:
    def test_concat_order(self):
        out = values.concat([vec(0b10, 2), vec(0b01, 2)])
        assert out.to_unsigned() == 0b1001

    def test_concat_empty_rejected(self):
        with pytest.raises(ValueError):
            values.concat([])

    def test_replicate(self):
        assert values.replicate(3, vec(0b10, 2)).to_unsigned() == 0b101010

    def test_replicate_bad_count(self):
        with pytest.raises(ValueError):
            values.replicate(0, vec(1, 1))

    def test_select_bit(self):
        assert values.select_bit(vec(0b100, 3), 2).to_unsigned() == 1
        assert values.select_bit(vec(0b100, 3), 0).to_unsigned() == 0

    def test_select_bit_out_of_range_x(self):
        assert values.select_bit(vec(1, 2), 5).to_int() is None
        assert values.select_bit(vec(1, 2), None).to_int() is None

    def test_select_part(self):
        assert values.select_part(vec(0xAB, 8), 7, 4).to_unsigned() == 0xA

    def test_select_part_swapped_bounds(self):
        assert values.select_part(vec(0xAB, 8), 4, 7).to_unsigned() == 0xA

    def test_select_part_out_of_range_bits_x(self):
        out = values.select_part(vec(0xF, 4), 5, 2)
        assert out.bit(0) == "1"  # bit 2 in range
        assert out.bit(3) == "x"  # bit 5 out of range

    def test_insert_part(self):
        out = values.insert_part(vec(0x00, 8), 7, 4, vec(0xA, 4))
        assert out.to_unsigned() == 0xA0

    def test_insert_part_single_bit(self):
        out = values.insert_part(vec(0, 4), 2, 2, vec(1, 1))
        assert out.to_unsigned() == 4


class TestEdgeKind:
    def test_posedge_zero_to_one(self):
        assert values.edge_kind(vec(0, 1), vec(1, 1)) == "posedge"

    def test_negedge_one_to_zero(self):
        assert values.edge_kind(vec(1, 1), vec(0, 1)) == "negedge"

    def test_zero_to_x_is_posedge(self):
        assert values.edge_kind(vec(0, 1), Vec.unknown(1)) == "posedge"

    def test_x_to_one_is_posedge(self):
        assert values.edge_kind(Vec.unknown(1), vec(1, 1)) == "posedge"

    def test_one_to_x_is_negedge(self):
        assert values.edge_kind(vec(1, 1), Vec.unknown(1)) == "negedge"

    def test_x_to_z_is_no_edge(self):
        assert values.edge_kind(Vec.unknown(1), Vec.high_z(1)) is None

    def test_no_change_no_edge(self):
        assert values.edge_kind(vec(1, 1), vec(1, 1)) is None

    def test_multibit_uses_lsb(self):
        assert values.edge_kind(vec(0b10, 2), vec(0b01, 2)) == "posedge"


# ----------------------------------------------------------------------
# Property-based tests: 4-state ops agree with Python ints on known values
# ----------------------------------------------------------------------
small_ints = st.integers(min_value=0, max_value=0xFFFF)
widths = st.integers(min_value=1, max_value=24)


@given(a=small_ints, b=small_ints, w=widths)
def test_prop_add_matches_python(a, b, w):
    mask = (1 << w) - 1
    out = values.add(vec(a, w), vec(b, w))
    assert out.to_unsigned() == (a + b) & mask


@given(a=small_ints, b=small_ints, w=widths)
def test_prop_bitwise_matches_python(a, b, w):
    mask = (1 << w) - 1
    assert values.bit_and(vec(a, w), vec(b, w)).to_unsigned() == (a & b) & mask
    assert values.bit_or(vec(a, w), vec(b, w)).to_unsigned() == (a | b) & mask
    assert values.bit_xor(vec(a, w), vec(b, w)).to_unsigned() == (a ^ b) & mask


@given(a=small_ints, w=widths)
def test_prop_double_not_is_identity(a, w):
    v = vec(a, w)
    assert values.bit_not(values.bit_not(v)).to_unsigned() == v.to_unsigned()


@given(a=small_ints, b=small_ints, w=widths)
def test_prop_comparison_consistency(a, b, w):
    mask = (1 << w) - 1
    am, bm = a & mask, b & mask
    assert values.eq(vec(a, w), vec(b, w)).to_unsigned() == int(am == bm)
    assert values.lt(vec(a, w), vec(b, w)).to_unsigned() == int(am < bm)


@given(a=st.integers(min_value=-(1 << 15), max_value=(1 << 15) - 1))
def test_prop_signed_round_trip(a):
    assert vec(a, 16, signed=True).to_int() == a


@given(a=small_ints, w=widths, extra=st.integers(min_value=1, max_value=16))
def test_prop_resize_preserves_value_unsigned(a, w, extra):
    v = vec(a, w)
    assert v.resize(w + extra).to_unsigned() == v.to_unsigned()


@given(bits=st.text(alphabet="01xz", min_size=1, max_size=24))
def test_prop_from_bits_round_trip(bits):
    assert Vec.from_bits(bits).bits() == bits


@given(a=small_ints, w=widths)
def test_prop_concat_select_inverse(a, w):
    v = vec(a, w)
    hi = values.select_part(v, w - 1, w // 2)
    lo = values.select_part(v, w // 2 - 1, 0) if w > 1 else None
    if lo is None:
        return
    assert values.concat([hi, lo]).to_unsigned() == v.to_unsigned()


@given(a=small_ints, w=widths, amount=st.integers(min_value=0, max_value=30))
def test_prop_shift_matches_python(a, w, amount):
    mask = (1 << w) - 1
    out = values.shift_left(vec(a, w), vec(amount, 8))
    assert out.to_unsigned() == ((a & mask) << amount) & mask
    out = values.shift_right(vec(a, w), vec(amount, 8))
    assert out.to_unsigned() == (a & mask) >> amount
