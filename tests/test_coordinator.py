"""Tests for the shard coordinator (repro.service.coordinator): leases,
expiry/re-serve, streaming merge parity, worker loop, HTTP smoke."""

import threading

import pytest

from repro.api import Session
from repro.backends import BackendError, StubBackend
from repro.eval import SweepConfig, SweepExecutor, SweepPlanner
from repro.eval.export import sweep_result_to_dict
from repro.problems import PromptLevel
from repro.service import (
    ServiceApp,
    ServiceUnreachableError,
    ShardCoordinator,
    ShardPlanner,
    in_process_transport,
    run_worker,
)

CONFIG = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(2, 25),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2, 6),
)
MODELS = ["codegen-6b-ft", "j1-large-7b-ft"]


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_split(num_shards, config=CONFIG, models=MODELS, backend="zoo"):
    session = Session(backend=backend)
    plan = session.plan(config, models=models)
    return plan, ShardPlanner(num_shards).split(plan)


def run_shard(shard, backend="zoo"):
    return SweepExecutor(Session(backend=backend).backend).run(shard.plan)


class TestCoordinatorUnit:
    def test_requires_complete_shard_set(self):
        _, shards = make_split(3)
        with pytest.raises(ValueError, match="complete shard set"):
            ShardCoordinator(shards[:2])
        with pytest.raises(ValueError, match="empty"):
            ShardCoordinator([])

    def test_duplicate_shard_indices_rejected(self):
        _, shards = make_split(2)
        with pytest.raises(ValueError, match="complete shard set"):
            ShardCoordinator([shards[0], shards[0], shards[1]])

    def test_lease_seconds_validated(self):
        _, shards = make_split(1)
        with pytest.raises(ValueError, match="lease_seconds"):
            ShardCoordinator(shards, lease_seconds=0)

    def test_leases_each_shard_once_then_waits(self):
        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        first = coordinator.next_shard("w1")
        second = coordinator.next_shard("w2")
        assert {first["shard_index"], second["shard_index"]} == {0, 1}
        assert first["lease_id"] != second["lease_id"]
        third = coordinator.next_shard("w3")
        assert third["shard"] is None
        assert third["done"] is False
        assert third["retry_after"] > 0

    def test_submit_merges_and_reports_done(self):
        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        for _ in range(2):
            lease = coordinator.next_shard("w")
            result = run_shard(shards[lease["shard_index"]])
            ack = coordinator.submit_result(
                lease["lease_id"], sweep_result_to_dict(result)
            )
            assert ack["accepted"] is True
        assert coordinator.done
        assert coordinator.next_shard("w")["done"] is True

    def test_unknown_lease_rejected(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards)
        with pytest.raises(ValueError, match="unknown lease"):
            coordinator.submit_result("lease-999-s0", {"records": []})

    def test_mismatched_result_rejected_and_shard_stays_leased(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        lease = coordinator.next_shard("w")
        result = run_shard(shards[0])
        result.sweep.records.pop()
        with pytest.raises(ValueError, match="does not match"):
            coordinator.submit_result(
                lease["lease_id"], sweep_result_to_dict(result)
            )
        status = coordinator.status()
        assert status["leased"] == 1 and status["done"] == 0

    def test_expired_lease_is_reserved_and_late_submit_ignored(self):
        clock = FakeClock()
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=30, clock=clock)
        stale = coordinator.next_shard("slow-worker")
        clock.advance(31)
        fresh = coordinator.next_shard("fast-worker")
        assert fresh["shard_index"] == stale["shard_index"] == 0
        assert fresh["lease_id"] != stale["lease_id"]
        assert coordinator.status()["leases_reclaimed"] == 1

        result = sweep_result_to_dict(run_shard(shards[0]))
        assert coordinator.submit_result(fresh["lease_id"], result)["accepted"]
        # the slow worker finally reports in: acknowledged, not re-merged
        late = coordinator.submit_result(stale["lease_id"], result)
        assert late["accepted"] is False and late["duplicate"] is True
        assert coordinator.done

    def test_status_reports_progress_and_leases(self):
        clock = FakeClock()
        _, shards = make_split(3)
        coordinator = ShardCoordinator(shards, lease_seconds=60, clock=clock)
        lease = coordinator.next_shard("w1")
        coordinator.submit_result(
            lease["lease_id"],
            sweep_result_to_dict(run_shard(shards[lease["shard_index"]])),
        )
        coordinator.next_shard("w2")
        status = coordinator.status()
        assert status["num_shards"] == 3
        assert (status["done"], status["leased"], status["pending"]) == (1, 1, 1)
        assert status["complete"] is False
        assert status["records_merged"] > 0
        assert status["leases"][0]["worker_id"] == "w2"
        assert status["leases"][0]["expires_in"] == pytest.approx(60)

    def test_result_requires_completion(self):
        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards)
        with pytest.raises(ValueError, match="incomplete"):
            coordinator.result()

    def test_checkpoint_round_trip(self):
        clock = FakeClock()
        _, shards = make_split(3)
        coordinator = ShardCoordinator(shards, lease_seconds=60, clock=clock)
        lease = coordinator.next_shard("w")
        index = lease["shard_index"]
        coordinator.submit_result(
            lease["lease_id"], sweep_result_to_dict(run_shard(shards[index]))
        )
        coordinator.next_shard("vanishing-worker")  # in flight at "crash"

        restored = ShardCoordinator.from_state(
            coordinator.state_to_dict(), clock=clock
        )
        status = restored.status()
        # the completed shard survives; the in-flight lease does not
        assert status["done"] == 1 and status["pending"] == 2
        while True:
            lease = restored.next_shard("w2")
            if lease["shard"] is None:
                break
            restored.submit_result(
                lease["lease_id"],
                sweep_result_to_dict(run_shard(shards[lease["shard_index"]])),
            )
        assert restored.done

    def test_checkpoint_restores_out_of_order_completed_keys(self):
        # a checkpoint re-serialized with sort_keys (or hand-edited) may
        # iterate its completed dict out of index order; restore must
        # not strand on an already-leased lower index
        _, shards = make_split(3)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        while not coordinator.done:
            lease = coordinator.next_shard("w")
            coordinator.submit_result(
                lease["lease_id"],
                sweep_result_to_dict(run_shard(shards[lease["shard_index"]])),
            )
        state = coordinator.state_to_dict()
        state["completed"] = dict(
            sorted(state["completed"].items(), reverse=True)
        )
        restored = ShardCoordinator.from_state(state)
        assert restored.done
        assert (
            restored.result().sweep.records
            == coordinator.result().sweep.records
        )


class TestStreamingMergeParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 5])
    def test_single_worker_parity(self, num_shards):
        plan, shards = make_split(num_shards)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        summary = run_worker(
            transport=in_process_transport(
                ServiceApp(Session(backend="zoo"), coordinator=coordinator)
            ),
            session=Session(backend="zoo"),
            max_idle_polls=3,
        )
        assert summary["shards"] == num_shards
        merged = coordinator.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped
        assert merged.errors == serial.errors
        assert merged.stats["executor"] == "coordinated"
        assert merged.stats["shards"] == num_shards

    def test_concurrent_workers_parity(self):
        """Acceptance: N pull-based workers, streamed merge == serial."""
        plan, shards = make_split(4)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        app = ServiceApp(Session(backend="zoo"), coordinator=coordinator)
        summaries = []

        def worker(name):
            summaries.append(
                run_worker(
                    transport=in_process_transport(app),
                    session=Session(backend="zoo"),
                    worker_id=name,
                    max_idle_polls=50,
                    poll_seconds=0.01,
                )
            )

        threads = [
            threading.Thread(target=worker, args=(f"w{i}",)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(s["shards"] for s in summaries) == 4
        merged = coordinator.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped

    def test_lost_worker_is_reserved_to_another(self):
        """Acceptance: an injected worker failure re-leases the shard."""
        clock = FakeClock()
        plan, shards = make_split(3)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)
        coordinator = ShardCoordinator(shards, lease_seconds=30, clock=clock)
        # the doomed worker leases a shard and dies without submitting
        doomed = coordinator.next_shard("doomed")
        assert doomed["shard"] is not None
        clock.advance(31)

        summary = run_worker(
            transport=in_process_transport(
                ServiceApp(Session(backend="zoo"), coordinator=coordinator)
            ),
            session=Session(backend="zoo"),
            worker_id="survivor",
            max_idle_polls=3,
        )
        assert summary["shards"] == 3  # including the re-served one
        merged = coordinator.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.stats["leases_reclaimed"] == 1

    def test_errors_stream_through_the_merge(self):
        class Flaky(StubBackend):
            def generate(self, model, prompt, config):
                from repro.models import match_prompt_to_problem

                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise RuntimeError("boom")
                return super().generate(model, prompt, config)

        config = SweepConfig(
            temperatures=(0.1, 0.3),
            completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2, 3),
        )
        plan = SweepPlanner(Flaky()).plan(config)
        serial = SweepExecutor(Flaky()).run(plan)
        assert serial.errors
        coordinator = ShardCoordinator(ShardPlanner(2).split(plan))
        run_worker(
            transport=in_process_transport(
                ServiceApp(Session(backend=Flaky()), coordinator=coordinator)
            ),
            session=Session(backend=Flaky()),
            max_idle_polls=3,
        )
        merged = coordinator.result()
        assert merged.errors == serial.errors
        assert merged.sweep.records == serial.sweep.records


class TestWorkerLoop:
    def test_worker_needs_url_or_transport(self):
        with pytest.raises(ValueError, match="url or transport"):
            run_worker()

    def test_shard_routes_require_coordinator(self):
        app = ServiceApp(Session(backend="stub"))
        status, body = app.handle("POST", "/shard/next", {"worker_id": "w"})
        assert status == 400
        assert "no shard coordinator" in body["error"]
        status, _ = app.handle("GET", "/shard/status")
        assert status == 400

    def test_worker_gives_up_after_max_idle_polls(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=1000)
        coordinator.next_shard("hog")  # everything leased elsewhere
        naps = []
        summary = run_worker(
            transport=in_process_transport(
                ServiceApp(Session(backend="zoo"), coordinator=coordinator)
            ),
            session=Session(backend="zoo"),
            max_idle_polls=3,
            sleep=naps.append,
        )
        assert summary["shards"] == 0
        assert summary["idle_polls"] == 3
        assert len(naps) == 2  # no nap after the give-up poll


    def test_idle_worker_survives_vanished_coordinator(self):
        # once a worker has reached the coordinator, the server going
        # away mid-poll (done + stopped, or shut down) ends the loop
        # cleanly instead of raising
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=1000)
        coordinator.next_shard("hog")  # worker will only ever idle-poll
        inner = in_process_transport(
            ServiceApp(Session(backend="zoo"), coordinator=coordinator)
        )
        polls = []

        def flaky_transport(method, path, payload=None):
            polls.append(path)
            if len(polls) > 1:
                raise ServiceUnreachableError("cannot reach eval service")
            return inner(method, path, payload)

        summary = run_worker(
            transport=flaky_transport,
            session=Session(backend="zoo"),
            sleep=lambda _s: None,
        )
        assert summary["coordinator_gone"] is True
        assert summary["shards"] == 0

    def test_answered_errors_still_raise_mid_poll(self):
        # only connection-class failures mean "gone"; an HTTP error or
        # malformed body from something answering the port must surface
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=1000)
        coordinator.next_shard("hog")
        inner = in_process_transport(
            ServiceApp(Session(backend="zoo"), coordinator=coordinator)
        )
        polls = []

        def wrong_server(method, path, payload=None):
            polls.append(path)
            if len(polls) > 1:
                raise BackendError("eval service 500 on /shard/next: boom")
            return inner(method, path, payload)

        with pytest.raises(BackendError, match="500"):
            run_worker(
                transport=wrong_server,
                session=Session(backend="zoo"),
                sleep=lambda _s: None,
            )

    def test_never_reached_coordinator_still_raises(self):
        def dead_transport(method, path, payload=None):
            raise ServiceUnreachableError("cannot reach eval service")

        with pytest.raises(BackendError, match="cannot reach"):
            run_worker(
                transport=dead_transport, session=Session(backend="stub")
            )

    def test_submit_retries_connection_blips(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=1000)
        inner = in_process_transport(
            ServiceApp(Session(backend="zoo"), coordinator=coordinator)
        )
        blips = []

        def blippy(method, path, payload=None):
            if path == "/shard/result" and len(blips) < 2:
                blips.append(path)
                raise ServiceUnreachableError("connection reset")
            return inner(method, path, payload)

        naps = []
        summary = run_worker(
            transport=blippy,
            session=Session(backend="zoo"),
            sleep=naps.append,
        )
        # two blips retried, the executed shard was not thrown away
        assert len(blips) == 2 and len(naps) == 2
        assert summary["shards"] == 1
        assert coordinator.done


class TestCoordinatorHTTP:
    def test_session_coordinate_and_work_over_real_http(self):
        """Acceptance smoke: Session.coordinate + two HTTP workers."""
        config = SweepConfig(
            temperatures=(0.1,),
            completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2),
        )
        serial = Session(backend="zoo").run_sweep(config, models=MODELS)
        service = Session(backend="zoo").coordinate(
            2, config, models=MODELS, port=0
        )
        url = service.start()
        try:
            summaries = []

            def work():
                summaries.append(
                    Session(backend="zoo").work(
                        url=url, max_idle_polls=50, poll_seconds=0.02
                    )
                )

            threads = [threading.Thread(target=work) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            service.stop()
        assert sum(s["shards"] for s in summaries) == 2
        merged = service.coordinator.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped

    def test_work_against_unreachable_coordinator(self):
        with pytest.raises(BackendError, match="cannot reach"):
            Session(backend="stub").work(url="http://127.0.0.1:9")


class TestCheckpointPersistence:
    """Satellite: kill a coordinator mid-sweep, restore from its
    checkpoint file, and finish without re-running merged shards."""

    @staticmethod
    def _complete_one(coordinator, worker_id="w1"):
        from repro.service.sharding import shard_from_dict

        lease = coordinator.next_shard(worker_id)
        shard = shard_from_dict(lease["shard"])
        result = run_shard(shard)
        coordinator.submit_result(
            lease["lease_id"], sweep_result_to_dict(result)
        )
        return shard.shard_index

    def test_kill_and_resume_skips_completed_shards(self, tmp_path):
        from repro.service import load_checkpoint, save_checkpoint

        checkpoint = str(tmp_path / "coordinator.json")
        plan, shards = make_split(4)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)

        coordinator = ShardCoordinator(shards)
        finished = {self._complete_one(coordinator) for _ in range(2)}
        save_checkpoint(coordinator, checkpoint)
        del coordinator  # the "kill": nothing survives but the file

        restored = load_checkpoint(checkpoint)
        status = restored.status()
        assert status["done"] == 2 and status["pending"] == 2
        resumed = set()
        while not restored.done:
            resumed.add(self._complete_one(restored, "w2"))
        assert resumed == set(range(4)) - finished  # no re-runs
        merged = restored.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped

    def test_checkpoint_write_is_atomic(self, tmp_path):
        import json
        import os

        from repro.service import save_checkpoint

        checkpoint = str(tmp_path / "coordinator.json")
        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards)
        save_checkpoint(coordinator, checkpoint)
        assert json.load(open(checkpoint))["shards"]
        assert not [
            name for name in os.listdir(tmp_path) if ".tmp-" in name
        ], "temp file left behind"

    def test_leased_shards_restore_as_pending(self, tmp_path):
        from repro.service import load_checkpoint, save_checkpoint

        checkpoint = str(tmp_path / "coordinator.json")
        _, shards = make_split(3)
        coordinator = ShardCoordinator(shards)
        self._complete_one(coordinator)
        coordinator.next_shard("doomed-worker")  # leased, never submitted
        save_checkpoint(coordinator, checkpoint)

        restored = load_checkpoint(checkpoint)
        status = restored.status()
        assert status["done"] == 1
        assert status["leased"] == 0  # the in-flight lease did not survive
        assert status["pending"] == 2

    def test_unreadable_checkpoint_raises(self, tmp_path):
        from repro.service import load_checkpoint

        path = tmp_path / "broken.json"
        path.write_text("{torn")
        with pytest.raises(ValueError):
            load_checkpoint(str(path))


class TestEnrichedStatus:
    def test_per_shard_rows_and_totals(self):
        from repro.service.sharding import shard_from_dict

        _, shards = make_split(3)
        coordinator = ShardCoordinator(shards)
        status = coordinator.status()
        assert status["jobs_total"] == sum(len(s.plan.jobs) for s in shards)
        assert status["jobs_done"] == 0
        assert status["store_hits"] == 0
        assert [row["state"] for row in status["shards"]] == ["pending"] * 3
        assert [row["jobs"] for row in status["shards"]] == [
            len(s.plan.jobs) for s in shards
        ]

        lease = coordinator.next_shard("worker-9")
        shard = shard_from_dict(lease["shard"])
        result = run_shard(shard)
        payload = sweep_result_to_dict(result)
        payload["stats"]["evaluator_cache"] = {
            "hits": 1, "misses": 2, "store_hits": 5,
        }
        coordinator.submit_result(lease["lease_id"], payload)

        status = coordinator.status()
        row = status["shards"][shard.shard_index]
        assert row["state"] == "done"
        assert row["records"] == len(result.sweep)
        assert row["errors"] == len(result.errors)
        assert row["worker_id"] == "worker-9"
        assert status["jobs_done"] == len(shard.plan.jobs)
        assert status["store_hits"] == 5

    def test_store_hits_tolerates_foreign_stats(self):
        from repro.service.sharding import shard_from_dict

        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards)
        lease = coordinator.next_shard("w")
        shard = shard_from_dict(lease["shard"])
        payload = sweep_result_to_dict(run_shard(shard))
        payload["stats"]["evaluator_cache"] = "not-a-dict"
        coordinator.submit_result(lease["lease_id"], payload)
        assert coordinator.status()["store_hits"] == 0


class TestJobLeasing:
    """Tentpole: job-granular units — a straggler holds at most
    lease_jobs jobs, and expired job leases re-balance individually."""

    def test_units_cover_the_plan_in_ranges(self):
        plan, shards = make_split(3)
        coordinator = ShardCoordinator(shards, lease_jobs=4)
        status = coordinator.status()
        expected_units = -(-len(plan.jobs) // 4)
        assert coordinator.num_units == expected_units
        assert status["num_units"] == expected_units
        assert status["lease_jobs"] == 4
        assert status["jobs_total"] == len(plan.jobs)
        # every global job position exactly once, in consecutive ranges
        covered = []
        for index in sorted(coordinator._units):
            unit = coordinator._units[index]
            assert len(unit.plan.jobs) <= 4
            assert unit.plan.skipped == []  # skips never travel with jobs
            covered.extend(unit.job_indices)
        assert covered == list(range(len(plan.jobs)))
        # units serve the global plan's jobs in serial order
        assert [
            job
            for index in sorted(coordinator._units)
            for job in coordinator._units[index].plan.jobs
        ] == plan.jobs

    def test_lease_jobs_validated(self):
        _, shards = make_split(1)
        with pytest.raises(ValueError, match="lease_jobs"):
            ShardCoordinator(shards, lease_jobs=0)

    @pytest.mark.parametrize("lease_jobs", [1, 4, 100])
    def test_worker_parity_with_job_leases(self, lease_jobs):
        plan, shards = make_split(2)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)
        coordinator = ShardCoordinator(
            shards, lease_seconds=60, lease_jobs=lease_jobs
        )
        summary = run_worker(
            transport=in_process_transport(
                ServiceApp(Session(backend="zoo"), coordinator=coordinator)
            ),
            session=Session(backend="zoo"),
            max_idle_polls=3,
        )
        assert summary["shards"] == coordinator.num_units
        merged = coordinator.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped
        assert merged.errors == serial.errors
        assert merged.stats["lease_jobs"] == lease_jobs

    def test_straggler_reserves_only_its_unfinished_jobs(self):
        """Acceptance: a stalled worker's expired lease re-serves just
        its job range — the rest of the sweep never waits for it."""
        clock = FakeClock()
        plan, shards = make_split(2)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)
        coordinator = ShardCoordinator(
            shards, lease_seconds=30, clock=clock, lease_jobs=3
        )
        stalled = coordinator.next_shard("straggler")
        stalled_jobs = tuple(stalled["shard"]["job_indices"])
        assert len(stalled_jobs) <= 3

        # a healthy worker drains everything else while the straggler
        # holds its lease; only the stalled range stays un-merged
        survivor_app = ServiceApp(
            Session(backend="zoo"), coordinator=coordinator
        )
        run_worker(
            transport=in_process_transport(survivor_app),
            session=Session(backend="zoo"),
            worker_id="healthy",
            max_idle_polls=3,
        )
        status = coordinator.status()
        assert status["done"] == coordinator.num_units - 1
        assert status["pending"] + status["leased"] == 1

        # the lease expires: exactly the stalled range is re-served
        clock.advance(31)
        reserved = coordinator.next_shard("rescuer")
        assert tuple(reserved["shard"]["job_indices"]) == stalled_jobs
        assert reserved["lease_id"] != stalled["lease_id"]
        assert coordinator.status()["leases_reclaimed"] == 1
        from repro.service.sharding import shard_from_dict

        result = run_shard(shard_from_dict(reserved["shard"]))
        coordinator.submit_result(
            reserved["lease_id"], sweep_result_to_dict(result)
        )
        merged = coordinator.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped

    def test_checkpoint_round_trip_in_job_mode(self, tmp_path):
        from repro.service import load_checkpoint, save_checkpoint
        from repro.service.sharding import shard_from_dict

        checkpoint = str(tmp_path / "coordinator.json")
        plan, shards = make_split(2)
        serial = SweepExecutor(Session(backend="zoo").backend).run(plan)
        coordinator = ShardCoordinator(shards, lease_jobs=5)
        lease = coordinator.next_shard("w")
        coordinator.submit_result(
            lease["lease_id"],
            sweep_result_to_dict(run_shard(shard_from_dict(lease["shard"]))),
        )
        save_checkpoint(coordinator, checkpoint)

        restored = load_checkpoint(checkpoint)
        assert restored.lease_jobs == 5
        assert restored.status()["done"] == 1
        while not restored.done:
            lease = restored.next_shard("w2")
            restored.submit_result(
                lease["lease_id"],
                sweep_result_to_dict(
                    run_shard(shard_from_dict(lease["shard"]))
                ),
            )
        merged = restored.result()
        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped


class TestLeasePruning:
    """Satellite: _leases must not grow without bound under churn."""

    def test_lease_churn_is_bounded(self):
        from repro.service.coordinator import SUPERSEDED_LEASE_CAP

        clock = FakeClock()
        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards, lease_seconds=10, clock=clock)
        for _ in range(SUPERSEDED_LEASE_CAP * 30):
            coordinator.next_shard("churner")
            clock.advance(11)
        coordinator.next_shard("final")  # trigger one more reclaim
        assert len(coordinator._leases) <= coordinator.num_units
        assert (
            len(coordinator._superseded)
            <= SUPERSEDED_LEASE_CAP * coordinator.num_units
        )

    def test_churn_on_one_unit_never_evicts_anothers_lease(self):
        # the superseded bound is per unit: heavy expiry churn on unit 0
        # must not forget unit 1's single superseded lease, whose slow
        # worker can still submit salvageable work
        from repro.service.coordinator import SUPERSEDED_LEASE_CAP

        clock = FakeClock()
        _, shards = make_split(2)
        coordinator = ShardCoordinator(shards, lease_seconds=10, clock=clock)
        first = coordinator.next_shard("slow")  # lowest pending: unit 0
        other = coordinator.next_shard("slow-too")  # unit 1
        clock.advance(11)  # both expire into the superseded tail
        for _ in range(SUPERSEDED_LEASE_CAP * 10):
            lease = coordinator.next_shard("churner")
            assert lease["shard_index"] == first["shard_index"]
            clock.advance(11)
        ack = coordinator.submit_result(
            other["lease_id"],
            sweep_result_to_dict(run_shard(shards[other["shard_index"]])),
        )
        assert ack["accepted"] is True
        assert ack["worker_id"] == "slow-too"

    def test_done_unit_leases_are_pruned(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        lease = coordinator.next_shard("w")
        result = sweep_result_to_dict(run_shard(shards[0]))
        coordinator.submit_result(lease["lease_id"], result)
        assert coordinator._leases == {}
        assert coordinator._superseded == {}
        # a retry of the same (now pruned) lease still gets its ack
        late = coordinator.submit_result(lease["lease_id"], result)
        assert late["duplicate"] is True

    def test_well_formed_unknown_lease_for_done_unit_is_duplicate(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        lease = coordinator.next_shard("w")
        result = sweep_result_to_dict(run_shard(shards[0]))
        coordinator.submit_result(lease["lease_id"], result)
        # never-issued but well-formed id naming the DONE unit: a very
        # late worker whose lease aged out just needs the duplicate ack
        late = coordinator.submit_result("lease-999-s0", result)
        assert late["accepted"] is False and late["duplicate"] is True
        # ...but for a unit that is NOT done, it stays unknown
        with pytest.raises(ValueError, match="unknown lease"):
            ShardCoordinator(shards).submit_result("lease-999-s0", result)

    def test_superseded_lease_still_submits_before_done(self):
        # the pre-prune behaviour survives: an expired (superseded)
        # lease's late submission for a not-yet-done unit is salvaged
        clock = FakeClock()
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=30, clock=clock)
        stale = coordinator.next_shard("slow")
        clock.advance(31)
        coordinator.next_shard("fast")  # re-leased to someone else
        ack = coordinator.submit_result(
            stale["lease_id"], sweep_result_to_dict(run_shard(shards[0]))
        )
        assert ack["accepted"] is True
        assert ack["worker_id"] == "slow"
        assert coordinator.done


class TestStreamedSubmission:
    """Tentpole: NDJSON streamed upload == blocking submit, with live
    partial progress while the stream is in flight."""

    @staticmethod
    def _frames_for(shard, result):
        from repro.service.aio.events import result_to_frames

        return result_to_frames(shard.plan, result)

    def test_streamed_submit_byte_identical_to_blocking(self):
        import json

        from repro.eval.export import sweep_result_to_dict as to_dict

        plan, shards = make_split(2)
        blocking = ShardCoordinator(shards, lease_seconds=60, lease_jobs=4)
        streamed = ShardCoordinator(shards, lease_seconds=60, lease_jobs=4)
        from repro.service.sharding import shard_from_dict

        while not blocking.done:
            lease_b = blocking.next_shard("wb")
            lease_s = streamed.next_shard("ws")
            shard = shard_from_dict(lease_b["shard"])
            result = run_shard(shard)
            ack_b = blocking.submit_result(
                lease_b["lease_id"], to_dict(result)
            )
            ack_s = streamed.submit_stream(
                lease_s["lease_id"], self._frames_for(shard, result)
            )
            assert ack_s["accepted"] is ack_b["accepted"] is True
        assert json.dumps(to_dict(blocking.result())) == json.dumps(
            to_dict(streamed.result())
        )

    def test_partial_progress_visible_mid_stream(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=60, lease_jobs=2)
        lease = coordinator.next_shard("streamer")
        from repro.service.sharding import shard_from_dict

        shard = shard_from_dict(lease["shard"])
        frames = self._frames_for(shard, run_shard(shard))
        stream = coordinator.begin_stream(lease["lease_id"])
        records_fed = 0
        for frame in frames[: len(frames) // 2]:
            stream.feed(frame)
            records_fed += frame["event"] == "record"
        assert records_fed > 0
        status = coordinator.status()
        assert status["records_streaming"] == records_fed
        assert status["records_merged"] == 0  # nothing committed yet
        lease_row = status["leases"][0]
        assert lease_row["records_streamed"] == records_fed
        for frame in frames[len(frames) // 2 :]:
            stream.feed(frame)
        ack = stream.finish()
        assert ack["accepted"] is True
        status = coordinator.status()
        assert status["records_streaming"] == 0  # counters cleared
        assert status["records_merged"] > 0

    def test_bad_stream_rejected_and_unit_stays_leased(self):
        from repro.service import StreamProtocolError

        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        lease = coordinator.next_shard("w")
        from repro.service.sharding import shard_from_dict

        shard = shard_from_dict(lease["shard"])
        frames = self._frames_for(shard, run_shard(shard))
        truncated = frames[: len(frames) // 2]  # no terminal done frame
        with pytest.raises(StreamProtocolError, match="done frame"):
            coordinator.submit_stream(lease["lease_id"], truncated)
        status = coordinator.status()
        assert status["leased"] == 1 and status["done"] == 0
        assert status["records_streaming"] == 0  # aborted counters gone

    def test_stream_for_done_unit_is_duplicate(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards, lease_seconds=60)
        lease = coordinator.next_shard("w")
        from repro.service.sharding import shard_from_dict

        shard = shard_from_dict(lease["shard"])
        result = run_shard(shard)
        coordinator.submit_result(
            lease["lease_id"], sweep_result_to_dict(result)
        )
        ack = coordinator.submit_stream(
            lease["lease_id"], self._frames_for(shard, result)
        )
        assert ack["accepted"] is False and ack["duplicate"] is True

    def test_unknown_lease_rejected_for_streams(self):
        _, shards = make_split(1)
        coordinator = ShardCoordinator(shards)
        with pytest.raises(ValueError, match="unknown lease"):
            coordinator.begin_stream("lease-7-s0")
