"""Tests for the static lint checks (repro.verilog.lint)."""

import pytest

from repro.problems import ALL_PROBLEMS
from repro.verilog import lint_module, lint_source_unit, parse


def lint(source: str):
    return lint_source_unit(parse(source))


def codes(source: str) -> set[str]:
    return {w.code for w in lint(source)}


class TestMissingDefault:
    def test_flagged_in_combinational_case(self):
        source = """
        module m(input [1:0] s, output reg y);
          always @(*) case (s)
            2'd0: y = 0;
            2'd1: y = 1;
            2'd2: y = 0;
          endcase
        endmodule
        """
        assert "missing-default" in codes(source)

    def test_full_coverage_not_flagged(self):
        # all 2**N selector values enumerated: coverage is complete, a
        # default would be dead code
        source = """
        module m(input [1:0] s, output reg y);
          always @(*) case (s)
            2'd0: y = 0;
            2'd1: y = 1;
            2'd2: y = 0;
            2'd3: y = 1;
          endcase
        endmodule
        """
        assert "missing-default" not in codes(source)

    def test_full_coverage_multi_label_not_flagged(self):
        source = """
        module m(input s, output reg y);
          always @(*) case (s)
            1'b0, 1'b1: y = s;
          endcase
        endmodule
        """
        assert "missing-default" not in codes(source)

    def test_out_of_range_label_still_flagged(self):
        # a 3-bit label on a 2-bit selector never matches; the four
        # distinct labels do not actually cover the selector
        source = """
        module m(input [1:0] s, output reg y);
          always @(*) case (s)
            2'd0: y = 0;
            2'd1: y = 1;
            2'd2: y = 0;
            3'd4: y = 1;
          endcase
        endmodule
        """
        assert "missing-default" in codes(source)

    def test_not_flagged_with_default(self):
        source = """
        module m(input [1:0] s, output reg y);
          always @(*) case (s)
            2'd0: y = 0;
            default: y = 1;
          endcase
        endmodule
        """
        assert "missing-default" not in codes(source)

    def test_sequential_case_not_flagged(self):
        source = """
        module m(input clk, input [1:0] s, output reg y);
          always @(posedge clk) case (s)
            2'd0: y <= 0;
            2'd1: y <= 1;
            2'd2: y <= 0;
            2'd3: y <= 1;
          endcase
        endmodule
        """
        assert "missing-default" not in codes(source)


class TestSensitivity:
    def test_missing_signal_flagged(self):
        source = """
        module m(input a, input b, output reg y);
          always @(a) y = a & b;
        endmodule
        """
        warnings = lint(source)
        hits = [w for w in warnings if w.code == "incomplete-sens"]
        assert hits and "b" in hits[0].message

    def test_complete_list_clean(self):
        source = """
        module m(input a, input b, output reg y);
          always @(a or b) y = a & b;
        endmodule
        """
        assert "incomplete-sens" not in codes(source)

    def test_star_clean(self):
        source = """
        module m(input a, input b, output reg y);
          always @(*) y = a & b;
        endmodule
        """
        assert "incomplete-sens" not in codes(source)

    def test_clocked_block_exempt(self):
        source = """
        module m(input clk, input d, output reg q);
          always @(posedge clk) q <= d;
        endmodule
        """
        assert "incomplete-sens" not in codes(source)


class TestLatchRisk:
    def test_if_without_else_flagged(self):
        source = """
        module m(input sel, input d, output reg q);
          always @(*) if (sel) q = d;
        endmodule
        """
        warnings = [w for w in lint(source) if w.code == "latch-risk"]
        assert warnings and "q" in warnings[0].message

    def test_full_if_else_clean(self):
        source = """
        module m(input sel, input d, output reg q);
          always @(*) if (sel) q = d; else q = 0;
        endmodule
        """
        assert "latch-risk" not in codes(source)

    def test_case_without_default_is_latch_risk(self):
        source = """
        module m(input [1:0] s, output reg y);
          always @(*) case (s)
            2'd0: y = 1;
            2'd1: y = 0;
          endcase
        endmodule
        """
        assert "latch-risk" in codes(source)

    def test_default_assignment_first_clean(self):
        source = """
        module m(input sel, input d, output reg q);
          always @(*) begin
            q = 0;
            if (sel) q = d;
          end
        endmodule
        """
        assert "latch-risk" not in codes(source)

    def test_sequential_hold_not_flagged(self):
        # q <= q is how registers hold; never a latch in clocked logic
        source = """
        module m(input clk, input en, input d, output reg q);
          always @(posedge clk) if (en) q <= d;
        endmodule
        """
        assert "latch-risk" not in codes(source)


class TestAssignStyles:
    def test_nonblocking_in_comb_flagged(self):
        source = """
        module m(input a, output reg y);
          always @(*) y <= a;
        endmodule
        """
        assert "nb-in-comb" in codes(source)

    def test_blocking_in_seq_flagged(self):
        source = """
        module m(input clk, input d, output reg q);
          always @(posedge clk) q = d;
        endmodule
        """
        warnings = [w for w in lint(source) if w.code == "blocking-in-seq"]
        assert warnings and "q" in warnings[0].message

    def test_proper_styles_clean(self):
        source = """
        module m(input clk, input a, output reg q, output reg y);
          always @(posedge clk) q <= a;
          always @(*) y = a;
        endmodule
        """
        style_codes = {"nb-in-comb", "blocking-in-seq"}
        assert not (codes(source) & style_codes)


class TestSignalUsage:
    def test_unused_wire_flagged(self):
        source = """
        module m(input a, output b);
          wire ghost;
          assign b = a;
        endmodule
        """
        warnings = [w for w in lint(source) if w.code == "unused-signal"]
        assert warnings and "ghost" in warnings[0].message

    def test_undriven_output_flagged(self):
        source = """
        module m(input a, output b, output c);
          assign b = a;
        endmodule
        """
        warnings = [w for w in lint(source) if w.code == "undriven"]
        assert warnings and "c" in warnings[0].message

    def test_instance_connection_counts_as_use(self):
        source = """
        module inv(input x, output y); assign y = ~x; endmodule
        module top(input a, output b);
          wire mid;
          inv i0(.x(a), .y(mid));
          inv i1(.x(mid), .y(b));
        endmodule
        """
        assert "unused-signal" not in codes(source)
        assert "undriven" not in codes(source)

    def test_assign_lvalue_index_counts_as_read(self):
        # ``assign y[addr] = x``: addr is read by the continuous
        # assignment's target index expression
        source = """
        module m(input x, input [1:0] sel, output [3:0] y);
          wire [1:0] addr;
          assign addr = sel;
          assign y[addr] = x;
        endmodule
        """
        assert "unused-signal" not in codes(source)

    def test_assign_part_select_bounds_count_as_read(self):
        source = """
        module m(input [3:0] x, output [7:0] y);
          wire [2:0] lo;
          assign lo = 3'd2;
          assign y[lo +: 4] = x;
        endmodule
        """
        assert "unused-signal" not in codes(source)


class TestMultipleDrivers:
    def test_two_always_blocks_flagged(self):
        source = """
        module m(input clk, output reg q);
          always @(posedge clk) q <= 0;
          always @(posedge clk) q <= 1;
        endmodule
        """
        assert "multi-driven" in codes(source)

    def test_assign_plus_always_flagged(self):
        source = """
        module m(input clk, input a, output reg q);
          always @(posedge clk) q <= a;
        endmodule
        """
        clean = codes(source)
        assert "multi-driven" not in clean
        source2 = """
        module m(input clk, input a, output q);
          reg r;
          always @(posedge clk) r <= a;
          assign q = r;
        endmodule
        """
        assert "multi-driven" not in codes(source2)


class TestWidthTruncation:
    def test_wide_literal_flagged(self):
        source = """
        module m(output [3:0] q);
          assign q = 8'hFF;
        endmodule
        """
        warnings = [w for w in lint(source) if w.code == "width-trunc"]
        assert warnings
        assert "8-bit" in warnings[0].message

    def test_wide_concat_flagged(self):
        source = """
        module m(input [3:0] a, output [3:0] q);
          assign q = {a, a};
        endmodule
        """
        assert "width-trunc" in codes(source)

    def test_matching_width_clean(self):
        source = """
        module m(input [3:0] a, output [3:0] q);
          assign q = a;
        endmodule
        """
        assert "width-trunc" not in codes(source)

    def test_bare_decimal_not_flagged(self):
        # bare decimals are formally 32-bit; flagging `q <= q + 1` would
        # drown real findings, so the check only fires on sized sources
        source = """
        module m(input clk, output reg [3:0] q);
          always @(posedge clk) q <= 15;
        endmodule
        """
        assert "width-trunc" not in codes(source)


class TestOnProblemSet:
    def test_canonical_solutions_mostly_clean(self):
        serious = {"undriven", "multi-driven", "width-trunc", "nb-in-comb"}
        for problem in ALL_PROBLEMS:
            unit = parse(problem.canonical_source())
            module = unit.module(problem.module_name)
            found = {w.code for w in lint_module(module)}
            assert not (found & serious), (problem.slug, found)

    def test_lint_is_pure_and_sorted(self):
        source = """
        module m(input a, input b, output reg y, output z);
          wire ghost;
          always @(a) y = a & b;
        endmodule
        """
        unit = parse(source)
        first = lint_module(unit.modules[0])
        second = lint_module(unit.modules[0])
        assert first == second
        assert [w.line for w in first] == sorted(w.line for w in first)

    def test_warning_str_format(self):
        source = "module m(input a, output b); endmodule"
        warning = lint(source)[0]
        text = str(warning)
        assert "[undriven]" in text
        assert text.startswith("line")
