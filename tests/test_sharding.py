"""Tests for sharded sweeps (repro.service.sharding): split, merge,
manifest round-trips, and the serial-parity invariant."""

import pytest

from repro.backends import LocalZooBackend, StubBackend
from repro.eval import SweepConfig, SweepExecutor, SweepPlanner
from repro.models import make_model, match_prompt_to_problem
from repro.problems import PromptLevel
from repro.service import (
    PlanShard,
    ShardPlanner,
    load_shard_manifest,
    load_shard_result,
    merge_shard_files,
    merge_shard_results,
    save_shard_result,
    shard_manifest_to_json,
    split_result_by_job,
)

# two models (one with the n=25 capability quirk) so shards carry skips
CONFIG = SweepConfig(
    temperatures=(0.1, 0.5),
    completions_per_prompt=(2, 25),
    levels=(PromptLevel.LOW,),
    problem_numbers=(1, 2, 13),
)


def zoo():
    return LocalZooBackend(
        [
            make_model("codegen-6b", fine_tuned=True),
            make_model("j1-large-7b", fine_tuned=True),
        ]
    )


class TestShardPlanner:
    def test_split_covers_plan_exactly(self):
        backend = zoo()
        plan = SweepPlanner(backend).plan(CONFIG)
        shards = ShardPlanner(4).split(plan)
        assert len(shards) == 4
        assert sum(len(s.plan.jobs) for s in shards) == len(plan.jobs)
        assert sum(len(s.plan.skipped) for s in shards) == len(plan.skipped)
        seen = sorted(i for s in shards for i in s.job_indices)
        assert seen == list(range(len(plan.jobs)))

    def test_split_is_deterministic(self):
        backend = zoo()
        plan = SweepPlanner(backend).plan(CONFIG)
        first = ShardPlanner(3).split(plan)
        second = ShardPlanner(3).split(plan)
        assert [s.job_indices for s in first] == [s.job_indices for s in second]
        assert [s.plan.jobs for s in first] == [s.plan.jobs for s in second]

    def test_more_shards_than_jobs_yields_empty_shards(self):
        backend = StubBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(1,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1,),
            )
        )
        shards = ShardPlanner(5).split(plan)
        assert [len(s) for s in shards] == [1, 0, 0, 0, 0]

    def test_num_shards_validated(self):
        with pytest.raises(ValueError):
            ShardPlanner(0)


class TestMergeParity:
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 7])
    def test_merge_equals_serial_run(self, num_shards):
        """Acceptance: K-shard merge == serial run, records/skips/errors."""
        backend = zoo()
        plan = SweepPlanner(backend).plan(CONFIG)
        serial = SweepExecutor(backend).run(plan)

        shards = ShardPlanner(num_shards).split(plan)
        results = [SweepExecutor(zoo()).run(s.plan) for s in shards]
        merged = merge_shard_results(shards, results)

        assert merged.sweep.records == serial.sweep.records
        assert merged.skipped == serial.skipped
        assert merged.errors == serial.errors
        assert merged.stats["shards"] == num_shards
        assert merged.stats["records"] == len(serial.sweep)

    def test_merge_preserves_errors_in_plan_order(self):
        class FlakyBackend(StubBackend):
            def generate(self, model, prompt, config):
                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise RuntimeError("boom")
                return super().generate(model, prompt, config)

        backend = FlakyBackend()
        config = SweepConfig(
            temperatures=(0.1, 0.3),
            completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2, 3),
        )
        plan = SweepPlanner(backend).plan(config)
        serial = SweepExecutor(backend).run(plan)
        assert len(serial.errors) == 2  # problem 2 at both temperatures

        shards = ShardPlanner(2).split(plan)
        results = [SweepExecutor(FlakyBackend()).run(s.plan) for s in shards]
        merged = merge_shard_results(shards, results)
        assert merged.errors == serial.errors
        assert merged.sweep.records == serial.sweep.records

    def test_merge_keeps_job_error_attempts_through_files(self, tmp_path):
        """Shard results carrying JobError entries (with retry attempts)
        survive the file round-trip and merge in serial plan order."""
        from repro.backends import BackendError
        from repro.eval import RetryPolicy

        class Transient(StubBackend):
            def generate(self, model, prompt, config):
                matched = match_prompt_to_problem(prompt)
                if matched is not None and matched[0].number == 2:
                    raise BackendError("transient")
                return super().generate(model, prompt, config)

        config = SweepConfig(
            temperatures=(0.1, 0.3),
            completions_per_prompt=(2,),
            levels=(PromptLevel.LOW,),
            problem_numbers=(1, 2, 3),
        )
        plan = SweepPlanner(Transient()).plan(config)
        shards = ShardPlanner(2).split(plan)
        paths = []
        for shard in shards:
            result = SweepExecutor(
                Transient(),
                retry=RetryPolicy(max_attempts=3),
                sleep=lambda _s: None,
            ).run(shard.plan)
            path = str(tmp_path / f"shard{shard.shard_index}.json")
            save_shard_result(shard, result, path)
            paths.append(path)
        merged = merge_shard_files(paths)
        assert len(merged.errors) == 2  # problem 2 at both temperatures
        assert all(error.job.problem == 2 for error in merged.errors)
        assert all(error.attempts == 3 for error in merged.errors)
        # errors appear in serial plan order despite round-robin shards
        assert [e.job.temperature for e in merged.errors] == [0.1, 0.3]
        assert merged.stats["jobs_failed"] == 2
        assert len(merged.sweep) == 2 * 2 * 2  # problems 1,3 x temps x n

    def test_mismatched_lengths_rejected(self):
        backend = StubBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(1,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2),
            )
        )
        shards = ShardPlanner(2).split(plan)
        results = [SweepExecutor(backend).run(shards[0].plan)]
        with pytest.raises(ValueError, match="shards but"):
            merge_shard_results(shards, results)

    def test_incomplete_shard_set_rejected(self):
        backend = StubBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(1,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2, 3),
            )
        )
        shards = ShardPlanner(2).split(plan)
        results = [SweepExecutor(backend).run(s.plan) for s in shards]
        with pytest.raises(ValueError, match="incomplete"):
            merge_shard_results(shards[:1], results[:1])

    def test_result_not_matching_plan_rejected(self):
        backend = StubBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(2,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1, 2),
            )
        )
        shards = ShardPlanner(2).split(plan)
        truncated = SweepExecutor(backend).run(shards[1].plan)
        truncated.sweep.records.pop()
        with pytest.raises(ValueError, match="does not match"):
            split_result_by_job(shards[1].plan, truncated)


class TestManifestRoundTrip:
    def test_manifest_json_round_trip(self):
        backend = zoo()
        plan = SweepPlanner(backend).plan(CONFIG)
        shard = ShardPlanner(3).split(plan)[1]
        restored = load_shard_manifest(shard_manifest_to_json(shard))
        assert restored == shard  # frozen dataclasses compare by value

    def test_shard_result_file_round_trip(self, tmp_path):
        backend = zoo()
        plan = SweepPlanner(backend).plan(CONFIG)
        shard = ShardPlanner(2).split(plan)[0]
        result = SweepExecutor(backend).run(shard.plan)
        path = str(tmp_path / "shard0.json")
        save_shard_result(shard, result, path)
        loaded_shard, loaded_result = load_shard_result(path)
        assert loaded_shard == shard
        assert len(loaded_result.sweep) == len(result.sweep)
        assert loaded_result.skipped == result.skipped

    def test_file_merge_parity_with_serial(self, tmp_path):
        """Acceptance: shard → serialize → load → merge == serial export."""
        from repro.eval.export import sweep_to_json

        backend = zoo()
        plan = SweepPlanner(backend).plan(CONFIG)
        serial = SweepExecutor(backend).run(plan)

        paths = []
        for shard in ShardPlanner(3).split(plan):
            result = SweepExecutor(zoo()).run(shard.plan)
            path = str(tmp_path / f"shard{shard.shard_index}.json")
            save_shard_result(shard, result, path)
            paths.append(path)
        merged = merge_shard_files(paths)
        # the wire format rounds inference_seconds; compare exports
        assert sweep_to_json(merged.sweep) == sweep_to_json(serial.sweep)
        assert merged.skipped == serial.skipped
        assert merged.errors == serial.errors

    def test_save_requires_json_extension(self, tmp_path):
        backend = StubBackend()
        plan = SweepPlanner(backend).plan(
            SweepConfig(
                temperatures=(0.1,),
                completions_per_prompt=(1,),
                levels=(PromptLevel.LOW,),
                problem_numbers=(1,),
            )
        )
        shard = ShardPlanner(1).split(plan)[0]
        result = SweepExecutor(backend).run(shard.plan)
        with pytest.raises(ValueError, match=".json"):
            save_shard_result(shard, result, str(tmp_path / "shard.csv"))
