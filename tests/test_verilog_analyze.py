"""Tests for the netlist static analyzer (repro.verilog.analyze)."""

import pytest

from repro.problems import ALL_PROBLEMS
from repro.verilog import (
    AnalysisError,
    Finding,
    analyze_source,
    check_design,
    compile_design,
    error_findings,
    finding_from_dict,
    finding_to_dict,
    infer_top,
    parse,
)


def findings_of(source: str, top: str | None = None):
    report, findings = analyze_source(source, top=top)
    assert report.ok, report.errors
    return findings


def codes(source: str, top: str | None = None) -> set:
    return {f.code for f in findings_of(source, top=top)}


class TestCombLoops:
    def test_assign_cycle_flagged(self):
        source = """
        module m(input a, output y);
          wire b;
          assign b = y | a;
          assign y = b & a;
        endmodule
        """
        found = [f for f in findings_of(source) if f.code == "comb-loop"]
        assert found and found[0].severity == "error"
        assert "b" in found[0].message and "y" in found[0].message

    def test_always_comb_cycle_flagged(self):
        source = """
        module m(input a, output reg y);
          reg b;
          always @(*) begin
            b = y | a;
            y = b & a;
          end
        endmodule
        """
        assert "comb-loop" in codes(source)

    def test_cross_instance_cycle_flagged(self):
        # neither module has a loop alone; the closed hierarchy does
        source = """
        module inv(input x, output y); assign y = ~x; endmodule
        module top(input a, output o);
          wire back;
          inv i0(.x(o), .y(back));
          assign o = back & a;
        endmodule
        """
        assert "comb-loop" in codes(source, top="top")

    def test_register_breaks_cycle(self):
        source = """
        module m(input clk, input a, output reg y);
          wire b;
          assign b = y | a;
          always @(posedge clk) y <= b;
        endmodule
        """
        assert "comb-loop" not in codes(source)

    def test_blocking_overwrite_not_a_loop(self):
        # s reads its own earlier blocking value, fully re-assigned
        # first: a false positive for naive self-edge detection
        source = """
        module m(input [1:0] c, output reg [1:0] s);
          always @(*) begin
            s = 0;
            if (c[0]) s = s + 1;
          end
        endmodule
        """
        assert "comb-loop" not in codes(source)


class TestElaboratedChecks:
    def test_undriven_across_instance(self):
        source = """
        module child(input x, output y); assign y = x; endmodule
        module top(input a, output o);
          wire mid;
          child c(.y(o));
        endmodule
        """
        found = codes(source, top="top")
        assert "undriven" in found

    def test_multi_driven_across_procs(self):
        source = """
        module m(input a, input b, output y);
          assign y = a;
          assign y = b;
        endmodule
        """
        found = [f for f in findings_of(source) if f.code == "multi-driven"]
        assert found and found[0].severity == "error"

    def test_disjoint_bit_drivers_clean(self):
        source = """
        module m(input a, input b, output [1:0] y);
          assign y[0] = a;
          assign y[1] = b;
        endmodule
        """
        assert "multi-driven" not in codes(source)

    def test_port_width_mismatch(self):
        source = """
        module child(input [7:0] x, output y); assign y = ^x; endmodule
        module top(input [3:0] a, output o);
          child c(.x(a), .y(o));
        endmodule
        """
        assert "port-width-mismatch" in codes(source, top="top")

    def test_x_prop_unreset_register(self):
        source = """
        module m(input clk, output reg q);
          always @(posedge clk) q <= ~q;
        endmodule
        """
        assert "x-prop" in codes(source)

    def test_x_prop_reset_clean(self):
        source = """
        module m(input clk, input rst, input d, output reg q);
          always @(posedge clk)
            if (rst) q <= 0;
            else q <= d;
        endmodule
        """
        assert "x-prop" not in codes(source)


class TestFsmAndConst:
    def test_unreachable_state_flagged(self):
        source = """
        module m(input clk, input rst, output reg [1:0] state);
          always @(posedge clk)
            if (rst) state <= 2'd0;
            else case (state)
              2'd0: state <= 2'd1;
              2'd1: state <= 2'd0;
              2'd2: state <= 2'd3;
              2'd3: state <= 2'd2;
            endcase
        endmodule
        """
        found = codes(source)
        assert "fsm-unreachable-state" in found
        assert "fsm-dead-transition" in found

    def test_reachable_fsm_clean(self):
        source = """
        module m(input clk, input rst, output reg [1:0] state);
          always @(posedge clk)
            if (rst) state <= 2'd0;
            else case (state)
              2'd0: state <= 2'd1;
              2'd1: state <= 2'd2;
              2'd2: state <= 2'd0;
              default: state <= 2'd0;
            endcase
        endmodule
        """
        found = codes(source)
        assert "fsm-unreachable-state" not in found

    def test_const_branch_flagged(self):
        source = """
        module m(input a, output reg y);
          wire sel;
          assign sel = 1'b1;
          always @(*) begin
            if (sel) y = a;
            else y = ~a;
          end
        endmodule
        """
        assert "const-branch" in codes(source)

    def test_dead_logic_flagged(self):
        source = """
        module m(input a, input b, output y);
          wire ghost;
          assign ghost = a ^ b;
          assign y = a & b;
        endmodule
        """
        found = [f for f in findings_of(source) if f.code == "dead-logic"]
        assert found and "ghost" in found[0].message


class TestFindingCodec:
    def test_round_trip(self):
        finding = Finding(code="comb-loop", severity="error",
                          message="loop through a -> b", path="top.u0.a",
                          line=12)
        assert finding_from_dict(finding_to_dict(finding)) == finding

    def test_legacy_defaults(self):
        finding = finding_from_dict({"code": "x-prop"})
        assert finding.severity == "warning"
        assert finding.path == "" and finding.line == 0

    def test_str_format(self):
        finding = Finding(code="undriven", severity="warning",
                          message="no driver", path="top.mid", line=3)
        text = str(finding)
        assert "[undriven]" in text and "top.mid" in text
        assert text.startswith("line 3")

    def test_error_findings_filters(self):
        items = [
            Finding(code="comb-loop", severity="error", message="m"),
            Finding(code="x-prop", severity="warning", message="m"),
        ]
        assert [f.code for f in error_findings(items)] == ["comb-loop"]


class TestEntryPoints:
    def test_infer_top_picks_uninstantiated(self):
        unit = parse("""
        module leaf(input x, output y); assign y = x; endmodule
        module root(input a, output b);
          leaf l(.x(a), .y(b));
        endmodule
        """)
        assert infer_top(unit) == "root"

    def test_analyze_source_parse_failure(self):
        report, findings = analyze_source("module m(; endmodule")
        assert not report.ok and findings == []

    def test_check_design_raises_on_error(self):
        report = compile_design("""
        module m(input a, output y);
          wire b;
          assign b = y | a;
          assign y = b & a;
        endmodule
        """)
        assert report.ok
        with pytest.raises(AnalysisError) as info:
            check_design(report.design, report.unit)
        assert info.value.code == "comb-loop"
        assert info.value.path


class TestGoldenReferences:
    """Golden regression: the 17 canonical reference models are clean.

    High-severity cleanliness is the hard assertion (references must
    never trip the gate); the full per-problem snapshot keeps *any*
    drift visible — today every reference analyzes clean, so the
    snapshot is empty everywhere.
    """

    GOLDEN_FINDINGS = {problem.slug: [] for problem in ALL_PROBLEMS}

    def test_references_have_no_error_findings(self):
        for problem in ALL_PROBLEMS:
            report, findings = analyze_source(
                problem.canonical_source(), top=problem.module_name
            )
            assert report.ok, (problem.slug, report.errors)
            assert not error_findings(findings), (problem.slug, findings)

    def test_reference_finding_snapshot(self):
        snapshot = {}
        for problem in ALL_PROBLEMS:
            _, findings = analyze_source(
                problem.canonical_source(), top=problem.module_name
            )
            snapshot[problem.slug] = [finding_to_dict(f) for f in findings]
        assert snapshot == self.GOLDEN_FINDINGS

    def test_all_problems_covered(self):
        assert len(self.GOLDEN_FINDINGS) == 17
