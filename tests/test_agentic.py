"""Tests for the agentic generate → test → repair subsystem
(repro.agentic): transcripts, feedback formatting, the repairable zoo,
the RepairingBackend adapter, executor/shard/streaming parity, warm
verdict-store chains, and the pass@k-vs-budget metrics."""

import asyncio

import pytest

from repro.agentic import (
    RepairConfig,
    RepairJob,
    RepairPlanner,
    RepairingBackend,
    Transcript,
    execute_repair_sweep,
    format_feedback,
    repair_completion,
    run_repair_job,
)
from repro.api import Session
from repro.backends import LocalZooBackend
from repro.eval import (
    Evaluator,
    SweepConfig,
    SweepExecutor,
    SweepPlanner,
    VerdictStore,
    pass_at_k_by_problem,
    repair_budget_curve,
)
from repro.eval.export import error_from_dict, error_to_dict, record_to_dict
from repro.eval.jobs import GenerationJob, failure_from_exception, make_job_error
from repro.eval.pipeline import CompletionEvaluation
from repro.models import make_model
from repro.models.base import REPAIR_FEEDBACK_MARKER, GenerationConfig
from repro.problems import PromptLevel, get_problem

#: A weak model (near-zero pass rate at t=0.5) with a certain repair:
#: every error-conditioned re-query emits the canonical solution.
MODEL = "megatron-355m"


def repair_zoo(repair_rate=1.0):
    return LocalZooBackend([make_model(MODEL, repair_rate=repair_rate)])


SMALL = SweepConfig(
    temperatures=(0.5,),
    completions_per_prompt=(3,),
    levels=(PromptLevel.MEDIUM,),
    problem_numbers=(1, 2, 3),
)


def export_rows(result):
    """The lossless export view — the byte-parity comparison basis."""
    return [record_to_dict(r) for r in result.sweep.records]


# ----------------------------------------------------------------------
# Transcripts
# ----------------------------------------------------------------------
class TestTranscript:
    def test_start_and_grow(self):
        t = Transcript.start("module top();")
        t.add_assistant("assign y = a;")
        t.add_user("// fix it")
        assert t.prompt == "module top();"
        assert len(t) == 3
        assert t.rounds == 1
        assert t.messages() == [
            {"role": "user", "content": "module top();"},
            {"role": "assistant", "content": "assign y = a;"},
            {"role": "user", "content": "// fix it"},
        ]

    def test_flatten_starts_with_prompt(self):
        t = Transcript.start("module top();")
        t.add_assistant("body")
        flat = t.flatten()
        assert flat.startswith("module top();")
        assert "body" in flat

    def test_same_completion_different_history_hashes_differ(self):
        a = Transcript.start("p")
        a.add_assistant("final code")
        b = Transcript.start("p")
        b.add_assistant("broken")
        b.add_user("// feedback")
        b.add_assistant("final code")
        assert a.transcript_hash != b.transcript_hash

    def test_hash_is_deterministic(self):
        def build():
            t = Transcript.start("p")
            t.add_assistant("x")
            return t.transcript_hash

        assert build() == build()

    def test_role_content_framing_is_unambiguous(self):
        a = Transcript.start("x\ny")
        b = Transcript.start("x")
        b.add_user("y")
        assert a.transcript_hash != b.transcript_hash


# ----------------------------------------------------------------------
# Feedback formatting
# ----------------------------------------------------------------------
class TestFormatFeedback:
    def test_parse_stage_quotes_diagnostics(self):
        evaluation = CompletionEvaluation(
            compiled=False,
            passed=False,
            compile_errors=("line 3:1: unexpected token",),
            stage="parse",
            error_line=3,
        )
        text = format_feedback(evaluation, round_index=1)
        assert text.startswith(REPAIR_FEEDBACK_MARKER)
        assert "syntax error" in text
        assert "unexpected token" in text

    def test_all_lines_are_comments(self):
        evaluation = CompletionEvaluation(
            compiled=False, passed=False,
            compile_errors=("a", "b", "c", "d", "e"), stage="elaborate",
        )
        text = format_feedback(evaluation, round_index=2, max_errors=2)
        assert all(line.startswith("//") for line in text.splitlines())
        assert "(+3 more" in text

    def test_testbench_wording(self):
        ran = CompletionEvaluation(
            compiled=True, passed=False, sim_finished=True, stage="testbench"
        )
        assert "mismatches" in format_feedback(ran, round_index=1)
        hung = CompletionEvaluation(
            compiled=True, passed=False, sim_finished=False, stage="testbench"
        )
        assert "did not finish" in format_feedback(hung, round_index=1)

    def test_lint_findings_appended(self):
        evaluation = CompletionEvaluation(
            compiled=True, passed=False, stage="testbench", sim_finished=True
        )
        text = format_feedback(
            evaluation, round_index=1, lint=["line 2: [W1] blocking assign"]
        )
        assert "lint: line 2: [W1] blocking assign" in text

    def test_feedback_is_invisible_to_prompt_matching(self):
        from repro.models import match_prompt_to_problem

        problem = get_problem(1)
        prompt = problem.prompt(PromptLevel.MEDIUM)
        evaluation = CompletionEvaluation(
            compiled=False, passed=False, stage="parse",
            compile_errors=("bad",),
        )
        grown = (
            prompt + "\nbroken body\n"
            + format_feedback(evaluation, round_index=1)
        )
        matched = match_prompt_to_problem(grown)
        assert matched is not None
        assert matched[0].number == problem.number


# ----------------------------------------------------------------------
# The repairable zoo failure mode
# ----------------------------------------------------------------------
class TestRepairableZoo:
    def test_marker_triggers_repair_at_rate_one(self):
        model = make_model(MODEL, repair_rate=1.0)
        problem = get_problem(1)
        prompt = problem.prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=1)
        evaluator = Evaluator()
        plain = model.generate(prompt, config)[0]
        marked = model.generate(
            prompt + f"\n{REPAIR_FEEDBACK_MARKER}: fix it", config
        )[0]
        assert not evaluator.evaluate(
            problem, plain.text, PromptLevel.MEDIUM
        ).passed
        assert evaluator.evaluate(
            problem, marked.text, PromptLevel.MEDIUM
        ).passed

    def test_rate_zero_reprompt_behaves_like_fresh_query(self):
        model = make_model(MODEL, repair_rate=0.0)
        prompt = get_problem(1).prompt(PromptLevel.MEDIUM)
        marked = prompt + f"\n{REPAIR_FEEDBACK_MARKER}: fix it"
        config = GenerationConfig(temperature=0.5, n=2)
        texts = [c.text for c in model.generate(marked, config)]
        # deterministic: identical re-query, identical completions
        assert texts == [c.text for c in model.generate(marked, config)]

    def test_fresh_prompts_identical_to_plain_zoo(self):
        plain = make_model(MODEL)
        repairable = make_model(MODEL, repair_rate=1.0)
        prompt = get_problem(2).prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=3)
        assert [c.text for c in plain.generate(prompt, config)] == [
            c.text for c in repairable.generate(prompt, config)
        ]

    def test_repair_rate_validated(self):
        with pytest.raises(ValueError, match="repair_rate"):
            make_model(MODEL, repair_rate=1.5)

    def test_zoo_repair_backend_registered(self):
        from repro.backends import create_backend

        backend = create_backend("zoo-repair")
        assert backend.name == "zoo-repair"
        assert "megatron-355m-pt" in backend.models()


# ----------------------------------------------------------------------
# The repair loop
# ----------------------------------------------------------------------
class TestRepairLoop:
    def _chain(self, budget, repair_rate=1.0, problem_number=1):
        backend = repair_zoo(repair_rate)
        model = backend.models()[0]
        problem = get_problem(problem_number)
        prompt = problem.prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=1)
        completion = backend.generate(model, prompt, config)[0]
        return repair_completion(
            backend, model, problem, PromptLevel.MEDIUM, prompt,
            completion, config, RepairConfig(budget=budget), Evaluator(),
        )

    def test_budget_zero_never_reprompts(self):
        outcome = self._chain(budget=0)
        assert len(outcome.attempts) == 1
        assert outcome.rounds_used == 0
        assert not outcome.passed

    def test_failing_chain_repairs_within_budget(self):
        outcome = self._chain(budget=2)
        assert outcome.passed
        assert outcome.rounds_used >= 1
        assert outcome.attempts[-1].passed
        # transcript alternates prompt, attempt, (feedback, attempt)...
        assert outcome.transcript.rounds == len(outcome.attempts)

    def test_passing_sample_is_never_repaired(self):
        # stub-canonical passes round 0; the chain must stop there
        from repro.backends import create_backend

        backend = create_backend("stub-canonical")
        model = backend.models()[0]
        problem = get_problem(1)
        prompt = problem.prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=1)
        completion = backend.generate(model, prompt, config)[0]
        outcome = repair_completion(
            backend, model, problem, PromptLevel.MEDIUM, prompt,
            completion, config, RepairConfig(budget=3), Evaluator(),
        )
        assert outcome.passed and outcome.rounds_used == 0
        assert outcome.completion.text == completion.text

    def test_repair_spend_accumulates_inference_seconds(self):
        outcome = self._chain(budget=2)
        assert outcome.completion.inference_seconds == pytest.approx(
            sum(a.inference_seconds for a in outcome.attempts)
        )

    def test_attempt_hashes_recorded_per_round(self):
        outcome = self._chain(budget=2)
        hashes = [a.transcript_hash for a in outcome.attempts]
        assert len(set(hashes)) == len(hashes)


# ----------------------------------------------------------------------
# RepairingBackend: the Backend-protocol adapter
# ----------------------------------------------------------------------
class TestRepairingBackend:
    def test_budget_zero_matches_inner_backend(self):
        inner = repair_zoo()
        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=0))
        prompt = get_problem(1).prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=3)
        model = inner.models()[0]
        assert [c.text for c in inner.generate(model, prompt, config)] == [
            c.text for c in wrapped.generate(model, prompt, config)
        ]

    def test_budget_strictly_improves_pass_rate(self):
        base = execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=0), config=SMALL
        )
        repaired = execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=2), config=SMALL
        )
        passed = lambda result: sum(  # noqa: E731
            r.passed for r in result.sweep.records
        )
        assert passed(repaired) > passed(base)

    def test_pass_count_monotone_in_budget(self):
        counts = []
        for budget in (0, 1, 2):
            result = execute_repair_sweep(
                repair_zoo(0.5), repair=RepairConfig(budget=budget),
                config=SMALL,
            )
            counts.append(sum(r.passed for r in result.sweep.records))
        assert counts == sorted(counts)

    def test_off_benchmark_prompts_pass_through(self):
        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=2))
        config = GenerationConfig(temperature=0.5, n=1)
        out = wrapped.generate(
            wrapped.models()[0], "module not_a_benchmark(input x);", config
        )
        assert len(out) == 1  # no crash, unrepaired pass-through

    def test_plan_parity_with_inner_backend(self):
        inner = repair_zoo()
        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=2))
        assert SweepPlanner(inner).plan(SMALL).jobs == \
            SweepPlanner(wrapped).plan(SMALL).jobs

    def test_attempt_log_collects_only_when_armed(self):
        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=1))
        prompt = get_problem(1).prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=1)
        model = wrapped.models()[0]
        wrapped.generate(model, prompt, config)
        assert wrapped.drain_attempt_events() == []
        wrapped.start_attempt_log()
        wrapped.generate(model, prompt, config)
        events = wrapped.drain_attempt_events()
        assert len(events) >= 2  # initial fail + at least one repair
        first = events[0]
        assert first["model"] == model and first["problem"] == 1
        assert first["round"] == 0
        assert isinstance(first["transcript_hash"], str)
        assert events[-1]["verdict"] == "pass"
        wrapped.stop_attempt_log()
        wrapped.generate(model, prompt, config)
        assert wrapped.drain_attempt_events() == []


# ----------------------------------------------------------------------
# Repair jobs and planning
# ----------------------------------------------------------------------
class TestRepairJobs:
    def test_planner_decorates_the_plain_plan(self):
        backend = repair_zoo()
        planner = RepairPlanner(backend, RepairConfig(budget=2))
        rplan = planner.plan(SMALL)
        assert all(isinstance(j, RepairJob) for j in rplan.jobs)
        assert all(j.budget == 2 for j in rplan.jobs)
        assert rplan.plan.jobs == SweepPlanner(backend).plan(SMALL).jobs

    def test_run_repair_job_returns_histories(self):
        backend = repair_zoo()
        job = GenerationJob(
            model=backend.models()[0], base_model=MODEL, fine_tuned=False,
            problem=1, level=PromptLevel.MEDIUM, temperature=0.5, n=2,
            max_tokens=300,
        )
        records, outcomes = run_repair_job(
            backend, Evaluator(), RepairJob(job=job, budget=2)
        )
        assert len(records) == 2 and len(outcomes) == 2
        for record, outcome in zip(records, outcomes):
            assert record.passed == outcome.passed


# ----------------------------------------------------------------------
# Distributed parity: executors, shards, coordinator, streaming
# ----------------------------------------------------------------------
class TestRepairSweepParity:
    def serial(self):
        return execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=2), config=SMALL
        )

    def test_thread_pool_matches_serial(self):
        threaded = execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=2), config=SMALL,
            workers=3,
        )
        assert export_rows(threaded) == export_rows(self.serial())

    def test_process_pool_matches_serial(self, tmp_path):
        from repro.service.process import ProcessPoolSweepExecutor

        wrapped = RepairingBackend(
            repair_zoo(), repair=RepairConfig(budget=2),
            store=str(tmp_path / "verdicts"),
        )
        plan = SweepPlanner(wrapped).plan(SMALL)
        result = ProcessPoolSweepExecutor(wrapped, workers=2).run(plan)
        assert export_rows(result) == export_rows(self.serial())

    def test_async_executor_matches_serial(self):
        from repro.service.aio import AsyncSweepExecutor

        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=2))
        plan = SweepPlanner(wrapped).plan(SMALL)
        result = AsyncSweepExecutor(
            wrapped, evaluator=wrapped.evaluator, concurrency=3
        ).run(plan)
        assert export_rows(result) == export_rows(self.serial())

    def test_sharded_repair_sweep_merges_to_serial_order(self):
        from repro.service import ShardPlanner, merge_shard_results

        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=2))
        plan = SweepPlanner(wrapped).plan(SMALL)
        shards = ShardPlanner(2).split(plan)
        results = [
            SweepExecutor(
                RepairingBackend(repair_zoo(), repair=RepairConfig(budget=2)),
                evaluator=Evaluator(),
            ).run(shard.plan)
            for shard in shards
        ]
        merged = merge_shard_results(shards, results)
        assert export_rows(merged) == export_rows(self.serial())

    def test_two_coordinator_workers_merge_to_serial_order(self, tmp_path):
        from repro.service import (
            ServiceApp,
            ShardCoordinator,
            in_process_transport,
            run_worker,
        )

        sessions = [
            Session(
                backend=repair_zoo(),
                repair_budget=2,
                store=str(tmp_path / f"store-{i}"),
            )
            for i in range(2)
        ]
        coordinator = ShardCoordinator(
            sessions[0].plan_shards(2, SMALL), lease_seconds=60
        )
        for i, session in enumerate(sessions):
            run_worker(
                transport=in_process_transport(
                    ServiceApp(session, coordinator=coordinator)
                ),
                session=session,
                worker_id=f"worker-{i}",
                max_idle_polls=3,
            )
        assert coordinator.done
        assert export_rows(coordinator.result()) == export_rows(self.serial())


# ----------------------------------------------------------------------
# Warm store: transcript-hash keyed repair chains
# ----------------------------------------------------------------------
class TestRepairWarmStore:
    def test_warm_store_skips_all_resimulation(self, tmp_path):
        store_dir = str(tmp_path / "verdicts")
        cold = execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=2), config=SMALL,
            store=store_dir,
        )
        assert cold.stats["evaluator_cache"]["misses"] > 0
        warm = execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=2), config=SMALL,
            store=store_dir,
        )
        assert warm.stats["evaluator_cache"]["misses"] == 0
        assert warm.stats["evaluator_cache"]["store_hits"] > 0
        assert export_rows(warm) == export_rows(cold)

    def test_attempt_verdicts_keyed_by_transcript_hash(self, tmp_path):
        store = VerdictStore(str(tmp_path / "verdicts"))
        backend = repair_zoo()
        model = backend.models()[0]
        problem = get_problem(1)
        prompt = problem.prompt(PromptLevel.MEDIUM)
        config = GenerationConfig(temperature=0.5, n=1)
        completion = backend.generate(model, prompt, config)[0]
        outcome = repair_completion(
            backend, model, problem, PromptLevel.MEDIUM, prompt,
            completion, config, RepairConfig(budget=2), Evaluator(),
            store=store,
        )
        for attempt in outcome.attempts:
            stored = store.get(problem.number, attempt.transcript_hash)
            assert stored is not None
            assert stored.passed == attempt.passed


# ----------------------------------------------------------------------
# NDJSON streaming: attempt frames
# ----------------------------------------------------------------------
class TestAttemptStreaming:
    def test_stream_emits_attempt_frames_and_reassembles(self):
        from repro.service.aio import AsyncSweepExecutor
        from repro.service.aio.events import assemble_stream_result

        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=2))
        plan = SweepPlanner(wrapped).plan(SMALL)

        async def collect():
            executor = AsyncSweepExecutor(
                wrapped, evaluator=wrapped.evaluator, concurrency=2
            )
            return [frame async for frame in executor.stream(plan)]

        frames = asyncio.run(collect())
        attempts = [f for f in frames if f["event"] == "attempt"]
        assert attempts, "repair rounds should surface as attempt frames"
        assert {"model", "problem", "round", "verdict",
                "transcript_hash"} <= set(attempts[0])
        serial = execute_repair_sweep(
            repair_zoo(), repair=RepairConfig(budget=2), config=SMALL
        )
        assembled = assemble_stream_result(frames)
        assert export_rows(assembled) == export_rows(serial)

    def test_attempt_frame_round_trips_the_codec(self):
        from repro.service.aio.events import (
            attempt_frame,
            decode_frame,
            encode_frame,
        )

        frame = attempt_frame({
            "model": "m", "problem": 1, "temperature": 0.5,
            "sample_index": 0, "round": 1, "verdict": "pass",
            "stage": "", "transcript_hash": "00deadbeef00cafe",
        })
        assert decode_frame(encode_frame(frame)) == frame

    def test_stopped_log_leaks_nothing_into_next_run(self):
        from repro.service.aio import AsyncSweepExecutor

        wrapped = RepairingBackend(repair_zoo(), repair=RepairConfig(budget=1))
        plan = SweepPlanner(wrapped).plan(SMALL)
        AsyncSweepExecutor(wrapped, evaluator=wrapped.evaluator).run(plan)
        # execute() stop_attempt_log()s in its finally: nothing collects
        prompt = get_problem(1).prompt(PromptLevel.MEDIUM)
        wrapped.generate(
            wrapped.models()[0], prompt,
            GenerationConfig(temperature=0.5, n=1),
        )
        assert wrapped.drain_attempt_events() == []


# ----------------------------------------------------------------------
# Structured JobError fields
# ----------------------------------------------------------------------
class TestStructuredJobErrors:
    def test_failure_classification(self):
        from repro.backends import BackendError
        from repro.verilog.errors import (
            ElaborationError,
            ParseError,
            SimulationError,
        )

        cases = [
            (BackendError("down"), "backend", 0),
            (ParseError("bad token", line=7), "parse", 7),
            (ElaborationError("unknown module", line=2), "elaborate", 2),
            (SimulationError("step limit"), "sim", 0),
            (RuntimeError("surprise"), "", 0),
        ]
        for exc, stage, line in cases:
            failure = failure_from_exception(exc)
            assert failure.stage == stage
            assert failure.exception == type(exc).__name__
            assert failure.line == line
            assert str(exc) in failure.message

    def test_make_job_error_from_failure_and_string(self):
        job = GenerationJob(
            model="m", base_model="m", fine_tuned=False, problem=1,
            level=PromptLevel.LOW, temperature=0.1, n=1, max_tokens=300,
        )
        from repro.verilog.errors import ParseError

        structured = make_job_error(
            job, failure_from_exception(ParseError("x", line=4)), attempts=2
        )
        assert structured.stage == "parse"
        assert structured.exception == "ParseError"
        assert structured.line == 4
        legacy = make_job_error(job, "BackendError: down", attempts=1)
        assert legacy.stage == "" and legacy.exception == ""

    def test_error_codec_round_trip_is_lossless(self):
        job = GenerationJob(
            model="m", base_model="m", fine_tuned=False, problem=3,
            level=PromptLevel.HIGH, temperature=0.7, n=5, max_tokens=200,
        )
        from repro.verilog.errors import ElaborationError

        error = make_job_error(
            job, failure_from_exception(ElaborationError("boom", line=9)),
            attempts=3,
        )
        assert error_from_dict(error_to_dict(error)) == error

    def test_legacy_error_dicts_still_decode(self):
        job = GenerationJob(
            model="m", base_model="m", fine_tuned=False, problem=1,
            level=PromptLevel.LOW, temperature=0.1, n=1, max_tokens=300,
        )
        row = error_to_dict(make_job_error(job, "old-style", attempts=1))
        for key in ("stage", "exception", "line"):
            row.pop(key)
        decoded = error_from_dict(row)
        assert decoded.error == "old-style"
        assert decoded.stage == "" and decoded.line == 0

    def test_failing_job_carries_stage_through_sweep(self):
        class ParseBomb(LocalZooBackend):
            def generate(self, model, prompt, config):
                from repro.verilog.errors import ParseError

                raise ParseError("synthetic", line=5)

        backend = ParseBomb([make_model(MODEL)])
        result = SweepExecutor(backend, evaluator=Evaluator()).run(
            SweepPlanner(backend).plan(SMALL)
        )
        assert result.errors
        assert all(e.stage == "parse" and e.line == 5 for e in result.errors)
        assert all(e.exception == "ParseError" for e in result.errors)


# ----------------------------------------------------------------------
# Metrics: pass@k vs repair budget
# ----------------------------------------------------------------------
class TestRepairMetrics:
    def test_pass_at_k_by_problem(self):
        class R:
            def __init__(self, problem, passed):
                self.problem = problem
                self.passed = passed

        records = [R(1, True), R(1, False), R(2, False), R(2, False)]
        # P1: pass@1 over (n=2, c=1) = 0.5; P2: 0.0 -> mean 0.25
        assert pass_at_k_by_problem(records, k=1) == pytest.approx(0.25)
        # k clamps to the group size
        assert pass_at_k_by_problem(records, k=10) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            pass_at_k_by_problem(records, k=0)

    def test_repair_budget_curve_shape_and_lift(self):
        class R:
            def __init__(self, problem, passed, compiled=True):
                self.problem = problem
                self.passed = passed
                self.compiled = compiled

        sweeps = {
            0: [R(1, False, compiled=False), R(2, False)],
            2: [R(1, True), R(2, False)],
        }
        rows = repair_budget_curve(sweeps, k=1)
        assert [row["budget"] for row in rows] == [0, 2]
        base, top = rows
        assert base["lift"] == 0.0 and base["lift_per_budget"] == 0.0
        assert top["pass_at_k"] == pytest.approx(0.5)
        assert top["lift"] == pytest.approx(0.5)
        assert top["lift_per_budget"] == pytest.approx(0.25)
        assert base["compile_rate"] == pytest.approx(0.5)

    def test_session_repair_curve_improves_on_zoo_repair(self, tmp_path):
        session = Session(
            backend=repair_zoo(), store=str(tmp_path / "verdicts")
        )
        out = session.repair_curve(budgets=(0, 2), config=SMALL)
        rows = {row["budget"]: row for row in out["curve"]}
        assert rows[2]["pass_at_k"] > rows[0]["pass_at_k"]
        assert rows[2]["lift"] > 0

    def test_session_repair_budget_wraps_backend(self):
        session = Session(backend=repair_zoo(), repair_budget=2)
        assert isinstance(session.backend, RepairingBackend)
        assert session.backend.repair.budget == 2
        plain = Session(backend=repair_zoo())
        assert not isinstance(plain.backend, RepairingBackend)
