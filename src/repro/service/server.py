"""HTTP eval service: the Session/job API over JSON.

The service exposes a :class:`~repro.api.Session` to the network with
nothing but the standard library:

* ``GET  /health``          — liveness + backend identity;
* ``GET  /models``          — served model variants;
* ``POST /capabilities``    — capability claims + identity for one model;
* ``POST /generate``        — completions for one (model, prompt, config);
* ``POST /generate_batch``  — completions for many (prompt, config)
  requests of one model in a single round-trip;
* ``POST /sweep``           — plan + execute a whole sweep server-side,
  returning the full record/skip/error result;
* ``GET  /metrics``         — the process :mod:`repro.obs` registry as
  JSON (plus coordinator throughput when one is attached);
* ``GET  /metrics/prom``    — the same registry in Prometheus text
  exposition format.

When a :class:`~repro.service.coordinator.ShardCoordinator` is attached
(``ServiceApp(session, coordinator=...)`` or ``EvalService(...,
coordinator=...)``, the ``Session.coordinate`` path), three more routes
serve shards to pull-based workers:

* ``POST /shard/next``    — lease the next pending shard;
* ``POST /shard/result``  — submit one executed shard (merged inline);
* ``GET  /shard/status``  — coordination progress.

:class:`ServiceApp` is the transport-free core — ``handle(method, path,
payload) -> (status, body)`` — so tests (and
:func:`~repro.service.client.in_process_transport`) drive the exact
routing/validation/serialization code without opening a socket.
:class:`EvalService` wraps it in a ``ThreadingHTTPServer`` for real
deployments; agent-style callers then point any HTTP client (or a
:class:`~repro.service.client.ServiceBackend`) at the port.

The wire schema reuses the job/skip/error codecs of
:mod:`repro.eval.export`, so a remote sweep result deserializes
record-for-record identical to a local run.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..backends.base import BackendError
from ..eval.export import config_from_dict, sweep_result_to_dict
from ..models.base import GenerationConfig
from ..obs import REGISTRY
from ..obs.collect import TelemetryHub, render_fleet_prometheus
from ..obs.dashboard import dashboard_html

#: reserved body key: the HTTP shims serve this raw instead of as JSON
RAW_TEXT_KEY = "_raw_text"


class ServiceApp:
    """Route table + JSON codec over a Session; no sockets involved.

    ``coordinator`` (optional) mounts the shard-coordination routes; the
    plain eval routes work with or without one.  Every app carries a
    :class:`~repro.obs.collect.TelemetryHub`: workers push registry
    deltas to ``POST /telemetry`` and both metrics routes merge the
    fleet view into their output.
    """

    def __init__(self, session, coordinator=None):
        self.session = session
        self.coordinator = coordinator
        self.telemetry = TelemetryHub()

    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        """Dispatch one request; returns (HTTP status, response body)."""
        route = (method.upper(), path.split("?", 1)[0].rstrip("/") or "/")
        handlers = {
            ("GET", "/health"): self._health,
            ("GET", "/models"): self._models,
            ("GET", "/metrics"): self._metrics,
            ("GET", "/metrics/prom"): self._metrics_prom,
            ("GET", "/dashboard"): self._dashboard,
            ("POST", "/telemetry"): self._telemetry,
            ("POST", "/capabilities"): self._capabilities,
            ("POST", "/generate"): self._generate,
            ("POST", "/generate_batch"): self._generate_batch,
            ("POST", "/sweep"): self._sweep,
            ("POST", "/shard/next"): self._shard_next,
            ("POST", "/shard/result"): self._shard_result,
            ("GET", "/shard/status"): self._shard_status,
        }
        handler = handlers.get(route)
        if handler is None:
            REGISTRY.inc("http_requests", route="unmatched")
            return 404, {"error": f"no route {method.upper()} {path}"}
        REGISTRY.inc("http_requests", route=f"{route[0]} {route[1]}")
        try:
            return 200, handler(payload or {})
        except BackendError as exc:
            return 400, {"error": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return 400, {"error": f"bad request: {exc}"}
        except Exception as exc:  # noqa: BLE001 — keep the server alive
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------------
    def _health(self, _payload: dict) -> dict:
        from .. import __version__

        return {
            "status": "ok",
            "backend": self.session.backend.name,
            "models": len(self.session.models()),
            "version": __version__,
        }

    def _models(self, _payload: dict) -> dict:
        return {"models": self.session.models()}

    def _metrics(self, _payload: dict) -> dict:
        body = {"metrics": REGISTRY.snapshot()}
        if len(self.telemetry):
            body["fleet"] = self.telemetry.fleet_snapshot()
        if self.coordinator is not None:
            status = self.coordinator.status()
            body["coordinator"] = {
                key: status[key]
                for key in (
                    "jobs_done", "jobs_total", "records_merged",
                    "store_hits", "workers",
                )
                if key in status
            }
        return body

    def _metrics_prom(self, _payload: dict) -> dict:
        return {
            RAW_TEXT_KEY: render_fleet_prometheus(REGISTRY, self.telemetry),
            "content_type": "text/plain; version=0.0.4",
        }

    def _telemetry(self, payload: dict) -> dict:
        # ValueError from a malformed payload maps to 400 in handle()
        return self.telemetry.ingest(payload)

    def _dashboard(self, _payload: dict) -> dict:
        return {
            RAW_TEXT_KEY: dashboard_html(),
            "content_type": "text/html; charset=utf-8",
        }

    def _capabilities(self, payload: dict) -> dict:
        model = payload["model"]
        capabilities = self.session.backend.capabilities(model)
        base_model, fine_tuned = self.session.backend.identity(model)
        return {
            "model": model,
            "supports_n25": capabilities.supports_n25,
            "max_tokens": capabilities.max_tokens,
            "base_model": base_model,
            "fine_tuned": fine_tuned,
        }

    @staticmethod
    def _parse_config(row: dict | None) -> GenerationConfig:
        row = row or {}
        return GenerationConfig(
            **{
                key: row[key]
                for key in ("temperature", "n", "max_tokens", "top_p")
                if key in row
            }
        )

    @staticmethod
    def _completion_row(completion) -> dict:
        return {
            "text": completion.text,
            "inference_seconds": completion.inference_seconds,
            "tokens": completion.tokens,
        }

    def _generate(self, payload: dict) -> dict:
        config = self._parse_config(payload.get("config"))
        completions = self.session.backend.generate(
            payload["model"], payload["prompt"], config
        )
        return {
            "completions": [self._completion_row(c) for c in completions]
        }

    def _generate_batch(self, payload: dict) -> dict:
        requests = [
            (row["prompt"], self._parse_config(row.get("config")))
            for row in payload["requests"]
        ]
        batches = self.session.backend.generate_batch(
            payload["model"], requests
        )
        return {
            "batches": [
                [self._completion_row(c) for c in batch] for batch in batches
            ]
        }

    def _sweep(self, payload: dict) -> dict:
        config = (
            config_from_dict(payload["config"])
            if payload.get("config") is not None
            else None
        )
        result = self.session.run_sweep(config, models=payload.get("models"))
        return sweep_result_to_dict(result)

    # ------------------------------------------------------------------
    # Shard-coordination routes (Session.coordinate / ShardCoordinator)
    # ------------------------------------------------------------------
    def _require_coordinator(self):
        if self.coordinator is None:
            raise BackendError(
                "no shard coordinator attached to this service "
                "(start one with Session.coordinate / `repro coordinate`)"
            )
        return self.coordinator

    def _shard_next(self, payload: dict) -> dict:
        return self._require_coordinator().next_shard(
            str(payload.get("worker_id") or "anonymous")
        )

    def _shard_result(self, payload: dict) -> dict:
        return self._require_coordinator().submit_result(
            payload["lease_id"], payload["result"]
        )

    def _shard_status(self, _payload: dict) -> dict:
        return self._require_coordinator().status()


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class _ServiceRequestHandler(BaseHTTPRequestHandler):
    """Thin JSON shim between http.server and the ServiceApp."""

    protocol_version = "HTTP/1.1"

    def _respond(self, status: int, body: dict) -> None:
        if RAW_TEXT_KEY in body:
            data = body[RAW_TEXT_KEY].encode("utf-8")
            content_type = body.get("content_type", "text/plain")
        else:
            data = json.dumps(body).encode("utf-8")
            content_type = "application/json"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _payload(self) -> dict | None:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return None
        return json.loads(self.rfile.read(length).decode("utf-8"))

    def _dispatch(self, method: str) -> None:
        try:
            payload = self._payload()
        except (ValueError, UnicodeDecodeError) as exc:
            self._respond(400, {"error": f"invalid JSON body: {exc}"})
            return
        status, body = self.server.app.handle(method, self.path, payload)
        self._respond(status, body)

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        self._dispatch("POST")

    def log_message(self, *args) -> None:  # silence per-request stderr spam
        pass


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], app: ServiceApp):
        super().__init__(address, _ServiceRequestHandler)
        self.app = app


class EvalService:
    """A Session served over HTTP; ``port=0`` picks a free port.

    Use :meth:`start`/:meth:`stop` (or the context manager) to run the
    server on a background thread for tests and embedding, or
    :meth:`serve_forever` to block (the CLI ``serve`` command).
    """

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 8076,
        coordinator=None,
    ):
        self.app = ServiceApp(session, coordinator=coordinator)
        self.host = host
        self.port = port
        self._httpd: _ServiceHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._serving = False

    # ------------------------------------------------------------------
    def _ensure_server(self) -> _ServiceHTTPServer:
        if self._httpd is None:
            self._httpd = _ServiceHTTPServer((self.host, self.port), self.app)
            self.port = self._httpd.server_address[1]
        return self._httpd

    @property
    def coordinator(self):
        return self.app.coordinator

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def bind(self) -> str:
        """Bind the listening socket (resolves ``port=0``) without serving."""
        self._ensure_server()
        return self.url

    def start(self) -> str:
        """Serve on a daemon thread; returns the service URL."""
        httpd = self._ensure_server()
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=httpd.serve_forever, name="eval-service", daemon=True
            )
            self._thread.start()
        return self.url

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        httpd = self._ensure_server()
        self._serving = True
        httpd.serve_forever()

    def stop(self) -> None:
        if self._httpd is not None:
            # shutdown() blocks on the serve loop's exit event, which is
            # only ever set once serve_forever has run — skip it for a
            # server that was bound but never served
            if self._serving:
                self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        self._serving = False
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "EvalService":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


def serve(
    backend=None,
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 8076,
) -> EvalService:
    """Build an EvalService over a fresh Session (not yet started)."""
    from ..api import Session

    return EvalService(Session(backend=backend, workers=workers), host, port)
