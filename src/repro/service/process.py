"""Process-pool sweep executor for CPU-bound generation/evaluation.

Generation and evaluation are pure Python, so the thread-pool
:class:`~repro.eval.jobs.SweepExecutor` gives record parity but no
speedup — the GIL serializes the compile/simulate work.  This variant
fans the same plan out over ``concurrent.futures.ProcessPoolExecutor``
worker *processes* instead: the backend (which must pickle — the zoo and
stub backends do) is shipped to each worker once via the pool
initializer, each worker builds its own
:class:`~repro.eval.pipeline.Evaluator`, and job outcomes stream back
in plan order so results are byte-identical to a serial run.

In-memory evaluator caches are per-process; pass a
:class:`~repro.eval.store.VerdictStore` (``store=...``) to give every
worker a shared on-disk verdict cache instead of rebuilding the
compile/simulate work per process.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor

from ..backends.base import Backend, BackendError
from ..eval.jobs import (
    Executor,
    GenerationJob,
    JobOutcome,
    ProgressCallback,
    RetryPolicy,
    SweepPlan,
    SweepResult,
    assemble_result,
    run_job_with_retry,
)
from ..eval.pipeline import Evaluator
from .sharding import merge_cache_counters

# Per-worker state, installed once by the pool initializer.
_WORKER_BACKEND: Backend | None = None
_WORKER_EVALUATOR: Evaluator | None = None
_WORKER_RETRY: RetryPolicy | None = None


def _init_worker(payload: bytes) -> None:
    global _WORKER_BACKEND, _WORKER_EVALUATOR, _WORKER_RETRY
    (_WORKER_BACKEND, _WORKER_RETRY, store, analysis,
     compile_sim) = pickle.loads(payload)
    _WORKER_EVALUATOR = Evaluator(store=store, analysis=analysis,
                                  compile_sim=compile_sim)


def _run_job(job: GenerationJob) -> tuple[JobOutcome, int, dict]:
    """One job plus this worker's identity and running cache counters.

    The cache_info snapshot rides back with every outcome so the
    coordinating process can report fleet-wide totals: counters are
    monotonic, so the *last* snapshot seen from each worker pid is that
    worker's final tally.
    """
    outcome = run_job_with_retry(
        _WORKER_BACKEND, _WORKER_EVALUATOR, job, _WORKER_RETRY
    )
    return outcome, os.getpid(), dict(_WORKER_EVALUATOR.cache_info)


class ProcessPoolSweepExecutor(Executor):
    """Run a :class:`SweepPlan` across worker processes.

    ``workers`` defaults to the machine's CPU count.  The retry policy
    applies inside each worker (with real ``time.sleep`` backoff — the
    injectable-sleep seam is a thread-executor testing affordance).
    Progress callbacks fire on the coordinating process, in plan order.
    """

    def __init__(
        self,
        backend: Backend,
        workers: int | None = None,
        retry: RetryPolicy | None = None,
        progress: ProgressCallback | None = None,
        store=None,
        analysis: bool = True,
        compile_sim: bool = True,
    ):
        workers = workers if workers is not None else os.cpu_count() or 1
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.backend = backend
        self.workers = workers
        self.retry = retry or RetryPolicy()
        self.progress = progress
        self.store = store
        self.analysis = analysis
        self.compile_sim = compile_sim
        try:
            self._payload = pickle.dumps(
                (backend, self.retry, store, analysis, compile_sim)
            )
        except Exception as exc:  # noqa: BLE001 — report the real cause
            raise BackendError(
                f"backend {backend.name!r} cannot be shipped to worker "
                f"processes (not picklable): {exc}"
            ) from exc

    def run(self, plan: SweepPlan) -> SweepResult:
        started = time.perf_counter()
        total = len(plan.jobs)
        outcomes: list[JobOutcome] = []
        # worker pid -> last cache_info snapshot seen (== final tally)
        worker_caches: dict[int, dict] = {}
        if total:
            chunksize = max(1, total // (self.workers * 4))
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(self._payload,),
            ) as pool:
                for index, (outcome, pid, cache_info) in enumerate(
                    pool.map(_run_job, plan.jobs, chunksize=chunksize)
                ):
                    outcomes.append(outcome)
                    worker_caches[pid] = cache_info
                    if self.progress is not None:
                        self.progress(index + 1, total, plan.jobs[index])
        return assemble_result(
            plan,
            outcomes,
            stats={
                "backend": self.backend.name,
                "executor": "process",
                "workers": self.workers,
                "evaluator_cache": merge_cache_counters(
                    worker_caches.values()
                ),
                "elapsed_seconds": time.perf_counter() - started,
            },
        )
