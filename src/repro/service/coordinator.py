"""Shard coordinator: lease-based work distribution with streaming merge.

PR 2's sharding made a sweep distributable, but each worker had to be
told its ``--shard-index`` by hand and results were merged offline from
files.  :class:`ShardCoordinator` removes both: one process owns the
full :class:`~repro.service.sharding.ShardPlanner` split and serves it
to *pull-based* workers over the wire routes (mounted on
:class:`~repro.service.server.ServiceApp` and the asyncio server):

* ``POST /shard/next``          — lease the next pending work unit;
* ``POST /shard/result``        — submit one executed unit's result;
* ``POST /shard/result/stream`` — the NDJSON streamed-upload twin
  (asyncio server only): the worker ships event frames as jobs finish
  and the coordinator tracks partial progress live;
* ``GET  /shard/status``        — progress: unit states, records merged.

Work units come in two granularities.  By default a unit is a whole
shard of the split.  With ``lease_jobs=N`` the coordinator re-carves
the same plan into consecutive *job ranges* of at most N jobs — so one
straggling worker holds at most N jobs hostage instead of a whole
shard, and an expired lease re-balances just that range to the next
``/shard/next`` caller.  Either way the unit manifests are ordinary
:class:`~repro.service.sharding.PlanShard`s, so workers need no
awareness of the granularity at all.

Results are merged *as they stream in*, using the exact semantics of
:func:`~repro.service.sharding.merge_shard_results` (each submission is
attributed back to global plan positions via
:func:`~repro.service.sharding.split_result_by_job`; assembly goes
through :func:`~repro.service.sharding.assemble_slots`), so the final
:class:`~repro.eval.jobs.SweepResult` is record-for-record identical to
a serial run — the PR 2 merge invariant, now incremental.  A streamed
upload commits through the same path once its terminal frame validates,
so it is byte-identical to a blocking submit of the same result.

Fault tolerance is lease-based: every handout carries a deadline; a
worker that vanishes simply never submits, and once its lease expires
the unit is re-served to the next ``/shard/next`` caller.  Submissions
are validated against the plan before they are merged.  Lease records
are pruned rather than kept forever: live leases plus a bounded tail of
superseded (expired) ones are remembered exactly, and any other
well-formed lease id naming an already-DONE unit is still acknowledged
as a duplicate — a long-lived fleet's lease churn cannot grow the
coordinator without bound.

All methods speak wire-native dicts (the :mod:`repro.eval.export`
codecs), so the HTTP layer stays a dumb JSON shim and in-process tests
drive the identical schema.
"""

from __future__ import annotations

import collections
import re
import threading
import time
from typing import Callable, Iterable, Sequence

from ..eval.export import sweep_result_from_dict, sweep_result_to_dict
from ..eval.jobs import SweepPlan, SweepResult
from ..obs import REGISTRY, record_span
from .sharding import (
    PlanShard,
    assemble_slots,
    shard_from_dict,
    shard_to_dict,
    split_result_by_job,
)

PENDING = "pending"
LEASED = "leased"
DONE = "done"

#: how many superseded (expired) leases are remembered *per unit*; a
#: lease that sat through this many further expiries of its own unit is
#: forgotten (its submit becomes "unknown lease"), while a DONE unit's
#: leases are dropped entirely and late submits fall back to the
#: well-formed-id duplicate path.  Per-unit (not global) so churn on
#: one unit can never evict another unit's still-salvageable lease;
#: total lease memory stays bounded by cap x incomplete units.
SUPERSEDED_LEASE_CAP = 4

_LEASE_ID_RE = re.compile(r"^lease-\d+-s(\d+)$")


def _carve_job_units(
    shards: Sequence[PlanShard], lease_jobs: int
) -> tuple[dict[int, PlanShard], dict[int, object]]:
    """Re-partition a complete shard set into consecutive job ranges.

    Each unit is an ad-hoc :class:`PlanShard` of at most ``lease_jobs``
    jobs, covering every global plan position exactly once in serial
    order.  Skips never travel with job leases (they are plan facts,
    not work), so they come back pre-filled against their global
    positions for :func:`~repro.service.sharding.assemble_slots`.
    """
    jobs: dict[int, object] = {}
    skips: dict[int, object] = {}
    for shard in shards:
        for index, job in zip(shard.job_indices, shard.plan.jobs):
            jobs[index] = job
        for index, skip in zip(shard.skip_indices, shard.plan.skipped):
            skips[index] = skip
    config = shards[0].plan.config
    order = sorted(jobs)
    num_units = -(-len(order) // lease_jobs)
    units: dict[int, PlanShard] = {}
    for start in range(0, len(order), lease_jobs):
        indices = tuple(order[start : start + lease_jobs])
        unit_index = len(units)
        units[unit_index] = PlanShard(
            shard_index=unit_index,
            num_shards=num_units,
            job_indices=indices,
            skip_indices=(),
            plan=SweepPlan(
                jobs=[jobs[i] for i in indices], skipped=[], config=config
            ),
        )
    return units, skips


class ShardCoordinator:
    """Serve a complete shard set to pull-based workers; merge inline.

    ``lease_seconds`` bounds how long a handed-out unit may stay
    unsubmitted before it is re-served; ``clock`` is injectable
    (monotonic seconds) so tests can expire leases without waiting.
    ``lease_jobs=N`` switches from shard-granular to job-granular
    leasing: units become consecutive ranges of at most N jobs.
    """

    def __init__(
        self,
        shards: Sequence[PlanShard],
        lease_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
        lease_jobs: int | None = None,
    ):
        if not shards:
            raise ValueError("nothing to coordinate: empty shard set")
        num_shards = shards[0].num_shards
        indices = {shard.shard_index for shard in shards}
        if (
            len(shards) != num_shards
            or {s.num_shards for s in shards} != {num_shards}
            or indices != set(range(num_shards))
        ):
            raise ValueError(
                "coordinator needs the complete shard set of one split "
                f"(got {len(shards)} shards, indices {sorted(indices)}, "
                f"num_shards={num_shards})"
            )
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        if lease_jobs is not None and lease_jobs < 1:
            raise ValueError(
                "lease_jobs must be >= 1 (or None for shard-level leases)"
            )
        self.lease_seconds = lease_seconds
        self.clock = clock
        self.shards = {shard.shard_index: shard for shard in shards}
        self.num_shards = num_shards
        self.lease_jobs = lease_jobs
        self._lock = threading.Lock()
        self._job_slots: dict[int, object] = {}
        self._skip_slots: dict[int, object] = {}
        if lease_jobs is None:
            self._units: dict[int, PlanShard] = dict(self.shards)
        else:
            self._units, prefilled = _carve_job_units(shards, lease_jobs)
            self._skip_slots.update(prefilled)
        self.num_units = len(self._units)
        self._state = {index: PENDING for index in self._units}
        # live leases only (one per LEASED unit): lease_id -> (unit
        # index, worker_id, deadline); expired leases move to the
        # bounded _superseded tail so a slow worker's late submission
        # is still recognised, and a DONE unit's leases are dropped
        # entirely (late submits resolve via the well-formed-id path)
        self._leases: dict[str, tuple[int, str, float]] = {}
        self._superseded: "collections.OrderedDict[str, tuple[int, str, float]]" = (
            collections.OrderedDict()
        )
        self._live_lease: dict[int, str] = {}
        self._lease_counter = 0
        self._results: dict[int, SweepResult] = {}
        self._submitted_by: dict[int, str] = {}
        # per-worker merge aggregates (units/jobs/records/busy seconds/
        # store hits): the signal adaptive lease sizing will feed on
        self._worker_stats: dict[str, dict] = {}
        # lease_id -> live partial-progress counters of an in-flight
        # streamed upload (cleared when the stream commits or aborts)
        self._streaming: dict[str, dict] = {}
        self._reclaimed = 0

    # ------------------------------------------------------------------
    # Wire API (dict in, dict out — ServiceApp routes call these)
    # ------------------------------------------------------------------
    def next_shard(self, worker_id: str = "anonymous") -> dict:
        """Lease the next pending work unit to ``worker_id``.

        Returns ``{"shard": <manifest>, "lease_id", "shard_index",
        "lease_seconds"}`` when work is available; otherwise ``{"shard":
        None, "done": <bool>, "retry_after": <seconds>}`` — ``done``
        means the whole sweep is merged and the worker can exit, a
        ``retry_after`` hint means every remaining unit is leased to
        someone else right now.
        """
        with self._lock:
            self._reclaim_expired()
            for index in sorted(self._state):
                if self._state[index] is not PENDING:
                    continue
                self._lease_counter += 1
                lease_id = f"lease-{self._lease_counter}-s{index}"
                deadline = self.clock() + self.lease_seconds
                self._leases[lease_id] = (index, worker_id, deadline)
                self._live_lease[index] = lease_id
                self._state[index] = LEASED
                return {
                    "shard": shard_to_dict(self._units[index]),
                    "shard_index": index,
                    "lease_id": lease_id,
                    "lease_seconds": self.lease_seconds,
                    "done": False,
                }
            if all(state is DONE for state in self._state.values()):
                return {"shard": None, "done": True, "retry_after": 0.0}
            now = self.clock()
            remaining = [
                deadline - now
                for index, lease_id in self._live_lease.items()
                if self._state[index] is LEASED
                for (_, _, deadline) in (self._leases[lease_id],)
            ]
            return {
                "shard": None,
                "done": False,
                "retry_after": max(0.05, min(remaining, default=0.05)),
            }

    def submit_result(self, lease_id: str, result: dict) -> dict:
        """Merge one executed unit submitted under ``lease_id``.

        The result payload is :func:`sweep_result_to_dict` output for
        the leased unit's plan.  A submission that does not match the
        plan (wrong record counts, unmatched errors) is rejected with
        ``ValueError`` and the unit stays leased — the worker is
        broken, and the lease clock is already running.
        """
        with self._lock:
            index, _worker = self._resolve_lease_locked(lease_id)
            if self._state[index] is DONE:
                return self._duplicate_locked(index)
        # decode + validate outside the lock: this is CPU work
        # proportional to unit size, and holding the lock through it
        # would stall every /shard/next poll in the fleet
        shard_result = sweep_result_from_dict(result)
        return self._merge_submission(lease_id, index, shard_result)

    # ------------------------------------------------------------------
    # Streamed submission (POST /shard/result/stream)
    # ------------------------------------------------------------------
    def begin_stream(self, lease_id: str) -> "ShardSubmissionStream":
        """Open a streamed upload for ``lease_id``.

        Raises ``ValueError`` for an unknown lease, exactly like
        :meth:`submit_result`.  A lease whose unit is already DONE
        returns a stream whose :meth:`~ShardSubmissionStream.finish`
        acks as a duplicate — the uploader's body must still be read
        (it needs its answer), but nothing is merged.
        """
        with self._lock:
            index, _worker = self._resolve_lease_locked(lease_id)
            duplicate = self._state[index] is DONE
        return ShardSubmissionStream(self, str(lease_id), index, duplicate)

    def submit_stream(self, lease_id: str, frames: Iterable[dict]) -> dict:
        """Merge one unit submitted as a stream of event frames.

        Convenience over :meth:`begin_stream` for in-process callers
        and tests: feeds every frame (partial progress becomes visible
        in :meth:`status` as it goes), then commits the assembled
        result through the blocking-submit path — byte-identical to
        ``submit_result(lease_id, sweep_result_to_dict(result))``.
        """
        stream = self.begin_stream(lease_id)
        try:
            for frame in frames:
                stream.feed(frame)
            return stream.finish()
        except BaseException:
            stream.abort()
            raise

    # ------------------------------------------------------------------
    @staticmethod
    def _stats_store_hits(stats: dict) -> int:
        """store_hits buried in an executor's stats dict (0 if absent)."""
        cache = stats.get("evaluator_cache")
        if isinstance(cache, dict):
            try:
                return int(cache.get("store_hits", 0))
            except (TypeError, ValueError):
                return 0
        return 0

    def status(self) -> dict:
        """Progress snapshot: per-unit progress, merged records, leases.

        Beyond lease states, each unit row reports its job/record/error
        counts once submitted; ``store_hits`` aggregates the verdict
        -store hits every submitted unit's executor reported — the
        fleet-wide measure of how much simulation the shared cache
        saved — and ``records_streaming`` counts records received on
        in-flight streamed uploads that have not committed yet (each
        streaming lease row also carries its own ``records_streamed``).

        Submitted unit rows additionally report per-lease throughput
        (``elapsed_seconds``/``jobs_per_second``), and ``workers``
        aggregates units/jobs/records/store-hits/busy-seconds and
        throughput per worker — the observed-throughput signal the
        adaptive-lease-sizing roadmap item needs.
        """
        with self._lock:
            self._reclaim_expired()
            states = {
                state: sum(1 for s in self._state.values() if s is state)
                for state in (PENDING, LEASED, DONE)
            }
            now = self.clock()
            leases = []
            for index, lease_id in sorted(self._live_lease.items()):
                if self._state[index] is not LEASED:
                    continue
                _, worker_id, deadline = self._leases[lease_id]
                row = {
                    "lease_id": lease_id,
                    "shard_index": index,
                    "worker_id": worker_id,
                    "expires_in": round(deadline - now, 3),
                }
                partial = self._streaming.get(lease_id)
                if partial is not None:
                    row["records_streamed"] = partial["records"]
                    row["jobs_streamed"] = partial["jobs_done"]
                leases.append(row)
            shard_rows = []
            jobs_done = 0
            store_hits = 0
            for index in sorted(self._units):
                unit = self._units[index]
                row = {
                    "shard_index": index,
                    "state": self._state[index],
                    "jobs": len(unit.plan.jobs),
                    "skips": len(unit.plan.skipped),
                }
                result = self._results.get(index)
                if result is not None:
                    jobs_done += len(unit.plan.jobs)
                    store_hits += self._stats_store_hits(result.stats)
                    try:
                        busy = float(
                            result.stats.get("elapsed_seconds", 0.0)
                        )
                    except (TypeError, ValueError):
                        busy = 0.0
                    row.update(
                        records=len(result.sweep),
                        errors=len(result.errors),
                        worker_id=self._submitted_by.get(index),
                        elapsed_seconds=round(busy, 6),
                        jobs_per_second=round(
                            len(unit.plan.jobs) / busy, 4
                        ) if busy > 0 else 0.0,
                    )
                shard_rows.append(row)
            return {
                "num_shards": self.num_shards,
                "num_units": self.num_units,
                "lease_jobs": self.lease_jobs,
                "pending": states[PENDING],
                "leased": states[LEASED],
                "done": states[DONE],
                "complete": self._done_locked(),
                "records_merged": sum(
                    len(outcome)
                    for outcome in self._job_slots.values()
                    if isinstance(outcome, list)
                ),
                "records_streaming": sum(
                    partial["records"]
                    for partial in self._streaming.values()
                ),
                "jobs_total": sum(
                    len(unit.plan.jobs) for unit in self._units.values()
                ),
                "jobs_done": jobs_done,
                "store_hits": store_hits,
                "shards": shard_rows,
                "leases": leases,
                "leases_reclaimed": self._reclaimed,
                "workers": self._worker_rows_locked(),
            }

    # ------------------------------------------------------------------
    # Local API (the coordinating process)
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        with self._lock:
            return self._done_locked()

    def result(self) -> SweepResult:
        """The streamed-merge SweepResult (requires every unit done)."""
        with self._lock:
            if not self._done_locked():
                raise ValueError(
                    f"coordinator incomplete: {self._remaining_locked()} "
                    f"of {self.num_units} units outstanding"
                )
            shard_stats = [
                dict(self._results[index].stats)
                for index in sorted(self._results)
            ]
            merged = assemble_slots(
                dict(self._job_slots),
                dict(self._skip_slots),
                shard_stats,
                self.num_units,
                executor="coordinated",
            )
            merged.stats["leases_reclaimed"] = self._reclaimed
            if self.lease_jobs is not None:
                merged.stats["lease_jobs"] = self.lease_jobs
            return merged

    # ------------------------------------------------------------------
    # Checkpointing (restart a coordinator without re-running units)
    # ------------------------------------------------------------------
    def state_to_dict(self) -> dict:
        """Serialize shards + completed results (leases do not survive:
        an in-flight lease on restart just expires into a re-serve)."""
        with self._lock:
            state = {
                "lease_seconds": self.lease_seconds,
                "shards": [
                    shard_to_dict(self.shards[index])
                    for index in sorted(self.shards)
                ],
                "completed": {
                    str(index): sweep_result_to_dict(result)
                    for index, result in sorted(self._results.items())
                },
            }
            if self.lease_jobs is not None:
                state["lease_jobs"] = self.lease_jobs
            return state

    @classmethod
    def from_state(
        cls,
        state: dict,
        clock: Callable[[], float] = time.monotonic,
    ) -> "ShardCoordinator":
        lease_jobs = state.get("lease_jobs")
        coordinator = cls(
            [shard_from_dict(row) for row in state["shards"]],
            lease_seconds=float(state.get("lease_seconds", 300.0)),
            clock=clock,
            lease_jobs=None if lease_jobs is None else int(lease_jobs),
        )
        # restore in ascending index order: leases are handed out
        # lowest-pending-first, so hunting for the target index always
        # terminates (a checkpoint whose dict iterates out of order —
        # e.g. re-serialized with sort_keys and 10+ units — must not
        # strand the hunt on an already-leased lower index)
        for index, result in sorted(
            state.get("completed", {}).items(), key=lambda kv: int(kv[0])
        ):
            lease = coordinator.next_shard("restore")
            while lease["shard_index"] != int(index):
                lease = coordinator.next_shard("restore")
            coordinator.submit_result(lease["lease_id"], result)
        # forget the placeholder leases for units we did not restore
        with coordinator._lock:
            for lease_id, (idx, _, _) in list(coordinator._leases.items()):
                if coordinator._state[idx] is LEASED:
                    coordinator._state[idx] = PENDING
                    coordinator._live_lease.pop(idx, None)
                    del coordinator._leases[lease_id]
        return coordinator

    # ------------------------------------------------------------------
    def _resolve_lease_locked(self, lease_id: str) -> tuple[int, str]:
        """(unit index, worker_id) that ``lease_id`` submits for.

        Live and recently-superseded leases resolve exactly.  A pruned
        lease — its unit completed, or it aged off the superseded tail
        — is still honoured when it is well-formed and names a DONE
        unit: the late worker only needs a duplicate ack to move on.
        Anything else is an unknown lease.
        """
        lease_id = str(lease_id)
        entry = self._leases.get(lease_id) or self._superseded.get(lease_id)
        if entry is not None:
            return entry[0], entry[1]
        match = _LEASE_ID_RE.match(lease_id)
        if match:
            index = int(match.group(1))
            if index in self._units and self._state[index] is DONE:
                return index, "unknown"
        raise ValueError(f"unknown lease {lease_id!r}")

    def _merge_submission(
        self, lease_id: str, index: int, shard_result: SweepResult
    ) -> dict:
        """Validate a decoded unit result against its plan; commit it."""
        unit = self._units[index]
        outcomes = split_result_by_job(unit.plan, shard_result)
        with self._lock:
            if self._state[index] is DONE:  # raced a concurrent submit
                return self._duplicate_locked(index)
            entry = self._leases.get(lease_id) or self._superseded.get(
                lease_id
            )
            worker_id = entry[1] if entry is not None else "unknown"
            for global_index, outcome in zip(unit.job_indices, outcomes):
                self._job_slots[global_index] = outcome
            for global_index, skip in zip(
                unit.skip_indices, shard_result.skipped
            ):
                self._skip_slots[global_index] = skip
            self._results[index] = shard_result
            self._submitted_by[index] = worker_id
            self._state[index] = DONE
            self._retire_unit_leases_locked(index)
            self._streaming.pop(lease_id, None)
            self._observe_merge_locked(index, worker_id, shard_result)
            return {
                "accepted": True,
                "duplicate": False,
                "shard_index": index,
                "worker_id": worker_id,
                "done": self._done_locked(),
                "remaining": self._remaining_locked(),
            }

    def _observe_merge_locked(
        self, index: int, worker_id: str, shard_result: SweepResult
    ) -> None:
        """Fold one committed unit into the per-worker aggregates.

        ``busy_seconds`` is the executor-reported wall clock of the
        unit (``stats["elapsed_seconds"]``), so per-worker throughput
        reflects time actually spent executing, not merge latency.
        """
        unit = self._units[index]
        try:
            busy = float(shard_result.stats.get("elapsed_seconds", 0.0))
        except (TypeError, ValueError):
            busy = 0.0
        jobs = len(unit.plan.jobs)
        store_hits = self._stats_store_hits(shard_result.stats)
        row = self._worker_stats.setdefault(
            worker_id,
            {"units": 0, "jobs": 0, "records": 0, "errors": 0,
             "store_hits": 0, "busy_seconds": 0.0},
        )
        row["units"] += 1
        row["jobs"] += jobs
        row["records"] += len(shard_result.sweep)
        row["errors"] += len(shard_result.errors)
        row["store_hits"] += store_hits
        row["busy_seconds"] += busy
        REGISTRY.inc("coordinator_units_merged", worker=worker_id)
        REGISTRY.inc(
            "coordinator_records_merged", len(shard_result.sweep),
            worker=worker_id,
        )
        if busy > 0:
            REGISTRY.observe("unit_seconds", busy, worker=worker_id)
        record_span(
            "unit", busy, worker=worker_id, unit=index, jobs=jobs,
            records=len(shard_result.sweep),
            errors=len(shard_result.errors), store_hits=store_hits,
        )

    def _worker_rows_locked(self) -> list[dict]:
        """Per-worker throughput rows for ``status()`` (sorted)."""
        rows = []
        for worker_id in sorted(self._worker_stats):
            stats = self._worker_stats[worker_id]
            busy = stats["busy_seconds"]
            rows.append(
                {
                    "worker_id": worker_id,
                    **stats,
                    "busy_seconds": round(busy, 6),
                    "jobs_per_second": round(stats["jobs"] / busy, 4)
                    if busy > 0 else 0.0,
                }
            )
        return rows

    def _retire_unit_leases_locked(self, index: int) -> None:
        """Drop every lease record for a DONE unit — late submits for
        it resolve through the well-formed-id duplicate path instead of
        a dictionary that grows with lease churn."""
        live = self._live_lease.pop(index, None)
        if live is not None:
            self._leases.pop(live, None)
        for lease_id in [
            lid for lid, entry in self._leases.items() if entry[0] == index
        ]:
            del self._leases[lease_id]
        for lease_id in [
            lid
            for lid, entry in self._superseded.items()
            if entry[0] == index
        ]:
            del self._superseded[lease_id]

    def _duplicate_locked(self, index: int) -> dict:
        return {
            "accepted": False,
            "duplicate": True,
            "shard_index": index,
            "done": self._done_locked(),
            "remaining": self._remaining_locked(),
        }

    def _reclaim_expired(self) -> None:
        now = self.clock()
        for index, lease_id in list(self._live_lease.items()):
            if self._state[index] is not LEASED:
                continue
            entry = self._leases[lease_id]
            if entry[2] <= now:
                self._state[index] = PENDING
                self._live_lease.pop(index, None)
                # remember the superseded lease (bounded per unit) so
                # the slow worker's eventual submission is recognised
                del self._leases[lease_id]
                self._superseded[lease_id] = entry
                unit_leases = [
                    lid
                    for lid, e in self._superseded.items()
                    if e[0] == index
                ]
                for lid in unit_leases[:-SUPERSEDED_LEASE_CAP]:
                    del self._superseded[lid]
                self._reclaimed += 1

    def _done_locked(self) -> bool:
        return all(state is DONE for state in self._state.values())

    def _remaining_locked(self) -> int:
        return sum(1 for state in self._state.values() if state is not DONE)

    def __repr__(self) -> str:
        status = self.status()
        return (
            f"ShardCoordinator(units={self.num_units}, "
            f"done={status['done']}, leased={status['leased']}, "
            f"pending={status['pending']})"
        )


class ShardSubmissionStream:
    """One in-flight streamed upload for a lease (see ``begin_stream``).

    :meth:`feed` absorbs decoded event frames as they arrive off the
    wire and keeps live partial-progress counters that ``/shard/status``
    reports; :meth:`finish` validates the complete stream and commits it
    through the exact blocking-submit path (so a streamed submission is
    byte-identical to a blocking one); :meth:`abort` clears the partial
    counters when the uploader dies mid-stream.
    """

    def __init__(
        self,
        coordinator: ShardCoordinator,
        lease_id: str,
        shard_index: int,
        duplicate: bool,
    ):
        self._coordinator = coordinator
        self.lease_id = lease_id
        self.shard_index = shard_index
        self.duplicate = duplicate
        self._frames: list[dict] = []
        self._closed = False

    def feed(self, frame: dict) -> None:
        """Absorb one decoded event frame; update partial progress."""
        if self.duplicate or self._closed:
            return
        self._frames.append(frame)
        event = frame.get("event")
        if event not in ("record", "job_error", "progress"):
            return
        coordinator = self._coordinator
        with coordinator._lock:
            partial = coordinator._streaming.setdefault(
                self.lease_id, {"records": 0, "errors": 0, "jobs_done": 0}
            )
            if event == "record":
                partial["records"] += 1
            elif event == "job_error":
                partial["errors"] += 1
            else:  # progress
                try:
                    partial["jobs_done"] = int(frame.get("jobs_done", 0))
                except (TypeError, ValueError):
                    pass

    def finish(self) -> dict:
        """Assemble + commit the stream; returns the submit ack.

        Raises :class:`~repro.service.aio.events.StreamProtocolError`
        on a cut or inconsistent stream and ``ValueError`` when the
        assembled result does not match the unit's plan — in both cases
        the unit stays leased, exactly like a rejected blocking submit.
        """
        from .aio.events import assemble_stream_result

        self._closed = True
        coordinator = self._coordinator
        if self.duplicate:
            with coordinator._lock:
                return coordinator._duplicate_locked(self.shard_index)
        try:
            shard_result = assemble_stream_result(self._frames)
        finally:
            with coordinator._lock:
                coordinator._streaming.pop(self.lease_id, None)
        return coordinator._merge_submission(
            self.lease_id, self.shard_index, shard_result
        )

    def abort(self) -> None:
        """Drop the partial upload (client vanished mid-stream)."""
        self._closed = True
        with self._coordinator._lock:
            self._coordinator._streaming.pop(self.lease_id, None)


# ----------------------------------------------------------------------
# Checkpoint files (restart `repro coordinate` without losing shards)
# ----------------------------------------------------------------------
def save_checkpoint(coordinator: ShardCoordinator, path: str) -> None:
    """Write the coordinator state to ``path`` atomically.

    Temp-file + ``os.replace``, so a coordinator killed mid-write leaves
    the previous checkpoint intact — a restart never reads a torn file.
    """
    import json
    import os

    payload = json.dumps(coordinator.state_to_dict())
    temp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(temp, path)
    except OSError:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: str,
    clock: Callable[[], float] = time.monotonic,
) -> ShardCoordinator:
    """Rebuild a coordinator from a :func:`save_checkpoint` file.

    Completed units come back merged (their submissions replay through
    the normal validation path); units that were pending or leased at
    save time come back pending — an in-flight lease does not survive a
    restart, it is simply re-served.
    """
    import json

    with open(path, encoding="utf-8") as handle:
        state = json.load(handle)
    return ShardCoordinator.from_state(state, clock=clock)


__all__ = [
    "SUPERSEDED_LEASE_CAP",
    "ShardCoordinator",
    "ShardSubmissionStream",
    "load_checkpoint",
    "save_checkpoint",
]
