"""Shard coordinator: lease-based work distribution with streaming merge.

PR 2's sharding made a sweep distributable, but each worker had to be
told its ``--shard-index`` by hand and results were merged offline from
files.  :class:`ShardCoordinator` removes both: one process owns the
full :class:`~repro.service.sharding.ShardPlanner` split and serves it
to *pull-based* workers over three wire routes (mounted on
:class:`~repro.service.server.ServiceApp`):

* ``POST /shard/next``   — lease the next pending shard to a worker;
* ``POST /shard/result`` — submit one executed shard's result;
* ``GET  /shard/status`` — progress: shard states, records merged.

Results are merged *as they stream in*, using the exact semantics of
:func:`~repro.service.sharding.merge_shard_results` (each submission is
attributed back to global plan positions via
:func:`~repro.service.sharding.split_result_by_job`; assembly goes
through :func:`~repro.service.sharding.assemble_slots`), so the final
:class:`~repro.eval.jobs.SweepResult` is record-for-record identical to
a serial run — the PR 2 merge invariant, now incremental.

Fault tolerance is lease-based: every handout carries a deadline; a
worker that vanishes simply never submits, and once its lease expires
the shard is re-served to the next ``/shard/next`` caller.  Submissions
are validated against the plan before they are merged, and a stale
lease's late submission for an already-completed shard is acknowledged
but ignored (evaluation is deterministic, so whichever copy landed
first is canonical).

All methods speak wire-native dicts (the :mod:`repro.eval.export`
codecs), so the HTTP layer stays a dumb JSON shim and in-process tests
drive the identical schema.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Sequence

from ..eval.export import sweep_result_from_dict, sweep_result_to_dict
from ..eval.jobs import SweepResult
from .sharding import (
    PlanShard,
    assemble_slots,
    shard_from_dict,
    shard_to_dict,
    split_result_by_job,
)

PENDING = "pending"
LEASED = "leased"
DONE = "done"


class ShardCoordinator:
    """Serve a complete shard set to pull-based workers; merge inline.

    ``lease_seconds`` bounds how long a handed-out shard may stay
    unsubmitted before it is re-served; ``clock`` is injectable
    (monotonic seconds) so tests can expire leases without waiting.
    """

    def __init__(
        self,
        shards: Sequence[PlanShard],
        lease_seconds: float = 300.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not shards:
            raise ValueError("nothing to coordinate: empty shard set")
        num_shards = shards[0].num_shards
        indices = {shard.shard_index for shard in shards}
        if (
            len(shards) != num_shards
            or {s.num_shards for s in shards} != {num_shards}
            or indices != set(range(num_shards))
        ):
            raise ValueError(
                "coordinator needs the complete shard set of one split "
                f"(got {len(shards)} shards, indices {sorted(indices)}, "
                f"num_shards={num_shards})"
            )
        if lease_seconds <= 0:
            raise ValueError("lease_seconds must be > 0")
        self.lease_seconds = lease_seconds
        self.clock = clock
        self.shards = {shard.shard_index: shard for shard in shards}
        self.num_shards = num_shards
        self._lock = threading.Lock()
        self._state = {index: PENDING for index in self.shards}
        # lease_id -> (shard_index, worker_id, deadline); only the most
        # recent lease per shard is live, older ones are kept so a slow
        # worker's submission can still be recognised (and ignored)
        self._leases: dict[str, tuple[int, str, float]] = {}
        self._live_lease: dict[int, str] = {}
        self._lease_counter = 0
        self._results: dict[int, SweepResult] = {}
        self._submitted_by: dict[int, str] = {}
        self._job_slots: dict[int, object] = {}
        self._skip_slots: dict[int, object] = {}
        self._reclaimed = 0

    # ------------------------------------------------------------------
    # Wire API (dict in, dict out — ServiceApp routes call these)
    # ------------------------------------------------------------------
    def next_shard(self, worker_id: str = "anonymous") -> dict:
        """Lease the next pending shard to ``worker_id``.

        Returns ``{"shard": <manifest>, "lease_id", "shard_index",
        "lease_seconds"}`` when work is available; otherwise ``{"shard":
        None, "done": <bool>, "retry_after": <seconds>}`` — ``done``
        means the whole sweep is merged and the worker can exit, a
        ``retry_after`` hint means every remaining shard is leased to
        someone else right now.
        """
        with self._lock:
            self._reclaim_expired()
            for index in sorted(self._state):
                if self._state[index] is not PENDING:
                    continue
                self._lease_counter += 1
                lease_id = f"lease-{self._lease_counter}-s{index}"
                deadline = self.clock() + self.lease_seconds
                self._leases[lease_id] = (index, worker_id, deadline)
                self._live_lease[index] = lease_id
                self._state[index] = LEASED
                return {
                    "shard": shard_to_dict(self.shards[index]),
                    "shard_index": index,
                    "lease_id": lease_id,
                    "lease_seconds": self.lease_seconds,
                    "done": False,
                }
            if all(state is DONE for state in self._state.values()):
                return {"shard": None, "done": True, "retry_after": 0.0}
            now = self.clock()
            remaining = [
                deadline - now
                for index, lease_id in self._live_lease.items()
                if self._state[index] is LEASED
                for (_, _, deadline) in (self._leases[lease_id],)
            ]
            return {
                "shard": None,
                "done": False,
                "retry_after": max(0.05, min(remaining, default=0.05)),
            }

    def submit_result(self, lease_id: str, result: dict) -> dict:
        """Merge one executed shard submitted under ``lease_id``.

        The result payload is :func:`sweep_result_to_dict` output for
        the leased shard's plan.  A submission that does not match the
        plan (wrong record counts, unmatched errors) is rejected with
        ``ValueError`` and the shard stays leased — the worker is
        broken, and the lease clock is already running.
        """
        def duplicate_response(index):
            return {
                "accepted": False,
                "duplicate": True,
                "shard_index": index,
                "done": self._done_locked(),
                "remaining": self._remaining_locked(),
            }

        with self._lock:
            lease = self._leases.get(lease_id)
            if lease is None:
                raise ValueError(f"unknown lease {lease_id!r}")
            index, worker_id, _deadline = lease
            if self._state[index] is DONE:
                return duplicate_response(index)
            shard = self.shards[index]
        # decode + validate outside the lock: this is CPU work
        # proportional to shard size, and holding the lock through it
        # would stall every /shard/next poll in the fleet
        shard_result = sweep_result_from_dict(result)
        outcomes = split_result_by_job(shard.plan, shard_result)
        with self._lock:
            if self._state[index] is DONE:  # raced a concurrent submit
                return duplicate_response(index)
            for global_index, outcome in zip(shard.job_indices, outcomes):
                self._job_slots[global_index] = outcome
            for global_index, skip in zip(
                shard.skip_indices, shard_result.skipped
            ):
                self._skip_slots[global_index] = skip
            self._results[index] = shard_result
            self._submitted_by[index] = worker_id
            self._state[index] = DONE
            self._live_lease.pop(index, None)
            return {
                "accepted": True,
                "duplicate": False,
                "shard_index": index,
                "worker_id": worker_id,
                "done": self._done_locked(),
                "remaining": self._remaining_locked(),
            }

    @staticmethod
    def _stats_store_hits(stats: dict) -> int:
        """store_hits buried in an executor's stats dict (0 if absent)."""
        cache = stats.get("evaluator_cache")
        if isinstance(cache, dict):
            try:
                return int(cache.get("store_hits", 0))
            except (TypeError, ValueError):
                return 0
        return 0

    def status(self) -> dict:
        """Progress snapshot: per-shard progress, merged records, leases.

        Beyond lease states, each shard row reports its job/record/error
        counts once submitted, and ``store_hits`` aggregates the verdict
        -store hits every submitted shard's executor reported — the
        fleet-wide measure of how much simulation the shared cache
        saved.
        """
        with self._lock:
            self._reclaim_expired()
            states = {
                state: sum(1 for s in self._state.values() if s is state)
                for state in (PENDING, LEASED, DONE)
            }
            now = self.clock()
            leases = [
                {
                    "lease_id": lease_id,
                    "shard_index": index,
                    "worker_id": self._leases[lease_id][1],
                    "expires_in": round(self._leases[lease_id][2] - now, 3),
                }
                for index, lease_id in sorted(self._live_lease.items())
                if self._state[index] is LEASED
            ]
            shard_rows = []
            jobs_done = 0
            store_hits = 0
            for index in sorted(self.shards):
                shard = self.shards[index]
                row = {
                    "shard_index": index,
                    "state": self._state[index],
                    "jobs": len(shard.plan.jobs),
                    "skips": len(shard.plan.skipped),
                }
                result = self._results.get(index)
                if result is not None:
                    jobs_done += len(shard.plan.jobs)
                    store_hits += self._stats_store_hits(result.stats)
                    row.update(
                        records=len(result.sweep),
                        errors=len(result.errors),
                        worker_id=self._submitted_by.get(index),
                    )
                shard_rows.append(row)
            return {
                "num_shards": self.num_shards,
                "pending": states[PENDING],
                "leased": states[LEASED],
                "done": states[DONE],
                "complete": self._done_locked(),
                "records_merged": sum(
                    len(outcome)
                    for outcome in self._job_slots.values()
                    if isinstance(outcome, list)
                ),
                "jobs_total": sum(
                    len(shard.plan.jobs) for shard in self.shards.values()
                ),
                "jobs_done": jobs_done,
                "store_hits": store_hits,
                "shards": shard_rows,
                "leases": leases,
                "leases_reclaimed": self._reclaimed,
            }

    # ------------------------------------------------------------------
    # Local API (the coordinating process)
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        with self._lock:
            return self._done_locked()

    def result(self) -> SweepResult:
        """The streamed-merge SweepResult (requires every shard done)."""
        with self._lock:
            if not self._done_locked():
                raise ValueError(
                    f"coordinator incomplete: {self._remaining_locked()} "
                    f"of {self.num_shards} shards outstanding"
                )
            shard_stats = [
                dict(self._results[index].stats)
                for index in sorted(self._results)
            ]
            merged = assemble_slots(
                dict(self._job_slots),
                dict(self._skip_slots),
                shard_stats,
                self.num_shards,
                executor="coordinated",
            )
            merged.stats["leases_reclaimed"] = self._reclaimed
            return merged

    # ------------------------------------------------------------------
    # Checkpointing (restart a coordinator without re-running shards)
    # ------------------------------------------------------------------
    def state_to_dict(self) -> dict:
        """Serialize shards + completed results (leases do not survive:
        an in-flight lease on restart just expires into a re-serve)."""
        with self._lock:
            return {
                "lease_seconds": self.lease_seconds,
                "shards": [
                    shard_to_dict(self.shards[index])
                    for index in sorted(self.shards)
                ],
                "completed": {
                    str(index): sweep_result_to_dict(result)
                    for index, result in sorted(self._results.items())
                },
            }

    @classmethod
    def from_state(
        cls,
        state: dict,
        clock: Callable[[], float] = time.monotonic,
    ) -> "ShardCoordinator":
        coordinator = cls(
            [shard_from_dict(row) for row in state["shards"]],
            lease_seconds=float(state.get("lease_seconds", 300.0)),
            clock=clock,
        )
        # restore in ascending index order: leases are handed out
        # lowest-pending-first, so hunting for the target index always
        # terminates (a checkpoint whose dict iterates out of order —
        # e.g. re-serialized with sort_keys and 10+ shards — must not
        # strand the hunt on an already-leased lower index)
        for index, result in sorted(
            state.get("completed", {}).items(), key=lambda kv: int(kv[0])
        ):
            lease = coordinator.next_shard("restore")
            while lease["shard_index"] != int(index):
                lease = coordinator.next_shard("restore")
            coordinator.submit_result(lease["lease_id"], result)
        # forget the placeholder leases for shards we did not restore
        with coordinator._lock:
            for lease_id, (idx, _, _) in list(coordinator._leases.items()):
                if coordinator._state[idx] is LEASED:
                    coordinator._state[idx] = PENDING
                    coordinator._live_lease.pop(idx, None)
                    del coordinator._leases[lease_id]
        return coordinator

    # ------------------------------------------------------------------
    def _reclaim_expired(self) -> None:
        now = self.clock()
        for index, lease_id in list(self._live_lease.items()):
            if self._state[index] is not LEASED:
                continue
            _, _, deadline = self._leases[lease_id]
            if deadline <= now:
                self._state[index] = PENDING
                self._live_lease.pop(index, None)
                self._reclaimed += 1

    def _done_locked(self) -> bool:
        return all(state is DONE for state in self._state.values())

    def _remaining_locked(self) -> int:
        return sum(1 for state in self._state.values() if state is not DONE)

    def __repr__(self) -> str:
        status = self.status()
        return (
            f"ShardCoordinator(shards={self.num_shards}, "
            f"done={status['done']}, leased={status['leased']}, "
            f"pending={status['pending']})"
        )


# ----------------------------------------------------------------------
# Checkpoint files (restart `repro coordinate` without losing shards)
# ----------------------------------------------------------------------
def save_checkpoint(coordinator: ShardCoordinator, path: str) -> None:
    """Write the coordinator state to ``path`` atomically.

    Temp-file + ``os.replace``, so a coordinator killed mid-write leaves
    the previous checkpoint intact — a restart never reads a torn file.
    """
    import json
    import os

    payload = json.dumps(coordinator.state_to_dict())
    temp = f"{path}.tmp-{os.getpid()}"
    try:
        with open(temp, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(temp, path)
    except OSError:
        try:
            os.unlink(temp)
        except OSError:
            pass
        raise


def load_checkpoint(
    path: str,
    clock: Callable[[], float] = time.monotonic,
) -> ShardCoordinator:
    """Rebuild a coordinator from a :func:`save_checkpoint` file.

    Completed shards come back merged (their submissions replay through
    the normal validation path); shards that were pending or leased at
    save time come back pending — an in-flight lease does not survive a
    restart, it is simply re-served.
    """
    import json

    with open(path, encoding="utf-8") as handle:
        state = json.load(handle)
    return ShardCoordinator.from_state(state, clock=clock)


__all__ = ["ShardCoordinator", "load_checkpoint", "save_checkpoint"]
