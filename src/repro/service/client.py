"""Client side of the eval service: a Backend that speaks the wire API.

:class:`ServiceBackend` makes a remote eval server look like any other
registered backend — ``Session(backend="service", ...)`` or
``--backend service --url http://host:port`` on the CLI — so the sweep
planner/executor stack needs no remote-awareness at all: capabilities,
identity and generation all round-trip through the server's JSON routes.

The transport is injectable (``transport(method, path, payload) ->
response dict``).  The default is a ``urllib`` client bound to ``url``;
tests and same-process embedding use :func:`in_process_transport`, which
calls a :class:`~repro.service.server.ServiceApp` directly — the full
request/validation/serialization path, no sockets.  All transport-level
failures surface as :class:`~repro.backends.base.BackendError`, which is
exactly what the executor's :class:`~repro.eval.jobs.RetryPolicy` treats
as transient.

:func:`run_worker` is the other client role: a pull-based shard worker
that loops ``/shard/next`` → execute locally → ``/shard/result``
against a :class:`~repro.service.coordinator.ShardCoordinator` until
the coordinator reports the whole sweep merged.
"""

from __future__ import annotations

import json
import os
import socket
import time
import urllib.error
import urllib.request
from typing import Callable, Sequence

from ..models.base import Completion, GenerationConfig
from ..backends.base import Backend, BackendError, ModelCapabilities
from ..obs import REGISTRY

Transport = Callable[[str, str, "dict | None"], dict]

DEFAULT_URL = "http://127.0.0.1:8076"


class ServiceUnreachableError(BackendError):
    """Connection-class failure: nothing answered at the service URL.

    Distinct from an HTTP error status or a malformed body (the server
    *did* answer those), so callers like :func:`run_worker` can decide
    "the coordinator is gone" without swallowing real request errors.
    """


def http_transport(base_url: str, timeout: float = 30.0) -> Transport:
    """A urllib-based transport bound to ``base_url``.

    Failure classes stay distinct: an unreachable server reports
    "cannot reach", an HTTP error status carries the server's error
    detail, and a 200 whose body is not valid JSON reports "malformed
    response" with a body snippet — a proxy or wrong port answering
    with HTML must not masquerade as a connection problem.
    """

    def call(method: str, path: str, payload: dict | None = None) -> dict:
        url = base_url.rstrip("/") + path
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                body = response.read()
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 — body may not be our JSON
                detail = str(exc)
            raise BackendError(
                f"eval service {exc.code} on {path}: {detail}"
            ) from None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            # ValueError here is urlopen rejecting the URL itself
            # (unknown scheme etc.), not a body-decoding problem
            raise ServiceUnreachableError(
                f"cannot reach eval service at {base_url}: {exc}"
            ) from None
        try:
            return json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            snippet = body[:120].decode("utf-8", errors="replace")
            raise BackendError(
                f"malformed response from {base_url}{path}: {exc} "
                f"(body starts: {snippet!r})"
            ) from None

    return call


def in_process_transport(app) -> Transport:
    """Drive a :class:`ServiceApp` directly — offline, full wire schema."""

    def call(method: str, path: str, payload: dict | None = None) -> dict:
        status, body = app.handle(method, path, payload)
        if status >= 400:
            raise BackendError(
                f"eval service {status} on {path}: "
                f"{body.get('error', body)}"
            )
        return body

    return call


class ServiceBackend(Backend):
    """Backend adapter over a (remote or in-process) eval service."""

    name = "service"

    def __init__(
        self,
        url: str = DEFAULT_URL,
        transport: Transport | None = None,
        timeout: float = 30.0,
    ):
        self.url = url
        self._transport = transport or http_transport(url, timeout)
        self._described: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The server's /health payload (raises BackendError if down)."""
        return self._transport("GET", "/health", None)

    def models(self) -> list[str]:
        return list(self._transport("GET", "/models", None)["models"])

    def _describe(self, model: str) -> dict:
        cached = self._described.get(model)
        if cached is None:
            cached = self._transport("POST", "/capabilities", {"model": model})
            self._described[model] = cached
        return cached

    def capabilities(self, model: str) -> ModelCapabilities:
        described = self._describe(model)
        return ModelCapabilities(
            supports_n25=bool(described["supports_n25"]),
            max_tokens=int(described["max_tokens"]),
        )

    def identity(self, model: str) -> tuple[str, bool]:
        described = self._describe(model)
        return described["base_model"], bool(described["fine_tuned"])

    @staticmethod
    def _config_row(config: GenerationConfig) -> dict:
        return {
            "temperature": config.temperature,
            "n": config.n,
            "max_tokens": config.max_tokens,
            "top_p": config.top_p,
        }

    @staticmethod
    def _completion(row: dict) -> Completion:
        return Completion(
            text=row["text"],
            inference_seconds=float(row.get("inference_seconds", 0.0)),
            tokens=int(row.get("tokens", 0)),
        )

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        response = self._transport(
            "POST",
            "/generate",
            {
                "model": model,
                "prompt": prompt,
                "config": self._config_row(config),
            },
        )
        return [self._completion(c) for c in response["completions"]]

    def generate_batch(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        """Forward a whole batch through ``POST /generate_batch``.

        One HTTP round-trip serves N jobs (the base-class default would
        silently degrade batching into N ``/generate`` calls).  Against
        an older server without the route — or any transport failure —
        it falls back to the per-request loop, so the executor's per-job
        error isolation and retry accounting still apply.
        """
        if len(requests) <= 1:
            return super().generate_batch(model, requests)
        payload = {
            "model": model,
            "requests": [
                {"prompt": prompt, "config": self._config_row(config)}
                for prompt, config in requests
            ],
        }
        try:
            response = self._transport("POST", "/generate_batch", payload)
        except BackendError:
            return super().generate_batch(model, requests)
        batches = [
            [self._completion(c) for c in batch]
            for batch in response["batches"]
        ]
        if len(batches) != len(requests):
            raise BackendError(
                f"generate_batch returned {len(batches)} batches "
                f"for {len(requests)} requests"
            )
        return batches

    def run_remote_sweep(
        self,
        config=None,
        models: Sequence[str] | None = None,
    ):
        """Execute a whole sweep server-side via POST /sweep.

        Unlike :meth:`generate` (per-job traffic planned client-side),
        this ships the config across and deserializes the full
        :class:`~repro.eval.jobs.SweepResult` — one request, the
        server's worker pool does the fan-out.
        """
        from ..eval.export import config_to_dict, sweep_result_from_dict

        payload: dict = {}
        if config is not None:
            payload["config"] = config_to_dict(config)
        if models is not None:
            payload["models"] = list(models)
        return sweep_result_from_dict(
            self._transport("POST", "/sweep", payload)
        )


# ----------------------------------------------------------------------
# Pull-based shard worker (the client half of the coordinator)
# ----------------------------------------------------------------------
def default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def run_worker(
    url: str | None = None,
    transport: Transport | None = None,
    session=None,
    worker_id: str | None = None,
    poll_seconds: float = 0.5,
    sleep: Callable[[float], None] = time.sleep,
    max_idle_polls: int | None = None,
    on_shard: Callable[[int, "SweepResult"], None] | None = None,
    telemetry_seconds: float | None = 2.0,
) -> dict:
    """Pull shards from a coordinator until it reports the sweep done.

    The worker needs no index bookkeeping: it leases whatever shard the
    coordinator serves next (``POST /shard/next``), executes the shard's
    plan on its *local* session (backend, executor, workers, verdict
    store — all the worker's own configuration), and submits the result
    (``POST /shard/result``), where the coordinator merges it inline.
    When no shard is pending but others are still leased, the worker
    naps ``min(retry_after, poll_seconds)`` and asks again — it picks up
    any lease that expires.  ``max_idle_polls`` bounds those naps for
    tests and batch jobs (``None`` = wait as long as it takes).

    Returns a summary dict: shards run, jobs, records, errors, plus
    ``coordinator_gone=True`` if a coordinator this worker had already
    reached vanished between polls (it finished and stopped serving, or
    was shut down) — that ends the loop cleanly rather than erroring.

    Every ``telemetry_seconds`` (``None``/``0`` disables) the worker
    pushes its metrics-registry deltas to the coordinator's
    ``POST /telemetry`` route so one scrape of the coordinator covers
    the fleet; telemetry is strictly best-effort and can neither slow
    down nor fail the work loop.
    """
    if transport is None:
        if url is None:
            raise ValueError("run_worker needs a coordinator url or transport")
        transport = http_transport(url)
    if session is None:
        from ..api import Session

        session = Session()
    from ..eval.export import sweep_result_to_dict
    from ..obs.collect import TelemetryPusher
    from .sharding import shard_from_dict

    worker_id = worker_id or default_worker_id()
    pusher = None
    if telemetry_seconds:
        pusher = TelemetryPusher(
            lambda payload: transport("POST", "/telemetry", payload),
            worker_id,
            interval=telemetry_seconds,
        )
    summary = {
        "worker_id": worker_id,
        "shards": 0,
        "jobs": 0,
        "records": 0,
        "errors": 0,
        "idle_polls": 0,
        "coordinator_gone": False,
    }
    idle = 0
    contacted = False
    while True:
        try:
            response = transport(
                "POST", "/shard/next", {"worker_id": worker_id}
            )
        except ServiceUnreachableError:
            # a coordinator we had already reached has gone away while we
            # held no work: it finished (and stopped serving) or was shut
            # down — either way there is nothing left for this worker.
            # Never having reached it at all is a real error, as is any
            # answered-but-failed request (HTTP status, malformed body).
            if not contacted:
                raise
            summary["coordinator_gone"] = True
            break
        contacted = True
        if pusher is not None:
            pusher.maybe_push()
        if response.get("done"):
            break
        if response.get("shard") is None:
            idle += 1
            summary["idle_polls"] += 1
            if max_idle_polls is not None and idle >= max_idle_polls:
                break
            sleep(
                min(float(response.get("retry_after") or poll_seconds),
                    poll_seconds)
            )
            continue
        idle = 0
        shard = shard_from_dict(response["shard"])
        REGISTRY.inc("worker_units_leased", worker=worker_id)
        result = session.run_plan(shard.plan)
        payload = {
            "lease_id": response["lease_id"],
            "shard_index": shard.shard_index,
            "result": sweep_result_to_dict(result),
        }
        # the submit is the one request whose loss wastes real work (a
        # whole executed shard would sit out the lease and re-run), so
        # retry connection blips a few times before giving up; answered
        # failures (HTTP status, malformed body) still raise immediately
        for attempt in range(5):
            try:
                ack = transport("POST", "/shard/result", payload)
                break
            except ServiceUnreachableError:
                if attempt == 4:
                    raise
                sleep(max(poll_seconds, 0.1))
        REGISTRY.inc("worker_units_submitted", worker=worker_id)
        REGISTRY.inc(
            "worker_records_submitted", len(result.sweep), worker=worker_id
        )
        summary["shards"] += 1
        summary["jobs"] += len(shard.plan.jobs)
        summary["records"] += len(result.sweep)
        summary["errors"] += len(result.errors)
        if pusher is not None:
            pusher.maybe_push()
        if on_shard is not None:
            on_shard(shard.shard_index, result)
        if ack.get("done"):
            # this submission completed the sweep — exit now rather
            # than racing a coordinator that may stop serving
            break
    if pusher is not None and not summary["coordinator_gone"]:
        # flush whatever accumulated since the last interval so short
        # runs still land one complete push before the worker exits
        pusher.push()
    return summary
