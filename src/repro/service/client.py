"""Client side of the eval service: a Backend that speaks the wire API.

:class:`ServiceBackend` makes a remote eval server look like any other
registered backend — ``Session(backend="service", ...)`` or
``--backend service --url http://host:port`` on the CLI — so the sweep
planner/executor stack needs no remote-awareness at all: capabilities,
identity and generation all round-trip through the server's JSON routes.

The transport is injectable (``transport(method, path, payload) ->
response dict``).  The default is a ``urllib`` client bound to ``url``;
tests and same-process embedding use :func:`in_process_transport`, which
calls a :class:`~repro.service.server.ServiceApp` directly — the full
request/validation/serialization path, no sockets.  All transport-level
failures surface as :class:`~repro.backends.base.BackendError`, which is
exactly what the executor's :class:`~repro.eval.jobs.RetryPolicy` treats
as transient.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Callable, Sequence

from ..models.base import Completion, GenerationConfig
from ..backends.base import Backend, BackendError, ModelCapabilities

Transport = Callable[[str, str, "dict | None"], dict]

DEFAULT_URL = "http://127.0.0.1:8076"


def http_transport(base_url: str, timeout: float = 30.0) -> Transport:
    """A urllib-based transport bound to ``base_url``."""

    def call(method: str, path: str, payload: dict | None = None) -> dict:
        url = base_url.rstrip("/") + path
        data = None if payload is None else json.dumps(payload).encode()
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"},
            method=method,
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 — body may not be our JSON
                detail = str(exc)
            raise BackendError(
                f"eval service {exc.code} on {path}: {detail}"
            ) from None
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise BackendError(
                f"cannot reach eval service at {base_url}: {exc}"
            ) from None

    return call


def in_process_transport(app) -> Transport:
    """Drive a :class:`ServiceApp` directly — offline, full wire schema."""

    def call(method: str, path: str, payload: dict | None = None) -> dict:
        status, body = app.handle(method, path, payload)
        if status >= 400:
            raise BackendError(
                f"eval service {status} on {path}: "
                f"{body.get('error', body)}"
            )
        return body

    return call


class ServiceBackend(Backend):
    """Backend adapter over a (remote or in-process) eval service."""

    name = "service"

    def __init__(
        self,
        url: str = DEFAULT_URL,
        transport: Transport | None = None,
        timeout: float = 30.0,
    ):
        self.url = url
        self._transport = transport or http_transport(url, timeout)
        self._described: dict[str, dict] = {}

    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The server's /health payload (raises BackendError if down)."""
        return self._transport("GET", "/health", None)

    def models(self) -> list[str]:
        return list(self._transport("GET", "/models", None)["models"])

    def _describe(self, model: str) -> dict:
        cached = self._described.get(model)
        if cached is None:
            cached = self._transport("POST", "/capabilities", {"model": model})
            self._described[model] = cached
        return cached

    def capabilities(self, model: str) -> ModelCapabilities:
        described = self._describe(model)
        return ModelCapabilities(
            supports_n25=bool(described["supports_n25"]),
            max_tokens=int(described["max_tokens"]),
        )

    def identity(self, model: str) -> tuple[str, bool]:
        described = self._describe(model)
        return described["base_model"], bool(described["fine_tuned"])

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        response = self._transport(
            "POST",
            "/generate",
            {
                "model": model,
                "prompt": prompt,
                "config": {
                    "temperature": config.temperature,
                    "n": config.n,
                    "max_tokens": config.max_tokens,
                    "top_p": config.top_p,
                },
            },
        )
        return [
            Completion(
                text=c["text"],
                inference_seconds=float(c.get("inference_seconds", 0.0)),
                tokens=int(c.get("tokens", 0)),
            )
            for c in response["completions"]
        ]

    def run_remote_sweep(
        self,
        config=None,
        models: Sequence[str] | None = None,
    ):
        """Execute a whole sweep server-side via POST /sweep.

        Unlike :meth:`generate` (per-job traffic planned client-side),
        this ships the config across and deserializes the full
        :class:`~repro.eval.jobs.SweepResult` — one request, the
        server's worker pool does the fan-out.
        """
        from ..eval.export import config_to_dict, sweep_result_from_dict

        payload: dict = {}
        if config is not None:
            payload["config"] = config_to_dict(config)
        if models is not None:
            payload["models"] = list(models)
        return sweep_result_from_dict(
            self._transport("POST", "/sweep", payload)
        )
