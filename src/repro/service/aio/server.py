"""Asyncio eval service: the ServiceApp routes plus NDJSON streaming.

:class:`AsyncEvalService` is the ``asyncio.start_server`` sibling of
:class:`~repro.service.server.EvalService`.  Routing, validation and
serialization are the *same* :class:`~repro.service.server.ServiceApp`
— every JSON route (``/health`` … ``/shard/status``) answers identically
— but blocking handlers run on the loop's thread pool so one process
keeps answering health checks mid-sweep, and three routes exist only
here because they need a connection that stays open:

* ``POST /sweep/stream``        — plan server-side, execute on an
  :class:`~repro.service.aio.executor.AsyncSweepExecutor`, and emit
  :mod:`~repro.service.aio.events` frames as NDJSON while jobs run.
  A client that hangs up mid-stream cancels every in-flight job.
* ``GET /shard/status/stream``  — live coordinator observation: a
  ``status`` frame whenever progress changes, a ``done`` frame when the
  sweep is fully merged (404-equivalent error if no coordinator).
* ``POST /shard/result/stream`` — the streamed-upload twin of
  ``/shard/result``: a worker ships NDJSON event frames as its jobs
  finish, the coordinator tracks partial progress live, and the body's
  terminal ``done`` frame is answered with the normal submit ack.

The HTTP dialect is deliberately minimal: one request per connection,
``Connection: close``, JSON responses carry ``Content-Length``, streamed
responses are close-delimited ``application/x-ndjson``.  Both the sync
``urllib`` client and the asyncio transport speak it.

Lifecycle mirrors ``EvalService``: ``start()``/``stop()`` bridge the
loop onto a daemon thread for sync callers and tests (``port=0`` picks
a free port), ``serve_forever()`` blocks (the CLI ``serve --aio``
path), and ``start_async()``/``stop_async()`` embed in a caller's loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import threading
from urllib.parse import parse_qs

from ..server import RAW_TEXT_KEY, ServiceApp
from ...backends.base import BackendError
from ...eval.export import config_from_dict
from .events import (
    StreamProtocolError,
    decode_frame,
    encode_frame,
    metric_frame,
    status_frame,
)
from .executor import AsyncSweepExecutor
from .transport import STREAM_LIMIT, close_writer

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
             500: "Internal Server Error"}


class AsyncEvalService:
    """A Session served over asyncio; ``port=0`` picks a free port."""

    def __init__(
        self,
        session,
        host: str = "127.0.0.1",
        port: int = 8076,
        coordinator=None,
        status_poll_seconds: float = 0.2,
    ):
        self.app = ServiceApp(session, coordinator=coordinator)
        self.host = host
        self.port = port
        self.status_poll_seconds = status_poll_seconds
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread_error: BaseException | None = None

    # ------------------------------------------------------------------
    @property
    def coordinator(self):
        return self.app.coordinator

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # In-loop lifecycle
    # ------------------------------------------------------------------
    async def start_async(self) -> str:
        """Bind and serve inside the caller's event loop."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self.port,
                limit=STREAM_LIMIT,
            )
            self.port = self._server.sockets[0].getsockname()[1]
        return self.url

    async def stop_async(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "AsyncEvalService":
        await self.start_async()
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.stop_async()

    # ------------------------------------------------------------------
    # Thread-bridged lifecycle (sync callers: tests, CLI, coordinate)
    # ------------------------------------------------------------------
    async def _run_until_stopped(self, started: threading.Event) -> None:
        try:
            await self.start_async()
        except BaseException as exc:  # surface bind failures in start()
            self._thread_error = exc
            started.set()
            raise
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        started.set()
        try:
            await self._stop_event.wait()
        finally:
            await self.stop_async()

    def start(self) -> str:
        """Serve on a daemon thread (own event loop); returns the URL."""
        if self._thread is not None:
            return self.url
        started = threading.Event()
        self._thread_error = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._run_until_stopped(started)),
            name="aio-eval-service",
            daemon=True,
        )
        self._thread.start()
        started.wait(timeout=10)
        if self._thread_error is not None:
            error, self._thread_error = self._thread_error, None
            self._thread = None
            raise error
        return self.url

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            with contextlib.suppress(RuntimeError):  # loop already gone
                self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self._loop = None
        self._stop_event = None

    def __enter__(self) -> "AsyncEvalService":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI path)."""

        async def main() -> None:
            await self.start_async()
            try:
                await asyncio.Event().wait()  # until cancelled/interrupted
            finally:
                await self.stop_async()

        asyncio.run(main())

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, query, payload = request
            route = (method, path.rstrip("/") or "/")
            if route == ("POST", "/sweep/stream"):
                await self._stream_sweep(reader, writer, payload or {})
            elif route == ("GET", "/shard/status/stream"):
                await self._stream_status(reader, writer, query)
            elif route == ("POST", "/shard/result/stream"):
                await self._stream_submit(reader, writer, query)
            else:
                # ServiceApp handlers can block for a whole sweep; keep
                # the loop free to answer health checks and streams
                status, body = await asyncio.get_running_loop(
                ).run_in_executor(None, self.app.handle, method, path, payload)
                if RAW_TEXT_KEY in body:
                    await self._respond_text(writer, status, body)
                else:
                    await self._respond_json(writer, status, body)
        except _BadRequest as exc:
            with contextlib.suppress(ConnectionError, OSError):
                await self._respond_json(writer, 400, {"error": str(exc)})
        except (ConnectionError, OSError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except asyncio.CancelledError:
            # server torn down with this connection mid-request: the
            # streaming helpers were asked to cancel and loop teardown
            # settles them — ending this handler quietly keeps shutdown
            # free of spurious "unhandled CancelledError" callbacks
            pass
        finally:
            await close_writer(writer)

    @staticmethod
    async def _read_request(reader: asyncio.StreamReader):
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, target, _version = (
                request_line.decode("ascii").split(None, 2)
            )
        except (UnicodeDecodeError, ValueError):
            raise _BadRequest(
                f"malformed request line: {request_line[:80]!r}"
            ) from None
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest(
                f"bad Content-Length {headers.get('content-length')!r}"
            ) from None
        body = await reader.readexactly(length) if length else b""
        payload = None
        if body:
            try:
                payload = json.loads(body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise _BadRequest(f"invalid JSON body: {exc}") from None
        path, _, query_text = target.partition("?")
        query = {
            key: values[-1]
            for key, values in parse_qs(query_text).items()
        }
        return method.upper(), path, query, payload

    @staticmethod
    async def _respond_json(
        writer: asyncio.StreamWriter, status: int, body: dict
    ) -> None:
        data = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + data)
        await writer.drain()

    @staticmethod
    async def _respond_text(
        writer: asyncio.StreamWriter, status: int, body: dict
    ) -> None:
        data = body[RAW_TEXT_KEY].encode("utf-8")
        content_type = body.get("content_type", "text/plain")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Error')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(data)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + data)
        await writer.drain()

    @staticmethod
    async def _start_ndjson(writer: asyncio.StreamWriter) -> None:
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n"
            b"\r\n"
        )
        await writer.drain()

    async def _write_frame(
        self, writer: asyncio.StreamWriter, frame: dict
    ) -> None:
        if writer.transport.is_closing():
            raise ConnectionResetError("stream client disconnected")
        writer.write(encode_frame(frame))
        await writer.drain()

    async def _pump_frames(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        frames,
    ) -> None:
        """Write an async frame iterator to the client, watching for
        hang-ups.

        Writes only surface a dead peer on the *next* write, which may
        be a slow job away — so a watcher task waits for EOF on the
        connection's read side (our protocol never sends anything after
        the request, so any read completion means the client is gone)
        and aborts the stream immediately.  The caller's ``finally``
        closes the frame generator, cancelling in-flight jobs.
        """
        watcher = asyncio.create_task(reader.read(1))
        iterator = frames.__aiter__()
        step: "asyncio.Task | None" = None
        cancelled = False
        try:
            while True:
                step = asyncio.create_task(iterator.__anext__())
                await asyncio.wait(
                    {step, watcher}, return_when=asyncio.FIRST_COMPLETED
                )
                if not step.done():
                    raise ConnectionResetError("stream client disconnected")
                try:
                    frame = step.result()
                except StopAsyncIteration:
                    break
                finally:
                    step = None  # consumed: nothing to clean up
                await self._write_frame(writer, frame)
        except asyncio.CancelledError:
            cancelled = True
            raise
        finally:
            # reap both helper tasks; a still-pending __anext__ leaves
            # the generator "running" and its aclose() would fail.  When
            # this handler is itself being cancelled (server shutdown),
            # only *request* their cancellation — awaiting here would
            # swallow the re-delivered CancelledError and leave the task
            # in a not-cancelled limbo; teardown settles them instead.
            for task in (step, watcher):
                if task is not None and not task.done():
                    task.cancel()
                if task is not None and not cancelled:
                    with contextlib.suppress(
                        asyncio.CancelledError, StopAsyncIteration
                    ):
                        await task

    # ------------------------------------------------------------------
    # Streaming routes
    # ------------------------------------------------------------------
    def _stream_executor(self, payload: dict) -> AsyncSweepExecutor:
        session = self.app.session
        return AsyncSweepExecutor(
            session.backend,
            evaluator=session.evaluator,
            concurrency=int(
                payload.get("concurrency") or max(session.workers, 1)
            ),
            retry=session.retry,
            batch_size=int(payload.get("batch_size") or session.batch_size),
        )

    async def _stream_sweep(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        payload: dict,
    ) -> None:
        try:
            config = (
                config_from_dict(payload["config"])
                if payload.get("config") is not None
                else None
            )
            # planning interrogates backend.models()/capabilities() —
            # blocking I/O on remote backends, so off the loop it goes
            plan = await asyncio.get_running_loop().run_in_executor(
                None, self.app.session.plan, config, payload.get("models")
            )
            executor = self._stream_executor(payload)
        except (BackendError, KeyError, TypeError, ValueError) as exc:
            raise _BadRequest(f"bad sweep request: {exc}") from None
        await self._start_ndjson(writer)
        stream = executor.stream(plan)
        try:
            await self._pump_frames(reader, writer, stream)
        finally:
            # client hang-ups land here as ConnectionError; closing the
            # generator cancels every in-flight job before we return.
            # During server shutdown the generator may still be settling
            # inside its cancelled __anext__ — then aclose() refuses
            # ("already running") and teardown finishes the job instead.
            with contextlib.suppress(RuntimeError):
                await stream.aclose()

    async def _stream_submit(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        query: dict,
    ) -> None:
        """``POST /shard/result/stream?lease_id=...`` — streamed upload.

        The request body is NDJSON event frames (the worker→coordinator
        direction of the :mod:`~repro.service.aio.events` codec); the
        terminal ``done`` frame delimits the body, after which the
        normal submit ack is answered as JSON.  Partial progress is
        visible in ``/shard/status`` while the upload is in flight; a
        client that vanishes mid-upload is aborted without merging.
        """
        coordinator = self.app.coordinator
        if coordinator is None:
            raise _BadRequest(
                "no shard coordinator attached to this service "
                "(start one with Session.coordinate / `repro coordinate`)"
            )
        lease_id = query.get("lease_id")
        if not lease_id:
            raise _BadRequest(
                "shard/result/stream needs a lease_id query parameter"
            )
        try:
            stream = coordinator.begin_stream(lease_id)
        except ValueError as exc:
            raise _BadRequest(str(exc)) from None
        try:
            while True:
                line = await reader.readline()
                if not line:
                    stream.abort()
                    return  # uploader vanished; nothing to answer
                if not line.strip():
                    continue  # blank keep-alive
                frame = decode_frame(line)
                stream.feed(frame)
                if frame.get("event") == "done":
                    break
            # assembly + plan validation is CPU work proportional to
            # unit size — off the loop, like every blocking route
            ack = await asyncio.get_running_loop().run_in_executor(
                None, stream.finish
            )
        except (StreamProtocolError, ValueError) as exc:
            stream.abort()
            raise _BadRequest(f"bad submission stream: {exc}") from None
        except BaseException:
            stream.abort()
            raise
        await self._respond_json(writer, 200, ack)

    async def _status_frames(self, coordinator, poll: float):
        last = None
        merged_last = None
        while True:
            status = coordinator.status()
            # leases carry live expiry countdowns; only re-emit when the
            # actual progress shape changes
            key = (status["pending"], status["leased"], status["done"],
                   status["records_merged"],
                   status.get("records_streaming", 0),
                   status.get("store_hits", 0))
            if key != last:
                last = key
                # observational companion frame: per-worker throughput
                # aggregates, emitted when a new merge landed.  It goes
                # *before* the status frame so the complete=true status
                # stays the terminal frame; old clients skip unknown
                # events (decode_stream is lenient), and record/merge
                # parity is untouched.
                merged = status["records_merged"]
                workers = status.get("workers") or []
                if workers and merged != merged_last:
                    merged_last = merged
                    yield metric_frame({
                        "records_merged": merged,
                        "store_hits": status.get("store_hits", 0),
                        "workers": workers,
                    })
                yield status_frame(status)
            if status["complete"]:
                return  # the complete=true status frame is the terminal
            await asyncio.sleep(poll)

    async def _stream_status(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        query: dict,
    ) -> None:
        coordinator = self.app.coordinator
        if coordinator is None:
            raise _BadRequest(
                "no shard coordinator attached to this service "
                "(start one with Session.coordinate / `repro coordinate`)"
            )
        try:
            poll = float(query.get("poll") or self.status_poll_seconds)
        except ValueError:
            raise _BadRequest(f"bad poll value {query.get('poll')!r}") from None
        poll = min(max(poll, 0.02), 10.0)
        await self._start_ndjson(writer)
        frames = self._status_frames(coordinator, poll)
        try:
            await self._pump_frames(reader, writer, frames)
        finally:
            with contextlib.suppress(RuntimeError):
                await frames.aclose()


class _BadRequest(ValueError):
    """Route-level 400 with a client-visible message."""


def serve_async(
    backend=None,
    workers: int = 1,
    host: str = "127.0.0.1",
    port: int = 8076,
) -> AsyncEvalService:
    """Build an AsyncEvalService over a fresh Session (not yet started)."""
    from ...api import Session

    return AsyncEvalService(
        Session(backend=backend, workers=workers), host, port
    )


__all__ = ["AsyncEvalService", "serve_async"]
