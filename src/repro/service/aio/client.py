"""Streaming sweep client: consume NDJSON event streams, reassemble.

Two consumption styles over the same wire protocol
(:mod:`~repro.service.aio.events`):

* sync generators (:func:`iter_sweep_events`, :func:`iter_status_events`)
  over ``urllib`` — the response body streams line by line as the server
  produces it, so a plain ``for`` loop observes a sweep live with no
  asyncio in sight (the CLI ``sweep --stream`` path);
* async generators (:func:`aiter_sweep_events`) over the non-blocking
  :mod:`~repro.service.aio.transport` for callers already in a loop.

:func:`stream_sweep` / :func:`astream_sweep` are the one-call versions:
consume the whole stream (forwarding every frame to an observer
callback) and reassemble the terminal-validated
:class:`~repro.eval.jobs.SweepResult` via
:func:`~repro.service.aio.events.assemble_stream_result` — lossless, so
the streamed records match a serial run byte-for-byte once exported.

Abandoning either generator mid-stream closes the connection, which the
server takes as the signal to cancel every in-flight job.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import urllib.error
import urllib.request
from typing import AsyncIterator, Callable, Iterator

from ..client import ServiceUnreachableError
from ...backends.base import BackendError
from ...eval.export import config_to_dict
from ...eval.jobs import SweepResult
from .events import assemble_stream_result, decode_frame
from .transport import close_writer, open_stream


def _sweep_payload(
    config=None,
    models=None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
) -> dict:
    payload: dict = {}
    if config is not None:
        payload["config"] = config_to_dict(config)
    if models is not None:
        payload["models"] = list(models)
    if concurrency is not None:
        payload["concurrency"] = int(concurrency)
    if batch_size is not None:
        payload["batch_size"] = int(batch_size)
    return payload


def _open_sync(
    url: str, method: str, path: str, payload: "dict | None", timeout: float
):
    """urllib request against a streaming route; returns the response."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        return urllib.request.urlopen(request, timeout=timeout)
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8"))["error"]
        except Exception:  # noqa: BLE001 — body may not be our JSON
            detail = str(exc)
        raise BackendError(
            f"eval service {exc.code} on {path}: {detail}"
        ) from None
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc}"
        ) from None


def _iter_ndjson(response, url: str) -> Iterator[dict]:
    """Yield decoded frames from a live response; wrap transport faults.

    A timeout, reset or truncated chunk mid-body must surface as
    :class:`ServiceUnreachableError` (the sync transport's taxonomy),
    not a raw socket exception the CLI would traceback on.
    """
    with response:
        while True:
            try:
                line = response.readline()
            except (OSError, ValueError, http.client.HTTPException) as exc:
                raise ServiceUnreachableError(
                    f"event stream from {url} interrupted: "
                    f"{exc or type(exc).__name__}"
                ) from None
            if not line:
                return
            if line.strip():
                yield decode_frame(line)


def iter_sweep_events(
    url: str,
    config=None,
    models=None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> Iterator[dict]:
    """Yield decoded frames from ``POST /sweep/stream`` as they arrive.

    Frames surface live (the HTTP response is close-delimited NDJSON, so
    iteration blocks only until the *next* line, not the whole sweep).
    Dropping the generator early closes the connection — the server
    cancels the sweep's in-flight jobs.
    """
    response = _open_sync(
        url, "POST", "/sweep/stream",
        _sweep_payload(config, models, concurrency, batch_size), timeout,
    )
    yield from _iter_ndjson(response, url)


def stream_sweep(
    url: str,
    config=None,
    models=None,
    on_event: "Callable[[dict], None] | None" = None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> SweepResult:
    """Run a remote sweep via the stream route; return the full result.

    Every frame is forwarded to ``on_event`` as it lands (progress
    rendering), and the stream is reassembled against its lossless
    terminal frame — a cut or inconsistent stream raises
    :class:`~repro.service.aio.events.StreamProtocolError` instead of
    returning partial data.
    """
    frames = []
    for frame in iter_sweep_events(
        url, config=config, models=models, concurrency=concurrency,
        batch_size=batch_size, timeout=timeout,
    ):
        if on_event is not None:
            on_event(frame)
        frames.append(frame)
    return assemble_stream_result(frames)


def iter_status_events(
    url: str,
    poll: "float | None" = None,
    timeout: float = 300.0,
) -> Iterator[dict]:
    """Yield coordinator status frames from ``GET /shard/status/stream``.

    One frame per progress change; the frame with ``complete == true``
    is the terminal — the server closes the stream after it.
    """
    path = "/shard/status/stream"
    if poll is not None:
        path += f"?poll={float(poll)}"
    response = _open_sync(url, "GET", path, None, timeout)
    yield from _iter_ndjson(response, url)


# ----------------------------------------------------------------------
# Async variants (callers already under an event loop)
# ----------------------------------------------------------------------
async def aiter_sweep_events(
    url: str,
    config=None,
    models=None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> AsyncIterator[dict]:
    """Async twin of :func:`iter_sweep_events`."""
    reader, writer = await open_stream(
        "POST",
        url.rstrip("/") + "/sweep/stream",
        _sweep_payload(config, models, concurrency, batch_size),
        timeout,
    )
    try:
        while True:
            try:
                # per-line deadline, matching the sync twin's socket
                # timeout: a wedged server raises instead of hanging
                line = await asyncio.wait_for(reader.readline(), timeout)
            except (OSError, ValueError, asyncio.TimeoutError) as exc:
                raise ServiceUnreachableError(
                    f"event stream from {url} interrupted: "
                    f"{exc or type(exc).__name__}"
                ) from None
            if not line:
                break
            if line.strip():
                yield decode_frame(line)
    finally:
        await close_writer(writer)


async def astream_sweep(
    url: str,
    config=None,
    models=None,
    on_event: "Callable[[dict], None] | None" = None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> SweepResult:
    """Async twin of :func:`stream_sweep`."""
    frames = []
    stream = aiter_sweep_events(
        url, config=config, models=models, concurrency=concurrency,
        batch_size=batch_size, timeout=timeout,
    )
    try:
        async for frame in stream:
            if on_event is not None:
                on_event(frame)
            frames.append(frame)
    finally:
        await stream.aclose()
    return assemble_stream_result(frames)


__all__ = [
    "aiter_sweep_events",
    "astream_sweep",
    "iter_status_events",
    "iter_sweep_events",
    "stream_sweep",
]
