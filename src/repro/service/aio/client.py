"""Streaming sweep client: consume NDJSON event streams, reassemble.

Two consumption styles over the same wire protocol
(:mod:`~repro.service.aio.events`):

* sync generators (:func:`iter_sweep_events`, :func:`iter_status_events`)
  over ``urllib`` — the response body streams line by line as the server
  produces it, so a plain ``for`` loop observes a sweep live with no
  asyncio in sight (the CLI ``sweep --stream`` path);
* async generators (:func:`aiter_sweep_events`) over the non-blocking
  :mod:`~repro.service.aio.transport` for callers already in a loop.

:func:`stream_sweep` / :func:`astream_sweep` are the one-call versions:
consume the whole stream (forwarding every frame to an observer
callback) and reassemble the terminal-validated
:class:`~repro.eval.jobs.SweepResult` via
:func:`~repro.service.aio.events.assemble_stream_result` — lossless, so
the streamed records match a serial run byte-for-byte once exported.

Abandoning either generator mid-stream closes the connection, which the
server takes as the signal to cancel every in-flight job.

The module also holds the asyncio worker fleet: :func:`run_worker_async`
is the coroutine sibling of :func:`~repro.service.client.run_worker`
that keeps several leased work units in flight at once and submits each
over the streamed-upload route (:func:`submit_result_stream`) as its
jobs finish — falling back to the blocking submit when the coordinator
does not speak the stream, so executed work is never thrown away.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import urllib.error
import urllib.request
from typing import AsyncIterator, Callable, Iterator
from urllib.parse import quote

from ..client import ServiceUnreachableError, default_worker_id
from ...backends.base import BackendError
from ...eval.export import config_to_dict
from ...eval.jobs import SweepResult
from .events import assemble_stream_result, decode_frame, encode_frame
from .executor import AsyncSweepExecutor
from .transport import (
    close_writer,
    open_stream,
    open_upload,
    read_upload_response,
    request_json,
)


def _sweep_payload(
    config=None,
    models=None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
) -> dict:
    payload: dict = {}
    if config is not None:
        payload["config"] = config_to_dict(config)
    if models is not None:
        payload["models"] = list(models)
    if concurrency is not None:
        payload["concurrency"] = int(concurrency)
    if batch_size is not None:
        payload["batch_size"] = int(batch_size)
    return payload


def _open_sync(
    url: str, method: str, path: str, payload: "dict | None", timeout: float
):
    """urllib request against a streaming route; returns the response."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url.rstrip("/") + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        return urllib.request.urlopen(request, timeout=timeout)
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read().decode("utf-8"))["error"]
        except Exception:  # noqa: BLE001 — body may not be our JSON
            detail = str(exc)
        raise BackendError(
            f"eval service {exc.code} on {path}: {detail}"
        ) from None
    except (urllib.error.URLError, OSError, ValueError) as exc:
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc}"
        ) from None


def _iter_ndjson(response, url: str) -> Iterator[dict]:
    """Yield decoded frames from a live response; wrap transport faults.

    A timeout, reset or truncated chunk mid-body must surface as
    :class:`ServiceUnreachableError` (the sync transport's taxonomy),
    not a raw socket exception the CLI would traceback on.
    """
    with response:
        while True:
            try:
                line = response.readline()
            except (OSError, ValueError, http.client.HTTPException) as exc:
                raise ServiceUnreachableError(
                    f"event stream from {url} interrupted: "
                    f"{exc or type(exc).__name__}"
                ) from None
            if not line:
                return
            if line.strip():
                yield decode_frame(line)


def iter_sweep_events(
    url: str,
    config=None,
    models=None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> Iterator[dict]:
    """Yield decoded frames from ``POST /sweep/stream`` as they arrive.

    Frames surface live (the HTTP response is close-delimited NDJSON, so
    iteration blocks only until the *next* line, not the whole sweep).
    Dropping the generator early closes the connection — the server
    cancels the sweep's in-flight jobs.
    """
    response = _open_sync(
        url, "POST", "/sweep/stream",
        _sweep_payload(config, models, concurrency, batch_size), timeout,
    )
    yield from _iter_ndjson(response, url)


def stream_sweep(
    url: str,
    config=None,
    models=None,
    on_event: "Callable[[dict], None] | None" = None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> SweepResult:
    """Run a remote sweep via the stream route; return the full result.

    Every frame is forwarded to ``on_event`` as it lands (progress
    rendering), and the stream is reassembled against its lossless
    terminal frame — a cut or inconsistent stream raises
    :class:`~repro.service.aio.events.StreamProtocolError` instead of
    returning partial data.
    """
    frames = []
    for frame in iter_sweep_events(
        url, config=config, models=models, concurrency=concurrency,
        batch_size=batch_size, timeout=timeout,
    ):
        if on_event is not None:
            on_event(frame)
        frames.append(frame)
    return assemble_stream_result(frames)


def iter_status_events(
    url: str,
    poll: "float | None" = None,
    timeout: float = 300.0,
) -> Iterator[dict]:
    """Yield coordinator status frames from ``GET /shard/status/stream``.

    One frame per progress change; the frame with ``complete == true``
    is the terminal — the server closes the stream after it.
    """
    path = "/shard/status/stream"
    if poll is not None:
        path += f"?poll={float(poll)}"
    response = _open_sync(url, "GET", path, None, timeout)
    yield from _iter_ndjson(response, url)


# ----------------------------------------------------------------------
# Async variants (callers already under an event loop)
# ----------------------------------------------------------------------
async def aiter_sweep_events(
    url: str,
    config=None,
    models=None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> AsyncIterator[dict]:
    """Async twin of :func:`iter_sweep_events`."""
    reader, writer = await open_stream(
        "POST",
        url.rstrip("/") + "/sweep/stream",
        _sweep_payload(config, models, concurrency, batch_size),
        timeout,
    )
    try:
        while True:
            try:
                # per-line deadline, matching the sync twin's socket
                # timeout: a wedged server raises instead of hanging
                line = await asyncio.wait_for(reader.readline(), timeout)
            except (OSError, ValueError, asyncio.TimeoutError) as exc:
                raise ServiceUnreachableError(
                    f"event stream from {url} interrupted: "
                    f"{exc or type(exc).__name__}"
                ) from None
            if not line:
                break
            if line.strip():
                yield decode_frame(line)
    finally:
        await close_writer(writer)


async def astream_sweep(
    url: str,
    config=None,
    models=None,
    on_event: "Callable[[dict], None] | None" = None,
    concurrency: "int | None" = None,
    batch_size: "int | None" = None,
    timeout: float = 300.0,
) -> SweepResult:
    """Async twin of :func:`stream_sweep`."""
    frames = []
    stream = aiter_sweep_events(
        url, config=config, models=models, concurrency=concurrency,
        batch_size=batch_size, timeout=timeout,
    )
    try:
        async for frame in stream:
            if on_event is not None:
                on_event(frame)
            frames.append(frame)
    finally:
        await stream.aclose()
    return assemble_stream_result(frames)


# ----------------------------------------------------------------------
# Asyncio worker fleet (the client half of the coordinator, streaming)
# ----------------------------------------------------------------------
def _submit_stream_url(url: str, lease_id: str) -> str:
    return (
        url.rstrip("/")
        + "/shard/result/stream?lease_id="
        + quote(str(lease_id), safe="")
    )


async def submit_result_stream(
    url: str,
    lease_id: str,
    frames,
    timeout: float = 300.0,
) -> dict:
    """Stream event frames to ``POST /shard/result/stream``; return the ack.

    ``frames`` is a sync or async iterable of frame dicts (e.g. an
    :meth:`AsyncSweepExecutor.stream` generator, or
    :func:`~repro.service.aio.events.result_to_frames` output for a
    result executed blockingly).  The coordinator merges the frames'
    partial progress live and answers the normal submit ack after the
    terminal ``done`` frame.  Failure taxonomy matches the blocking
    submit: answered errors raise ``BackendError``, a dead connection
    raises :class:`~repro.service.client.ServiceUnreachableError`.
    """
    reader, writer = await open_upload(
        "POST", _submit_stream_url(url, lease_id), timeout
    )
    try:
        try:
            if hasattr(frames, "__aiter__"):
                async for frame in frames:
                    writer.write(encode_frame(frame))
                    await writer.drain()
            else:
                for frame in frames:
                    writer.write(encode_frame(frame))
                    await writer.drain()
        except (OSError, asyncio.TimeoutError) as exc:
            raise ServiceUnreachableError(
                f"streamed submit to {url} interrupted: "
                f"{exc or type(exc).__name__}"
            ) from None
        return await read_upload_response(reader, url, timeout)
    finally:
        await close_writer(writer)


async def _run_leased_unit(
    url: str,
    session,
    response: dict,
    concurrency: int,
    stream_results: bool,
    summary: dict,
    timeout: float,
    poll_seconds: float,
) -> dict:
    """Execute one leased unit and submit it; returns the coordinator ack.

    Streamed submission is attempted first — frames reach the
    coordinator as jobs finish, so ``/shard/status`` shows the unit's
    partial progress — with every frame also buffered locally.  If the
    upload route is missing (a non-aio coordinator) or the connection
    dies mid-stream, the buffer reassembles into a result and falls
    back to the blocking ``/shard/result`` submit with blip retries:
    executed work is never thrown away.
    """
    from ..sharding import shard_from_dict
    from ...eval.export import sweep_result_to_dict

    shard = shard_from_dict(response["shard"])
    lease_id = response["lease_id"]
    executor = AsyncSweepExecutor(
        session.backend,
        evaluator=session.evaluator,
        concurrency=concurrency,
        retry=session.retry,
        batch_size=session.batch_size,
    )
    upload = None
    if stream_results:
        try:
            upload = await open_upload(
                "POST", _submit_stream_url(url, lease_id), timeout
            )
        except (BackendError, OSError):
            upload = None
    buffered: list[dict] = []
    ack = None
    try:
        stream = executor.stream(shard.plan)
        try:
            async for frame in stream:
                buffered.append(frame)
                if upload is not None:
                    try:
                        upload[1].write(encode_frame(frame))
                        await upload[1].drain()
                    except (OSError, asyncio.TimeoutError):
                        await close_writer(upload[1])
                        upload = None  # keep executing; submit blockingly
        finally:
            await stream.aclose()
        if upload is not None:
            try:
                ack = await read_upload_response(upload[0], url, timeout)
                summary["streamed"] += 1
            except (BackendError, ServiceUnreachableError):
                # 404 from a coordinator without the route, or a hang-up
                # right at the terminal: the blocking fallback answers it
                ack = None
    finally:
        # executor failures and task cancellation must not leak the
        # half-written upload: closing it frees the coordinator's
        # reader and clears its partial-progress counters
        if upload is not None:
            await close_writer(upload[1])
    if ack is None:
        result = assemble_stream_result(buffered)
        payload = {
            "lease_id": lease_id,
            "shard_index": shard.shard_index,
            "result": sweep_result_to_dict(result),
        }
        # the submit is the one request whose loss wastes real work (a
        # whole executed unit would sit out the lease and re-run), so
        # retry connection blips a few times before giving up; answered
        # failures (HTTP status, malformed body) still raise immediately
        for attempt in range(5):
            try:
                ack = await request_json(
                    "POST", url.rstrip("/") + "/shard/result", payload,
                    timeout,
                )
                break
            except ServiceUnreachableError:
                if attempt == 4:
                    raise
                await asyncio.sleep(max(poll_seconds, 0.1))
    summary["shards"] += 1
    summary["jobs"] += len(shard.plan.jobs)
    summary["records"] += sum(
        1 for frame in buffered if frame.get("event") == "record"
    )
    summary["errors"] += sum(
        1 for frame in buffered if frame.get("event") == "job_error"
    )
    return ack


async def _push_telemetry(pusher, url: str, timeout: float) -> None:
    """One best-effort async telemetry push (never raises)."""
    payload = pusher.payload()
    try:
        await request_json(
            "POST", url.rstrip("/") + "/telemetry", payload, timeout
        )
    except Exception:
        pusher.note_failure()
    else:
        pusher.commit()


async def run_worker_async(
    url: str,
    session=None,
    worker_id: str | None = None,
    max_leases: int = 2,
    concurrency: int | None = None,
    poll_seconds: float = 0.5,
    max_idle_polls: int | None = None,
    stream_results: bool = True,
    timeout: float = 300.0,
    telemetry_seconds: float | None = 2.0,
) -> dict:
    """Asyncio sibling of :func:`~repro.service.client.run_worker`.

    Where the sync worker runs one lease at a time, this one holds up
    to ``max_leases`` leased units in flight concurrently — each
    executed on an :class:`AsyncSweepExecutor` (``concurrency`` bounds
    in-flight jobs per unit; defaults to the session's ``workers``) —
    the shape that pays off against a remote generation service, where
    a unit's wall-clock is mostly waiting.  With ``stream_results``
    (default) each unit's frames upload to ``/shard/result/stream`` as
    its jobs finish, so the coordinator sees partial progress and can
    detect a broken worker before the lease expires; against a
    coordinator without the route the worker falls back to the blocking
    submit automatically.

    Returns the same summary dict as the sync worker, plus
    ``streamed`` (how many submissions went over the stream route).
    Like the sync worker, metrics-registry deltas are pushed to the
    coordinator's ``POST /telemetry`` every ``telemetry_seconds``
    (``None``/``0`` disables) on a strictly best-effort basis.
    """
    if max_leases < 1:
        raise ValueError("max_leases must be >= 1")
    if session is None:
        from ...api import Session

        session = Session()
    from ...obs.collect import TelemetryPusher

    worker_id = worker_id or default_worker_id()
    pusher = (
        TelemetryPusher(None, worker_id, interval=telemetry_seconds)
        if telemetry_seconds
        else None
    )
    width = concurrency if concurrency is not None else max(session.workers, 1)
    summary = {
        "worker_id": worker_id,
        "shards": 0,
        "jobs": 0,
        "records": 0,
        "errors": 0,
        "idle_polls": 0,
        "streamed": 0,
        "coordinator_gone": False,
    }
    in_flight: set[asyncio.Task] = set()
    idle = 0
    contacted = False
    finished = False
    try:
        while True:
            if pusher is not None and pusher.due():
                await _push_telemetry(pusher, url, timeout)
            # top up to max_leases while the coordinator still has work
            while not finished and len(in_flight) < max_leases:
                try:
                    response = await request_json(
                        "POST", url.rstrip("/") + "/shard/next",
                        {"worker_id": worker_id}, timeout,
                    )
                except ServiceUnreachableError:
                    # same taxonomy as the sync worker: a coordinator we
                    # had already reached going away is a clean finish
                    if not contacted:
                        raise
                    summary["coordinator_gone"] = True
                    finished = True
                    break
                contacted = True
                if response.get("done"):
                    finished = True
                    break
                if response.get("shard") is None:
                    if in_flight:
                        break  # drain running units instead of idling
                    idle += 1
                    summary["idle_polls"] += 1
                    if max_idle_polls is not None and idle >= max_idle_polls:
                        finished = True
                        break
                    await asyncio.sleep(
                        min(
                            float(response.get("retry_after") or poll_seconds),
                            poll_seconds,
                        )
                    )
                    continue
                idle = 0
                in_flight.add(
                    asyncio.create_task(
                        _run_leased_unit(
                            url, session, response, width, stream_results,
                            summary, timeout, poll_seconds,
                        )
                    )
                )
            if not in_flight:
                break
            done_tasks, in_flight = await asyncio.wait(
                in_flight, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done_tasks:
                ack = task.result()  # re-raises unit failures
                if ack.get("done"):
                    # this submission completed the sweep — stop leasing
                    finished = True
    except BaseException:
        for task in in_flight:
            task.cancel()
        if in_flight:
            await asyncio.gather(*in_flight, return_exceptions=True)
        raise
    if pusher is not None and not summary["coordinator_gone"]:
        await _push_telemetry(pusher, url, timeout)
    return summary


__all__ = [
    "aiter_sweep_events",
    "astream_sweep",
    "iter_status_events",
    "iter_sweep_events",
    "run_worker_async",
    "stream_sweep",
    "submit_result_stream",
]
