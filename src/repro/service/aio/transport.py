"""Non-blocking HTTP primitives for the asyncio service layer.

The sync service stack speaks JSON-over-HTTP through ``urllib``; this
module is its asyncio twin, built directly on ``asyncio.open_connection``
(the standard library has no async HTTP client).  It implements exactly
the slice of HTTP/1.1 our own services speak — JSON request bodies,
``Content-Length`` or close-delimited responses, ``Connection: close``
per request — and keeps the sync layer's failure taxonomy:

* nothing listening / connect timeout →
  :class:`~repro.service.client.ServiceUnreachableError`;
* an HTTP error status → :class:`~repro.backends.base.BackendError`
  carrying the server's error detail;
* a 200 whose body is not valid JSON → ``BackendError`` ("malformed
  response" with a body snippet).

:func:`request_json` is the one-shot round trip (the async twin of
:func:`~repro.service.client.http_transport`); :func:`open_stream`
returns the live reader after response headers for NDJSON line
streaming (``/sweep/stream``, ``/shard/status/stream``).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
from typing import Awaitable, Callable
from urllib.parse import urlsplit

from ..client import ServiceUnreachableError
from ...backends.base import BackendError

#: async twin of :data:`repro.service.client.Transport`
AsyncTransport = Callable[[str, str, "dict | None"], Awaitable[dict]]

#: per-line buffer limit for NDJSON streams, shared by client connections
#: and the server (asyncio's default 64 KiB readline limit would reject
#: any event frame larger than one socket buffer — a big record or a
#: stats-heavy done frame must not kill the stream)
STREAM_LIMIT = 16 * 1024 * 1024


def _split_url(url: str) -> tuple[str, int, str]:
    """(host, port, path+query) from an http:// URL."""
    parts = urlsplit(url)
    if parts.scheme != "http":
        raise BackendError(
            f"async transport speaks plain http only, got {url!r}"
        )
    if not parts.hostname:
        raise BackendError(f"no host in service URL {url!r}")
    target = parts.path or "/"
    if parts.query:
        target += f"?{parts.query}"
    return parts.hostname, parts.port or 80, target


def _encode_request(
    method: str, host: str, port: int, target: str, payload: "dict | None"
) -> bytes:
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    head = (
        f"{method.upper()} {target} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("ascii") + body


async def _read_head(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str]]:
    """Parse the status line + headers; returns (status, headers)."""
    status_line = await reader.readline()
    try:
        _version, code, *_reason = status_line.decode("ascii").split(None, 2)
        status = int(code)
    except (UnicodeDecodeError, ValueError):
        raise BackendError(
            f"malformed HTTP status line: {status_line[:80]!r}"
        ) from None
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


async def _read_body(
    reader: asyncio.StreamReader, headers: dict[str, str]
) -> bytes:
    length = headers.get("content-length")
    if length is not None:
        try:
            return await reader.readexactly(int(length))
        except asyncio.IncompleteReadError as exc:
            return exc.partial
    return await reader.read()


async def close_writer(writer: asyncio.StreamWriter) -> None:
    """Close a stream writer, swallowing teardown races."""
    with contextlib.suppress(Exception):
        writer.close()
        await writer.wait_closed()


def _decode_json_body(body: bytes, url: str) -> dict:
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        snippet = body[:120].decode("utf-8", errors="replace")
        raise BackendError(
            f"malformed response from {url}: {exc} "
            f"(body starts: {snippet!r})"
        ) from None


def _error_detail(body: bytes) -> str:
    try:
        return str(json.loads(body.decode("utf-8"))["error"])
    except Exception:  # noqa: BLE001 — body may not be our JSON
        return body[:120].decode("utf-8", errors="replace")


async def _connect(
    host: str, port: int, timeout: float, url: str
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    try:
        return await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=STREAM_LIMIT), timeout
        )
    except (OSError, asyncio.TimeoutError) as exc:
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc or type(exc).__name__}"
        ) from None


async def request_json(
    method: str,
    url: str,
    payload: "dict | None" = None,
    timeout: float = 30.0,
) -> dict:
    """One JSON round trip against ``url``; the async http_transport."""
    host, port, target = _split_url(url)
    reader, writer = await _connect(host, port, timeout, url)
    try:
        writer.write(_encode_request(method, host, port, target, payload))
        await writer.drain()
        status, headers = await asyncio.wait_for(
            _read_head(reader), timeout
        )
        body = await asyncio.wait_for(_read_body(reader, headers), timeout)
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc or type(exc).__name__}"
        ) from None
    finally:
        await close_writer(writer)
    if status >= 400:
        raise BackendError(
            f"eval service {status} on {target}: {_error_detail(body)}"
        )
    return _decode_json_body(body, url)


async def open_stream(
    method: str,
    url: str,
    payload: "dict | None" = None,
    timeout: float = 30.0,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Send a request and return the reader positioned at the body.

    For NDJSON streaming routes: the caller iterates
    ``await reader.readline()`` until EOF and must close the writer
    (:func:`close_writer`) when done — closing it early is how a client
    aborts a streamed sweep.  Raises like :func:`request_json` if the
    server answers with an error status before the stream starts.
    """
    host, port, target = _split_url(url)
    reader, writer = await _connect(host, port, timeout, url)
    try:
        writer.write(_encode_request(method, host, port, target, payload))
        await writer.drain()
        status, headers = await asyncio.wait_for(_read_head(reader), timeout)
        if status >= 400:
            body = await asyncio.wait_for(
                _read_body(reader, headers), timeout
            )
            raise BackendError(
                f"eval service {status} on {target}: {_error_detail(body)}"
            )
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
        await close_writer(writer)
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc or type(exc).__name__}"
        ) from None
    except BaseException:
        await close_writer(writer)
        raise
    return reader, writer


async def open_upload(
    method: str,
    url: str,
    timeout: float = 30.0,
) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
    """Send request headers for a body the caller streams afterwards.

    The upload twin of :func:`open_stream`: no ``Content-Length`` is
    sent — the body is NDJSON whose terminal frame tells the server
    where it ends (the minimal HTTP dialect our own services speak).
    The caller writes encoded lines to the returned writer, then reads
    the server's answer with :func:`read_upload_response`, and must
    close the writer (:func:`close_writer`) either way.
    """
    host, port, target = _split_url(url)
    reader, writer = await _connect(host, port, timeout, url)
    head = (
        f"{method.upper()} {target} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        "Content-Type: application/x-ndjson\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    try:
        writer.write(head.encode("ascii"))
        await writer.drain()
    except (OSError, asyncio.TimeoutError) as exc:
        await close_writer(writer)
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc or type(exc).__name__}"
        ) from None
    return reader, writer


async def read_upload_response(
    reader: asyncio.StreamReader,
    url: str,
    timeout: float = 30.0,
) -> dict:
    """Read the JSON answer after an :func:`open_upload` body is sent.

    Same failure taxonomy as :func:`request_json`: an error status
    raises ``BackendError`` with the server's detail, a dead connection
    raises :class:`ServiceUnreachableError`.
    """
    try:
        status, headers = await asyncio.wait_for(_read_head(reader), timeout)
        body = await asyncio.wait_for(_read_body(reader, headers), timeout)
    except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
        raise ServiceUnreachableError(
            f"cannot reach eval service at {url}: {exc or type(exc).__name__}"
        ) from None
    if status >= 400:
        raise BackendError(
            f"eval service {status} on {url}: {_error_detail(body)}"
        )
    return _decode_json_body(body, url)


def async_json_transport(
    base_url: str, timeout: float = 30.0
) -> AsyncTransport:
    """An :data:`AsyncTransport` bound to ``base_url`` (async twin of
    :func:`~repro.service.client.http_transport`)."""

    async def call(
        method: str, path: str, payload: "dict | None" = None
    ) -> dict:
        return await request_json(
            method, base_url.rstrip("/") + path, payload, timeout
        )

    return call


def async_chat_transport(
    timeout: float = 30.0,
) -> Callable[[str, dict], Awaitable[dict]]:
    """A non-blocking chat transport for the HTTP chat backend shape:
    ``await transport(url, payload) -> response dict`` via POST."""

    async def call(url: str, payload: dict) -> dict:
        return await request_json("POST", url, payload, timeout)

    return call


__all__ = [
    "STREAM_LIMIT",
    "AsyncTransport",
    "async_chat_transport",
    "async_json_transport",
    "close_writer",
    "open_stream",
    "open_upload",
    "read_upload_response",
    "request_json",
]
