"""Asyncio-native sweep service: async executor, streaming HTTP, events.

The asyncio sibling of the thread/process service stack.  Everything
blocking in :mod:`repro.service` has a non-blocking twin here, sharing
the same wire schemas and the same parity guarantees:

* :mod:`~repro.service.aio.backends` — :class:`AsyncBackend` protocol,
  the :func:`to_async`/:func:`from_async` bridge for existing sync
  backends, and async-native remote clients
  (:class:`AsyncServiceBackend`, :class:`AsyncHTTPChatBackend`);
* :mod:`~repro.service.aio.executor` — :class:`AsyncSweepExecutor`,
  coroutine-per-chunk execution with bounded concurrency, retry/batch
  parity with the thread executor, cooperative cancellation, and live
  event emission;
* :mod:`~repro.service.aio.events` — the NDJSON frame codec
  (``job_started``/``record``/``skip``/``job_error``/``progress``/
  ``done``) and lossless stream reassembly;
* :mod:`~repro.service.aio.server` — :class:`AsyncEvalService`:
  ``ServiceApp`` routing over ``asyncio.start_server`` plus the
  streaming routes ``POST /sweep/stream`` and
  ``GET /shard/status/stream``;
* :mod:`~repro.service.aio.client` — :func:`iter_sweep_events` /
  :func:`stream_sweep` (sync) and their async twins;
* :mod:`~repro.service.aio.transport` — raw non-blocking HTTP/JSON
  primitives with the sync client's failure taxonomy.
"""

from .backends import (
    AsyncBackend,
    AsyncHTTPChatBackend,
    AsyncServiceBackend,
    ensure_async,
    ensure_sync,
    from_async,
    to_async,
)
from .client import (
    aiter_sweep_events,
    astream_sweep,
    iter_status_events,
    iter_sweep_events,
    run_worker_async,
    stream_sweep,
    submit_result_stream,
)
from .events import (
    FRAME_EVENTS,
    StreamProtocolError,
    assemble_stream_result,
    decode_frame,
    decode_stream,
    encode_frame,
    metric_frame,
    result_to_frames,
    span_frame,
)
from .executor import AsyncSweepExecutor
from .server import AsyncEvalService, serve_async
from .transport import (
    AsyncTransport,
    async_chat_transport,
    async_json_transport,
    open_upload,
    read_upload_response,
    request_json,
)

__all__ = [
    "AsyncBackend",
    "AsyncEvalService",
    "AsyncHTTPChatBackend",
    "AsyncServiceBackend",
    "AsyncSweepExecutor",
    "AsyncTransport",
    "FRAME_EVENTS",
    "StreamProtocolError",
    "aiter_sweep_events",
    "assemble_stream_result",
    "astream_sweep",
    "async_chat_transport",
    "async_json_transport",
    "decode_frame",
    "decode_stream",
    "encode_frame",
    "ensure_async",
    "ensure_sync",
    "from_async",
    "iter_status_events",
    "iter_sweep_events",
    "metric_frame",
    "open_upload",
    "read_upload_response",
    "request_json",
    "result_to_frames",
    "run_worker_async",
    "serve_async",
    "span_frame",
    "stream_sweep",
    "submit_result_stream",
    "to_async",
]
