"""Async backend layer: coroutine generation over the Backend contract.

:class:`AsyncBackend` is the coroutine twin of
:class:`~repro.backends.base.Backend`: metadata (``models`` /
``capabilities`` / ``identity``) stays synchronous — the planner runs
before the event loop and those calls are cheap — while generation
becomes awaitable (``generate_async`` / ``generate_batch_async``) so one
process can hold many requests in flight without a thread apiece.

The adapter pair bridges the two worlds in either direction:

* :func:`to_async` — run any sync backend under the loop via
  ``run_in_executor`` (the default thread pool), so the async executor
  accepts every registered backend unchanged;
* :func:`from_async` — expose an async-native backend to sync callers
  (each call runs its own short-lived event loop);

and :func:`ensure_async` picks whichever view a backend needs.  The two
adapters unwrap each other, so round trips return the original object.

:class:`AsyncServiceBackend` and :class:`AsyncHTTPChatBackend` are the
async-native clients the ROADMAP asked for: the same wire schemas as
:class:`~repro.service.client.ServiceBackend` and
:class:`~repro.backends.http.HTTPChatBackend`, but generation rides the
non-blocking :mod:`~repro.service.aio.transport` — and the chat backend
fires its ``n`` samples concurrently instead of serially.
"""

from __future__ import annotations

import abc
import asyncio
import time
from typing import Awaitable, Callable, Sequence

from ..client import DEFAULT_URL, ServiceBackend
from ...backends.base import (
    Backend,
    BackendError,
    ModelCapabilities,
    variant_identity,
)
from ...backends.http import HTTPChatBackend
from ...models.base import Completion, GenerationConfig
from .transport import async_chat_transport, async_json_transport


class AsyncBackend(abc.ABC):
    """Coroutine-generating twin of the :class:`Backend` protocol."""

    name: str = "async-backend"

    @abc.abstractmethod
    def models(self) -> list[str]:
        """Names of the model variants this backend serves."""

    @abc.abstractmethod
    async def generate_async(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        """Return ``config.n`` completions of ``prompt`` from ``model``."""

    async def generate_batch_async(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        """Serve many (prompt, config) requests for one model.

        The default awaits :meth:`generate_async` per request *serially*
        (mirroring the sync default's semantics); backends that can
        overlap or amortize requests override this.
        """
        return [
            await self.generate_async(model, prompt, config)
            for prompt, config in requests
        ]

    def capabilities(self, model: str) -> ModelCapabilities:
        """Capability claims for ``model``; defaults are permissive."""
        return ModelCapabilities()

    def identity(self, model: str) -> tuple[str, bool]:
        """(base model name, fine_tuned) for record bookkeeping."""
        return variant_identity(model)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


# ----------------------------------------------------------------------
# Sync <-> async adapters
# ----------------------------------------------------------------------
class _ThreadedAsyncBackend(AsyncBackend):
    """A sync backend driven through the loop's default thread pool."""

    def __init__(self, backend: Backend):
        self.backend = backend
        self.name = backend.name

    def models(self) -> list[str]:
        return self.backend.models()

    def capabilities(self, model: str) -> ModelCapabilities:
        return self.backend.capabilities(model)

    def identity(self, model: str) -> tuple[str, bool]:
        return self.backend.identity(model)

    async def generate_async(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        return await asyncio.get_running_loop().run_in_executor(
            None, self.backend.generate, model, prompt, config
        )

    async def generate_batch_async(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        return await asyncio.get_running_loop().run_in_executor(
            None, self.backend.generate_batch, model, list(requests)
        )


class _BlockingBackend(Backend):
    """An async backend exposed to sync callers (one loop per call)."""

    def __init__(self, abackend: AsyncBackend):
        self.abackend = abackend
        self.name = abackend.name

    def models(self) -> list[str]:
        return self.abackend.models()

    def capabilities(self, model: str) -> ModelCapabilities:
        return self.abackend.capabilities(model)

    def identity(self, model: str) -> tuple[str, bool]:
        return self.abackend.identity(model)

    def generate(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        return asyncio.run(
            self.abackend.generate_async(model, prompt, config)
        )

    def generate_batch(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        return asyncio.run(
            self.abackend.generate_batch_async(model, list(requests))
        )


def to_async(backend: Backend) -> AsyncBackend:
    """An :class:`AsyncBackend` view of a sync backend."""
    if isinstance(backend, _BlockingBackend):
        return backend.abackend
    return _ThreadedAsyncBackend(backend)


def from_async(abackend: AsyncBackend) -> Backend:
    """A sync :class:`Backend` view of an async backend."""
    if isinstance(abackend, _ThreadedAsyncBackend):
        return abackend.backend
    return _BlockingBackend(abackend)


def ensure_async(backend: "Backend | AsyncBackend") -> AsyncBackend:
    """Whatever it is, return the async view of it."""
    if isinstance(backend, AsyncBackend):
        return backend
    return to_async(backend)


def ensure_sync(backend: "Backend | AsyncBackend") -> Backend:
    """Whatever it is, return the sync view of it."""
    if isinstance(backend, AsyncBackend):
        return from_async(backend)
    return backend


# ----------------------------------------------------------------------
# Async-native remote clients
# ----------------------------------------------------------------------
class AsyncServiceBackend(AsyncBackend):
    """Non-blocking client of the eval service wire API.

    Generation goes through the asyncio transport (one coroutine per
    in-flight request, no thread apiece); metadata rides a plain sync
    :class:`ServiceBackend` bound to the same URL, because the planner
    interrogates capabilities before any event loop exists.  Both halves
    speak the identical JSON routes, so a sweep through this backend is
    record-for-record the same as through the sync client.
    """

    name = "service-aio"

    def __init__(
        self,
        url: str = DEFAULT_URL,
        timeout: float = 30.0,
        sync_backend: ServiceBackend | None = None,
        transport=None,
    ):
        self.url = url
        self._sync = sync_backend or ServiceBackend(url=url, timeout=timeout)
        self._call = transport or async_json_transport(url, timeout)

    def models(self) -> list[str]:
        return self._sync.models()

    def capabilities(self, model: str) -> ModelCapabilities:
        return self._sync.capabilities(model)

    def identity(self, model: str) -> tuple[str, bool]:
        return self._sync.identity(model)

    async def generate_async(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        response = await self._call(
            "POST",
            "/generate",
            {
                "model": model,
                "prompt": prompt,
                "config": ServiceBackend._config_row(config),
            },
        )
        return [ServiceBackend._completion(c) for c in response["completions"]]

    async def generate_batch_async(
        self,
        model: str,
        requests: Sequence[tuple[str, GenerationConfig]],
    ) -> list[list[Completion]]:
        """One ``/generate_batch`` round trip; per-request fallback
        against older servers, mirroring the sync client."""
        if len(requests) <= 1:
            return await super().generate_batch_async(model, requests)
        payload = {
            "model": model,
            "requests": [
                {"prompt": prompt, "config": ServiceBackend._config_row(config)}
                for prompt, config in requests
            ],
        }
        try:
            response = await self._call("POST", "/generate_batch", payload)
        except BackendError:
            return await super().generate_batch_async(model, requests)
        batches = [
            [ServiceBackend._completion(c) for c in batch]
            for batch in response["batches"]
        ]
        if len(batches) != len(requests):
            raise BackendError(
                f"generate_batch returned {len(batches)} batches "
                f"for {len(requests)} requests"
            )
        return batches


class AsyncHTTPChatBackend(AsyncBackend):
    """Non-blocking chat-endpoint backend.

    Wraps the offline-safe :class:`HTTPChatBackend` for payload shaping,
    capability claims and response cleaning, but generation awaits the
    asyncio transport and fires all ``config.n`` samples *concurrently*
    — the paper sweeps ask 10–25 completions per prompt, and a chat
    endpoint serves them in the time of one when the requests overlap.
    ``transport`` is ``await transport(url, payload) -> response dict``;
    without one it stays offline-safe and raises, like its sync twin.
    """

    name = "http-aio"

    def __init__(
        self,
        chat: HTTPChatBackend | None = None,
        transport: "Callable[[str, dict], Awaitable[dict]] | None" = None,
        timeout: float = 30.0,
        **chat_kwargs,
    ):
        self.chat = chat or HTTPChatBackend(**chat_kwargs)
        self._transport = transport
        self._timeout = timeout

    def models(self) -> list[str]:
        return self.chat.models()

    def capabilities(self, model: str) -> ModelCapabilities:
        return self.chat.capabilities(model)

    @classmethod
    def connected(cls, timeout: float = 30.0, **chat_kwargs):
        """A backend wired to a real endpoint via the asyncio transport."""
        return cls(
            transport=async_chat_transport(timeout),
            timeout=timeout,
            **chat_kwargs,
        )

    async def _sample(
        self, model: str, prompt: str, config: GenerationConfig, index: int
    ) -> Completion:
        from ...backends.http import clean_chat_response, extract_chat_text

        started = time.perf_counter()
        response = await self._transport(
            self.chat.url, self.chat.payload(model, prompt, config, index)
        )
        elapsed = time.perf_counter() - started
        text = extract_chat_text(response)
        if self.chat.clean:
            text = clean_chat_response(text)
        return Completion(
            text=text,
            inference_seconds=elapsed,
            tokens=max(1, len(text) // 4),
        )

    async def generate_async(
        self, model: str, prompt: str, config: GenerationConfig
    ) -> list[Completion]:
        if self._transport is None:
            raise BackendError(
                "AsyncHTTPChatBackend has no transport configured; it is "
                "offline-safe by design — use .connected(url=...) or "
                "inject an async transport to reach a real endpoint"
            )
        tasks = [
            asyncio.create_task(self._sample(model, prompt, config, index))
            for index in range(config.n)
        ]
        try:
            return list(await asyncio.gather(*tasks))
        except BaseException:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)
            raise


__all__ = [
    "AsyncBackend",
    "AsyncHTTPChatBackend",
    "AsyncServiceBackend",
    "ensure_async",
    "ensure_sync",
    "from_async",
    "to_async",
]
