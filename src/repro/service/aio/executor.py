"""AsyncSweepExecutor: coroutine-based sweep execution with streaming.

The third :class:`~repro.eval.jobs.Executor` variant.  Where the thread
executor holds one OS thread per in-flight job and the process executor
one process, this one holds a *coroutine*: bounded by a semaphore, any
number of generation requests can be awaited concurrently in a single
thread — the shape that fits remote backends (HTTP chat endpoints, the
eval service) whose latency dominates and whose concurrency ceiling is
far above a sane thread count.

Parity contract: job expansion, batching (consecutive same-model chunks
through ``generate_batch``), per-job error capture, and the
:class:`~repro.eval.jobs.RetryPolicy` (BackendError-only, deterministic
backoff, attempts recorded) all mirror the thread executor exactly, and
results reassemble in plan order — so an async run is record-for-record
identical to a serial one.

On top of plain execution it is the event source for the streaming
service: :meth:`execute` accepts an ``emit`` callback that receives
:mod:`~repro.service.aio.events` frames as they happen, and
:meth:`stream` packages that as an async generator which yields every
frame and finishes with the lossless terminal ``done`` frame.  Closing
the generator early (a streaming client disconnecting) cooperatively
cancels every in-flight job — leases, retries and half-generated chunks
are abandoned, not leaked.

Sync backends run under the loop via :func:`~repro.service.aio.backends
.to_async` (``run_in_executor``); evaluation — pure CPU — is offloaded
the same way so the loop keeps serving frames while the simulator runs.
"""

from __future__ import annotations

import asyncio
import contextlib
import contextvars
import time
from typing import AsyncIterator, Awaitable, Callable

from ...backends.base import Backend, BackendError
from ...eval.jobs import (
    Executor,
    GenerationJob,
    JobOutcome,
    ProgressCallback,
    RetryPolicy,
    SweepPlan,
    SweepResult,
    _timed_failure,
    assemble_result,
    chunk_jobs,
    evaluate_completions,
    failure_from_exception,
    make_job_error,
)
from ...eval.pipeline import Evaluator
from ...obs import REGISTRY, job_tags, observe_stage, record_span
from ...problems import get_problem
from .backends import AsyncBackend, ensure_async
from .events import (
    attempt_frame,
    done_frame,
    job_error_frame,
    job_started_frame,
    metric_frame,
    progress_frame,
    record_frame,
    skip_frame,
    span_frame,
)

#: frames flow to sync or async consumers; awaitable results are awaited
EmitCallback = Callable[[dict], "Awaitable[None] | None"]


async def _send(emit: "EmitCallback | None", frame: dict) -> None:
    if emit is None:
        return
    result = emit(frame)
    if result is not None and hasattr(result, "__await__"):
        await result


class AsyncSweepExecutor(Executor):
    """Run a :class:`SweepPlan` as coroutines under an event loop.

    ``concurrency`` bounds how many job chunks generate at once (the
    semaphore width — the async analogue of ``workers``).  ``sleep`` is
    the injectable async backoff (tests assert retry schedules without
    waiting them out); ``offload`` moves evaluation onto the loop's
    default thread pool so frames keep flowing during simulation.
    """

    def __init__(
        self,
        backend: "Backend | AsyncBackend",
        evaluator: Evaluator | None = None,
        concurrency: int = 8,
        progress: ProgressCallback | None = None,
        retry: RetryPolicy | None = None,
        sleep: Callable[[float], Awaitable[None]] = asyncio.sleep,
        batch_size: int = 1,
        offload: bool = True,
    ):
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.backend = backend
        self.evaluator = evaluator or Evaluator()
        self.concurrency = concurrency
        self.progress = progress
        self.retry = retry or RetryPolicy()
        self.sleep = sleep
        self.batch_size = batch_size
        self.offload = offload

    # ------------------------------------------------------------------
    # Executor interface (sync entrypoint)
    # ------------------------------------------------------------------
    def run(self, plan: SweepPlan) -> SweepResult:
        """Execute every job; capture per-job failures instead of dying.

        Spins up a private event loop, so it must be called from sync
        code; inside a running loop, ``await execute(plan)`` instead.
        """
        try:
            asyncio.get_running_loop()
        except RuntimeError:
            return asyncio.run(self.execute(plan))
        raise RuntimeError(
            "AsyncSweepExecutor.run() inside a running event loop; "
            "await execute(plan) instead"
        )

    # ------------------------------------------------------------------
    # Async core
    # ------------------------------------------------------------------
    async def _evaluate(
        self, job: GenerationJob, completions: list
    ) -> list:
        if self.offload:
            # copy_context keeps the per-job trace tags visible to the
            # evaluator's stage spans across the thread-pool hop
            context = contextvars.copy_context()
            return await asyncio.get_running_loop().run_in_executor(
                None,
                context.run,
                evaluate_completions,
                self.evaluator,
                job,
                completions,
            )
        return evaluate_completions(self.evaluator, job, completions)

    async def _run_job(
        self, abackend: AsyncBackend, job: GenerationJob
    ) -> JobOutcome:
        """One job under the retry policy; never raises (except cancel).

        Timing mirrors :func:`~repro.eval.jobs.run_job_with_retry`:
        per-attempt elapsed and scheduled backoff land on the failure,
        and generation feeds the always-on ``generate`` stage timer.
        """
        attempt_seconds: list[float] = []
        backoff_total = 0.0
        with job_tags(model=job.model, problem=job.problem):
            for attempt in range(1, self.retry.max_attempts + 1):
                attempt_started = time.perf_counter()
                try:
                    problem = get_problem(job.problem)
                    completions = await abackend.generate_async(
                        job.model, problem.prompt(job.level),
                        job.generation_config(),
                    )
                    observe_stage(
                        "generate",
                        time.perf_counter() - attempt_started,
                        problem=job.problem,
                        model=job.model,
                    )
                    records = await self._evaluate(job, completions)
                    return records, None, attempt
                except asyncio.CancelledError:
                    raise
                except BackendError as exc:  # transient: retry with backoff
                    attempt_seconds.append(
                        time.perf_counter() - attempt_started
                    )
                    if attempt < self.retry.max_attempts:
                        delay = self.retry.delay(attempt)
                        backoff_total += delay
                        if delay > 0:
                            await self.sleep(delay)
                        continue
                    return [], _timed_failure(
                        exc, attempt_seconds, backoff_total
                    ), attempt
                except Exception as exc:  # noqa: BLE001 — per-job isolation
                    attempt_seconds.append(
                        time.perf_counter() - attempt_started
                    )
                    return [], _timed_failure(
                        exc, attempt_seconds, backoff_total
                    ), attempt
        raise AssertionError("unreachable")  # pragma: no cover

    async def _batch_outcomes(
        self, abackend: AsyncBackend, jobs: list[GenerationJob]
    ) -> "list[JobOutcome] | None":
        """Try the chunk through generate_batch; None = fall back."""
        problems = [get_problem(job.problem) for job in jobs]
        try:
            batches = await abackend.generate_batch_async(
                jobs[0].model,
                [
                    (problem.prompt(job.level), job.generation_config())
                    for job, problem in zip(jobs, problems)
                ],
            )
        except asyncio.CancelledError:
            raise
        except Exception:  # noqa: BLE001 — retry job by job instead
            return None
        if batches is None or len(batches) != len(jobs):
            return None
        outcomes: list[JobOutcome] = []
        for job, completions in zip(jobs, batches):
            try:
                records = await self._evaluate(job, completions)
                outcomes.append((records, None, 1))
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001
                outcomes.append(([], failure_from_exception(exc), 1))
        return outcomes

    async def execute(
        self, plan: SweepPlan, emit: "EmitCallback | None" = None
    ) -> SweepResult:
        """Run the plan concurrently; emit event frames as they happen.

        Frames go out in real time (skips up front, then per-job
        ``job_started``/``record``/``job_error``/``progress``); the
        returned result is reassembled in plan order regardless of
        completion order.  Cancelling this coroutine cancels every
        in-flight job cooperatively.
        """
        started = time.perf_counter()
        total = len(plan.jobs)
        state = {"done": 0, "records": 0, "errors": 0}

        for index, skip in enumerate(plan.skipped):
            await _send(emit, skip_frame(index, skip))

        abackend = ensure_async(self.backend)
        semaphore = asyncio.Semaphore(self.concurrency)

        # The repair adapter keeps an attempt log: surface each evaluated
        # repair round as an observational ``attempt`` frame while the
        # sweep streams.  Any backend exposing the two hooks qualifies.
        attempt_source = None
        if (
            emit is not None
            and hasattr(self.backend, "start_attempt_log")
            and hasattr(self.backend, "drain_attempt_events")
        ):
            attempt_source = self.backend

        async def send_attempts() -> None:
            if attempt_source is None:
                return
            for event in attempt_source.drain_attempt_events():
                await _send(emit, attempt_frame(event))

        async def finish_job(
            index: int, job: GenerationJob, outcome: JobOutcome
        ) -> None:
            await send_attempts()
            records, error, attempts = outcome
            if error is None:
                for record in records:
                    await _send(emit, record_frame(index, record))
            else:
                await _send(
                    emit,
                    job_error_frame(index, make_job_error(job, error, attempts)),
                )
            state["done"] += 1
            state["records"] += len(records)
            state["errors"] += int(error is not None)
            await _send(
                emit,
                progress_frame(
                    state["done"], total, state["records"], state["errors"]
                ),
            )
            if self.progress is not None:
                self.progress(state["done"], total, job)

        async def run_chunk(
            offset: int, jobs: list[GenerationJob]
        ) -> list[JobOutcome]:
            async with semaphore:
                for position, job in enumerate(jobs):
                    await _send(
                        emit, job_started_frame(offset + position, job)
                    )
                outcomes: "list[JobOutcome] | None" = None
                if len(jobs) > 1:
                    outcomes = await self._batch_outcomes(abackend, jobs)
                job_elapsed: list[float] = []
                if outcomes is None:
                    outcomes = []
                    for job in jobs:
                        job_started = time.perf_counter()
                        outcomes.append(await self._run_job(abackend, job))
                        job_elapsed.append(
                            time.perf_counter() - job_started
                        )
                for position, (job, outcome) in enumerate(
                    zip(jobs, outcomes)
                ):
                    await finish_job(offset + position, job, outcome)
                    if position < len(job_elapsed):
                        elapsed = job_elapsed[position]
                        REGISTRY.observe("job_seconds", elapsed)
                        record_span(
                            "job", elapsed,
                            model=job.model, problem=job.problem,
                            outcome="error" if outcome[1] is not None
                            else "ok",
                            attempts=outcome[2],
                        )
                        await _send(
                            emit,
                            span_frame({
                                "name": "job", "dur": elapsed,
                                "tags": {
                                    "job_index": offset + position,
                                    "model": job.model,
                                    "problem": job.problem,
                                },
                            }),
                        )
                return outcomes

        chunks = chunk_jobs(plan.jobs, self.batch_size)
        tasks = []
        offset = 0
        if attempt_source is not None:
            attempt_source.start_attempt_log()
        try:
            for jobs in chunks:
                tasks.append(asyncio.create_task(run_chunk(offset, jobs)))
                offset += len(jobs)
            try:
                chunk_outcomes = await asyncio.gather(*tasks)
            except BaseException:
                # one chunk failed hard (emit error, cancellation): abandon
                # every other in-flight chunk cooperatively before leaving
                for task in tasks:
                    task.cancel()
                await asyncio.gather(*tasks, return_exceptions=True)
                raise
            await send_attempts()
        finally:
            if attempt_source is not None:
                attempt_source.stop_attempt_log()

        if emit is not None:
            # one observational metrics snapshot before the terminal
            # frame: cache effectiveness + job latency percentiles
            await _send(
                emit,
                metric_frame({
                    "evaluator_cache": dict(self.evaluator.cache_info),
                    "job_seconds": REGISTRY.histogram_snapshot(
                        "job_seconds"
                    ),
                }),
            )

        outcomes = [outcome for chunk in chunk_outcomes for outcome in chunk]
        return assemble_result(
            plan,
            outcomes,
            stats={
                "backend": abackend.name,
                "executor": "async",
                "workers": self.concurrency,
                "concurrency": self.concurrency,
                "batch_size": self.batch_size,
                "evaluator_cache": dict(self.evaluator.cache_info),
                "elapsed_seconds": time.perf_counter() - started,
            },
        )

    async def stream(
        self, plan: SweepPlan, buffer: int = 256
    ) -> AsyncIterator[dict]:
        """Yield event frames live, ending with the terminal ``done``.

        The async-generator face of :meth:`execute`: frames surface in
        emission order while jobs run concurrently underneath.  The
        hand-off queue is bounded (``buffer`` frames), so a consumer
        slower than the sweep backpressures execution instead of the
        whole serialized result piling up in memory.  Closing the
        generator early (``aclose()`` — e.g. a streaming client hung
        up) cancels all in-flight jobs before returning.
        """
        queue: asyncio.Queue = asyncio.Queue(maxsize=max(buffer, 1))
        task = asyncio.create_task(self.execute(plan, emit=queue.put))
        getter: "asyncio.Task | None" = None
        try:
            while True:
                getter = asyncio.create_task(queue.get())
                await asyncio.wait(
                    {getter, task}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter.done():
                    frame = getter.result()
                    getter = None
                    yield frame
                    continue
                # execute() finished (or died): no more puts are coming,
                # so drain what is buffered and stop waiting
                getter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await getter
                getter = None
                while True:
                    try:
                        yield queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                break
            result = task.result()  # re-raises execute() failures
            yield done_frame(result)
        finally:
            # reap the helper tasks even when close arrives via an
            # injected CancelledError rather than a polite aclose()
            if getter is not None and not getter.done():
                getter.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await getter
            if not task.done():
                task.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await task


__all__ = ["AsyncSweepExecutor", "EmitCallback"]
