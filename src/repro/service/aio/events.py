"""NDJSON event frames: the streaming sweep wire protocol.

A streamed sweep is a sequence of newline-delimited JSON objects, one
frame per line, each carrying an ``"event"`` discriminator:

* ``skip``        — one planner skip record (emitted up front);
* ``job_started`` — a job entered generation;
* ``record``      — one evaluated completion of a finished job;
* ``job_error``   — a job failed after retries (carries the JobError);
* ``attempt``     — one evaluated repair-loop attempt (observational:
  the agentic workload's per-round verdicts, see :mod:`repro.agentic`);
* ``progress``    — running jobs-done / records / errors counters;
* ``metric``      — an observational metrics snapshot (see
  :mod:`repro.obs`): worker throughput, stage timings, cache counters;
* ``span``        — one completed trace span (observational; the same
  shape :class:`repro.obs.TraceWriter` persists, minus the ``type``);
* ``done``        — the lossless terminal frame: result counts + stats.

``progress``, ``attempt``, ``metric`` and ``span`` frames carry a
monotonic ``t`` timestamp (seconds, :func:`time.monotonic`) stamped at
emission; it is observational and optional on decode, so pre-``t``
streams still parse.

The payload fields reuse the :mod:`repro.eval.export` codecs (the same
lossless record/skip/error schema the shard service ships), and every
``record``/``job_error`` frame carries the job's *global plan index*, so
:func:`assemble_stream_result` can reassemble an out-of-order concurrent
stream into a :class:`~repro.eval.jobs.SweepResult` whose records are
byte-identical (via export) to a serial run of the same plan.

``status`` frames are the second mini-protocol on this codec: the
``GET /shard/status/stream`` route emits coordinator status snapshots
with the same framing, terminated by a ``done`` frame.

Anything that is not one well-formed frame per line — broken JSON, a
known event missing required fields, a stream that ends without its
terminal frame, or terminal counts that disagree with the frames seen —
raises :class:`StreamProtocolError` on the consuming side.  Frames with
an *unknown* event name are forward-compatibility points:
:func:`decode_frame` rejects them by default (one frame, asked
directly), but :func:`decode_stream` passes them through untouched and
:func:`assemble_stream_result` ignores them, so a client built before
``metric``/``span`` existed — or before whatever comes next — skips
new observational frames instead of dying mid-stream.
"""

from __future__ import annotations

import json
import time
from typing import Iterable

from ...eval.export import (
    error_from_dict,
    error_to_dict,
    record_from_dict,
    record_to_dict,
    skip_from_dict,
    skip_to_dict,
)
from ...eval.harness import Sweep
from ...eval.jobs import JobError, SweepResult


class StreamProtocolError(ValueError):
    """A streamed frame (or the whole stream) violated the protocol."""


#: event name -> required payload keys (beyond "event" itself)
FRAME_EVENTS: dict[str, tuple[str, ...]] = {
    "skip": ("skip_index", "skip"),
    "job_started": ("job_index", "model", "problem"),
    "record": ("job_index", "record"),
    "job_error": ("job_index", "error"),
    "attempt": ("model", "problem", "round", "verdict"),
    "progress": ("jobs_done", "jobs_total", "records", "errors"),
    "metric": ("metrics",),
    "span": ("name", "dur"),
    "done": ("jobs", "records", "errors", "skipped", "stats"),
    "status": (),
}


# ----------------------------------------------------------------------
# Frame constructors (executor/server side)
# ----------------------------------------------------------------------
def skip_frame(skip_index: int, skip) -> dict:
    return {"event": "skip", "skip_index": skip_index,
            "skip": skip_to_dict(skip)}


def job_started_frame(job_index: int, job) -> dict:
    return {"event": "job_started", "job_index": job_index,
            "model": job.model, "problem": job.problem}


def record_frame(job_index: int, record) -> dict:
    return {"event": "record", "job_index": job_index,
            "record": record_to_dict(record)}


def job_error_frame(job_index: int, error: JobError) -> dict:
    return {"event": "job_error", "job_index": job_index,
            "error": error_to_dict(error)}


def attempt_frame(event: dict) -> dict:
    """One repair-loop attempt (observational; see repro.agentic).

    ``event`` is a :class:`~repro.agentic.backend.RepairingBackend`
    attempt-log entry: model, problem, sample_index, round, verdict,
    stage, transcript_hash (hex).  Reassembly ignores these frames —
    the final completions already arrive as ``record`` frames.
    """
    return {"event": "attempt", "t": time.monotonic(), **event}


def progress_frame(
    jobs_done: int, jobs_total: int, records: int, errors: int
) -> dict:
    return {"event": "progress", "t": time.monotonic(),
            "jobs_done": jobs_done, "jobs_total": jobs_total,
            "records": records, "errors": errors}


def metric_frame(metrics: dict) -> dict:
    """An observational metrics snapshot (throughput, stages, caches)."""
    return {"event": "metric", "t": time.monotonic(), "metrics": metrics}


def span_frame(span: dict) -> dict:
    """One completed trace span as a stream frame.

    ``span`` is a :func:`repro.obs.record_span` frame (or any dict with
    ``name``/``dur`` and optional ``t``/``tags``); the ``type`` key of
    the trace-file schema is dropped in favor of the stream's ``event``
    discriminator.
    """
    frame = {key: value for key, value in span.items() if key != "type"}
    frame.setdefault("t", time.monotonic())
    return {"event": "span", **frame}


def done_frame(result: SweepResult) -> dict:
    return {
        "event": "done",
        "jobs": int(result.stats.get("jobs", 0)),
        "records": len(result.sweep),
        "errors": len(result.errors),
        "skipped": len(result.skipped),
        "stats": dict(result.stats),
    }


def status_frame(status: dict) -> dict:
    return {"event": "status", **status}


def result_to_frames(plan, result: SweepResult) -> list[dict]:
    """The frame sequence a live stream of ``result`` would have emitted.

    For workers that executed a plan to completion (thread/process
    executors have no frame source) but submit over the streamed route:
    the frames replay the executor emission order — skips up front,
    then per-job ``job_started``/``record``/``job_error`` + ``progress``
    in plan order, ending with the lossless ``done`` terminal — so
    :func:`assemble_stream_result` rebuilds the identical result.
    Raises ``ValueError`` when the result does not match the plan (the
    same invariant the shard merge enforces).
    """
    frames = [
        skip_frame(index, skip) for index, skip in enumerate(result.skipped)
    ]
    errors = list(result.errors)
    records = result.sweep.records
    position = 0
    records_sent = errors_sent = 0
    for index, job in enumerate(plan.jobs):
        frames.append(job_started_frame(index, job))
        if errors and errors[0].job == job:
            frames.append(job_error_frame(index, errors.pop(0)))
            errors_sent += 1
        else:
            chunk = records[position : position + job.n]
            if len(chunk) != job.n:
                raise ValueError(
                    f"result does not match plan: job {job} expected "
                    f"{job.n} records, found {len(chunk)}"
                )
            position += job.n
            frames.extend(record_frame(index, record) for record in chunk)
            records_sent += len(chunk)
        frames.append(
            progress_frame(
                index + 1, len(plan.jobs), records_sent, errors_sent
            )
        )
    if errors or position != len(records):
        raise ValueError(
            "result does not match plan: "
            f"{len(errors)} unmatched errors, "
            f"{len(records) - position} unmatched records"
        )
    frames.append(done_frame(result))
    return frames


# ----------------------------------------------------------------------
# Wire codec
# ----------------------------------------------------------------------
def encode_frame(frame: dict) -> bytes:
    """One frame as an NDJSON line (UTF-8, trailing newline)."""
    return json.dumps(frame, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_frame(line: "bytes | str", strict: bool = True) -> dict:
    """Parse + validate one NDJSON line; raises StreamProtocolError.

    With ``strict=False`` an unknown event name passes through as-is
    instead of raising — the forward-compatibility mode streaming
    consumers use so new observational frame types (as ``metric`` and
    ``span`` once were) are skippable rather than fatal.  Broken JSON,
    non-object frames, a missing ``event`` key, and known events
    missing required fields stay fatal in both modes.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StreamProtocolError(f"undecodable frame: {exc}") from None
    try:
        frame = json.loads(line)
    except ValueError as exc:
        snippet = line[:80]
        raise StreamProtocolError(
            f"malformed frame (not JSON): {exc} (line starts: {snippet!r})"
        ) from None
    if not isinstance(frame, dict):
        raise StreamProtocolError(
            f"malformed frame: expected an object, got {type(frame).__name__}"
        )
    event = frame.get("event")
    if event not in FRAME_EVENTS:
        if not isinstance(event, str) or not event or strict:
            raise StreamProtocolError(
                f"unknown frame event {event!r}; expected one of "
                f"{sorted(FRAME_EVENTS)}"
            )
        return frame
    missing = [key for key in FRAME_EVENTS[event] if key not in frame]
    if missing:
        raise StreamProtocolError(
            f"{event} frame missing required field(s) {missing}"
        )
    return frame


# ----------------------------------------------------------------------
# Reassembly (client side)
# ----------------------------------------------------------------------
def assemble_stream_result(frames: Iterable[dict]) -> SweepResult:
    """Rebuild a SweepResult from a complete sweep event stream.

    Frames may arrive with jobs interleaved in any order (the executor
    runs them concurrently); reassembly orders outcomes by the global
    ``job_index`` each frame carries, exactly like the shard merge, so
    the result matches a serial run record-for-record.  The stream must
    end with a ``done`` frame whose counts agree with the frames seen —
    a cut or lossy stream raises :class:`StreamProtocolError` instead of
    silently returning a partial result.
    """
    job_records: dict[int, list] = {}
    job_errors: dict[int, JobError] = {}
    skips: dict[int, object] = {}
    terminal: dict | None = None
    for frame in frames:
        event = frame.get("event")
        if event == "record":
            job_records.setdefault(int(frame["job_index"]), []).append(
                record_from_dict(frame["record"])
            )
        elif event == "job_error":
            job_errors[int(frame["job_index"])] = error_from_dict(
                frame["error"]
            )
        elif event == "skip":
            skips[int(frame["skip_index"])] = skip_from_dict(frame["skip"])
        elif event == "done":
            terminal = frame
        # job_started / attempt / progress / metric / span / status (and
        # any event this client predates) are observational only
    if terminal is None:
        raise StreamProtocolError(
            "stream ended without a terminal done frame (connection cut?)"
        )

    jobs_seen = set(job_records) | set(job_errors)
    if set(job_records) & set(job_errors):
        both = sorted(set(job_records) & set(job_errors))
        raise StreamProtocolError(
            f"job index(es) {both} carry both records and an error"
        )
    expected_jobs = int(terminal["jobs"])
    if jobs_seen != set(range(expected_jobs)):
        stray = sorted(jobs_seen - set(range(expected_jobs)))
        missing = sorted(set(range(expected_jobs)) - jobs_seen)
        raise StreamProtocolError(
            f"stream covers {len(jobs_seen)} of {expected_jobs} jobs "
            f"(missing {missing}, stray {stray})"
        )
    sweep = Sweep()
    errors: list[JobError] = []
    for index in sorted(jobs_seen):
        if index in job_errors:
            errors.append(job_errors[index])
        else:
            sweep.extend(job_records[index])

    counts = {
        "records": len(sweep),
        "errors": len(errors),
        "skipped": len(skips),
    }
    declared = {key: int(terminal[key]) for key in counts}
    if counts != declared:
        raise StreamProtocolError(
            f"terminal frame disagrees with stream: saw {counts}, "
            f"done frame declares {declared}"
        )
    if sorted(skips) != list(range(len(skips))):
        raise StreamProtocolError("skip indices are not contiguous from 0")
    return SweepResult(
        sweep=sweep,
        skipped=[skips[i] for i in range(len(skips))],
        errors=errors,
        stats=dict(terminal["stats"]),
    )


def decode_stream(lines: Iterable["bytes | str"]) -> Iterable[dict]:
    """Decode an iterable of NDJSON lines, skipping blank keep-alives.

    Runs :func:`decode_frame` in forward-compatible mode: frames with
    an unknown event name flow through (reassembly ignores them), so a
    newer server can interleave observational frame types this client
    has never heard of.
    """
    for line in lines:
        stripped = line.strip()
        if stripped:
            yield decode_frame(stripped, strict=False)


__all__ = [
    "FRAME_EVENTS",
    "StreamProtocolError",
    "assemble_stream_result",
    "attempt_frame",
    "decode_frame",
    "decode_stream",
    "done_frame",
    "encode_frame",
    "job_error_frame",
    "job_started_frame",
    "metric_frame",
    "progress_frame",
    "record_frame",
    "result_to_frames",
    "skip_frame",
    "span_frame",
    "status_frame",
]
