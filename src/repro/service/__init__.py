"""Distributed sweep service: HTTP server, client backend, shards, processes.

The subsystem that takes the job-based sweep stack of
:mod:`repro.eval.jobs` off a single machine:

* :mod:`repro.service.server` — a stdlib HTTP eval service
  (:class:`EvalService`) exposing the Session/job API as JSON routes,
  with a transport-free :class:`ServiceApp` core;
* :mod:`repro.service.client` — :class:`ServiceBackend`, the registered
  ``"service"`` backend that makes a remote server look local, with an
  injectable transport (:func:`in_process_transport` for offline tests);
* :mod:`repro.service.sharding` — :class:`ShardPlanner` /
  :func:`merge_shard_results`: partition a plan across machines and
  recombine results record-for-record identical to a serial run;
* :mod:`repro.service.coordinator` — :class:`ShardCoordinator`: lease
  shards to pull-based workers (``/shard/next`` → ``/shard/result``)
  and merge results as they stream in, no index bookkeeping required;
* :mod:`repro.service.process` — :class:`ProcessPoolSweepExecutor`, the
  GIL-free executor variant for CPU-bound sweeps (point it at a shared
  :class:`~repro.eval.store.VerdictStore` to pool verdicts on disk);
* :mod:`repro.service.aio` — the asyncio-native sibling:
  :class:`AsyncSweepExecutor` (coroutine concurrency behind the same
  ``Executor`` interface), async backend adapters
  (:func:`to_async`/:func:`from_async`, :class:`AsyncServiceBackend`),
  and :class:`AsyncEvalService` with NDJSON streaming routes
  (``POST /sweep/stream``, ``GET /shard/status/stream``) consumed by
  :func:`iter_sweep_events`/:func:`stream_sweep`.
"""

from .aio import (
    AsyncBackend,
    AsyncEvalService,
    AsyncHTTPChatBackend,
    AsyncServiceBackend,
    AsyncSweepExecutor,
    StreamProtocolError,
    assemble_stream_result,
    from_async,
    iter_status_events,
    iter_sweep_events,
    result_to_frames,
    run_worker_async,
    serve_async,
    stream_sweep,
    submit_result_stream,
    to_async,
)
from .client import (
    DEFAULT_URL,
    ServiceBackend,
    ServiceUnreachableError,
    Transport,
    default_worker_id,
    http_transport,
    in_process_transport,
    run_worker,
)
from .coordinator import (
    ShardCoordinator,
    ShardSubmissionStream,
    load_checkpoint,
    save_checkpoint,
)
from .process import ProcessPoolSweepExecutor
from .server import EvalService, ServiceApp, serve
from .sharding import (
    PlanShard,
    ShardPlanner,
    assemble_slots,
    load_shard_manifest,
    load_shard_result,
    merge_shard_files,
    merge_shard_results,
    save_shard_result,
    shard_from_dict,
    shard_manifest_to_json,
    shard_to_dict,
    split_result_by_job,
)

__all__ = [
    "AsyncBackend",
    "AsyncEvalService",
    "AsyncHTTPChatBackend",
    "AsyncServiceBackend",
    "AsyncSweepExecutor",
    "DEFAULT_URL",
    "EvalService",
    "StreamProtocolError",
    "assemble_stream_result",
    "from_async",
    "iter_status_events",
    "iter_sweep_events",
    "result_to_frames",
    "run_worker_async",
    "serve_async",
    "stream_sweep",
    "submit_result_stream",
    "to_async",
    "PlanShard",
    "ProcessPoolSweepExecutor",
    "ServiceApp",
    "ServiceBackend",
    "ServiceUnreachableError",
    "ShardCoordinator",
    "ShardPlanner",
    "ShardSubmissionStream",
    "Transport",
    "assemble_slots",
    "default_worker_id",
    "http_transport",
    "in_process_transport",
    "run_worker",
    "load_checkpoint",
    "save_checkpoint",
    "load_shard_manifest",
    "load_shard_result",
    "merge_shard_files",
    "merge_shard_results",
    "save_shard_result",
    "serve",
    "shard_from_dict",
    "shard_manifest_to_json",
    "shard_to_dict",
    "split_result_by_job",
]
