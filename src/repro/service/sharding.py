"""Shard a SweepPlan across machines and merge the results losslessly.

The sweep is embarrassingly parallel at job granularity, so distribution
is a partition of the planner's flat job list: :class:`ShardPlanner`
deals jobs (and skip records) round-robin into ``num_shards``
:class:`PlanShard`s — strided assignment balances the per-model cost
differences that contiguous blocks would concentrate — and each shard
carries the original plan positions of its jobs, so
:func:`merge_shard_results` can reassemble records, skips and errors in
exact serial-plan order.  The invariant (and the acceptance check) is::

    merge(run(shard) for shard in split(plan)) == run(plan)

record-for-record, regardless of shard count or which executor ran each
shard.

Shard manifests serialize through the :mod:`repro.eval.export` codecs,
so a shard can be handed to another machine as JSON, executed there, and
its result shipped back the same way (:func:`save_shard_result` /
:func:`load_shard_result`, consumed by ``python -m repro merge``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..eval.export import (
    config_from_dict,
    config_to_dict,
    job_from_dict,
    job_to_dict,
    skip_from_dict,
    skip_to_dict,
    sweep_result_from_dict,
    sweep_result_to_dict,
)
from ..eval.harness import Sweep
from ..eval.jobs import JobError, SweepPlan, SweepResult


@dataclass(frozen=True)
class PlanShard:
    """One deterministic slice of a SweepPlan, with its origin indices."""

    shard_index: int
    num_shards: int
    job_indices: tuple[int, ...]
    skip_indices: tuple[int, ...]
    plan: SweepPlan

    def __len__(self) -> int:
        return len(self.plan.jobs)


class ShardPlanner:
    """Partition a plan into N shards; deterministic and order-preserving."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards

    def split(self, plan: SweepPlan) -> list[PlanShard]:
        """Round-robin the jobs/skips into ``num_shards`` sub-plans."""
        shards = []
        for index in range(self.num_shards):
            job_indices = tuple(range(index, len(plan.jobs), self.num_shards))
            skip_indices = tuple(
                range(index, len(plan.skipped), self.num_shards)
            )
            shards.append(
                PlanShard(
                    shard_index=index,
                    num_shards=self.num_shards,
                    job_indices=job_indices,
                    skip_indices=skip_indices,
                    plan=plan.subset(job_indices, skip_indices),
                )
            )
        return shards


def split_result_by_job(
    plan: SweepPlan, result: SweepResult
) -> list["list | JobError"]:
    """Attribute a result's records/errors back to the plan's jobs.

    Relies on two executor invariants: records appear in plan order with
    exactly ``job.n`` records per successful job, and the error list
    preserves plan order.
    """
    errors = list(result.errors)
    records = result.sweep.records
    position = 0
    outcomes: list = []
    for job in plan.jobs:
        if errors and errors[0].job == job:
            outcomes.append(errors.pop(0))
            continue
        chunk = records[position : position + job.n]
        if len(chunk) != job.n:
            raise ValueError(
                f"result does not match plan: job {job} expected {job.n} "
                f"records, found {len(chunk)}"
            )
        position += job.n
        outcomes.append(list(chunk))
    if errors or position != len(records):
        raise ValueError(
            "result does not match plan: "
            f"{len(errors)} unmatched errors, "
            f"{len(records) - position} unmatched records"
        )
    return outcomes


def merge_shard_results(
    shards: Sequence[PlanShard], results: Sequence[SweepResult]
) -> SweepResult:
    """Recombine shard results into one serial-order SweepResult.

    ``shards[i]`` must be the manifest that produced ``results[i]``.
    The shard set must be complete (every original plan position covered
    exactly once) so the merge is provably lossless.
    """
    if len(shards) != len(results):
        raise ValueError(
            f"{len(shards)} shards but {len(results)} results"
        )
    if not shards:
        raise ValueError("nothing to merge")
    num_shards = shards[0].num_shards
    if {s.num_shards for s in shards} != {num_shards} or len(
        {s.shard_index for s in shards}
    ) != len(shards):
        raise ValueError("shards disagree on the split or repeat an index")
    if len(shards) != num_shards:
        missing = sorted(
            set(range(num_shards)) - {s.shard_index for s in shards}
        )
        raise ValueError(
            f"incomplete shard set: {len(shards)} of {num_shards} shards "
            f"provided (missing shard indices {missing})"
        )

    job_slots: dict[int, "list | JobError"] = {}
    skip_slots: dict[int, object] = {}
    for shard, result in zip(shards, results):
        outcomes = split_result_by_job(shard.plan, result)
        for global_index, outcome in zip(shard.job_indices, outcomes):
            job_slots[global_index] = outcome
        for global_index, skip in zip(shard.skip_indices, result.skipped):
            skip_slots[global_index] = skip

    shard_stats = [dict(result.stats) for result in results]
    return assemble_slots(job_slots, skip_slots, shard_stats, num_shards)


def merge_cache_counters(caches: "Sequence[dict] | Iterable[dict]") -> dict:
    """Sum numeric counters across evaluator-cache dicts (fleet totals).

    Non-numeric (and bool) values are skipped, so a foreign executor's
    decorated stats cannot break a merge.  Shared by the shard merge
    and :class:`~repro.service.process.ProcessPoolSweepExecutor`'s
    per-worker aggregation — one definition of "how cache counters
    combine".
    """
    merged: dict = {}
    for cache in caches:
        if not isinstance(cache, dict):
            continue
        for key, value in cache.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


def _sum_cache_stats(shard_stats: Sequence[dict]) -> dict:
    """Fleet-wide evaluator-cache totals across shard stats dicts."""
    return merge_cache_counters(
        stats.get("evaluator_cache") for stats in shard_stats
    )


def assemble_slots(
    job_slots: dict,
    skip_slots: dict,
    shard_stats: Sequence[dict],
    num_shards: int,
    executor: str = "sharded",
) -> SweepResult:
    """Assemble position-keyed job/skip outcomes into one SweepResult.

    This is the tail of :func:`merge_shard_results`, split out so the
    shard coordinator can fill the slots incrementally (one shard at a
    time as results stream in) and assemble with identical semantics:
    positions must be gapless, records land in serial-plan order, and
    :class:`JobError` outcomes become the merged error list.

    The merged stats carry every key a single-executor result carries —
    ``workers`` (the widest pool any shard ran with) and
    ``evaluator_cache`` (numeric totals across shards) included — so
    code that prints either never has to care whether a result was
    merged or ran in one process.
    """
    for name, slots in (("job", job_slots), ("skip", skip_slots)):
        if set(slots) != set(range(len(slots))):
            raise ValueError(
                f"incomplete shard set: {name} positions "
                f"{sorted(set(range(max(slots, default=0) + 1)) - set(slots))} missing"
            )

    sweep = Sweep()
    errors: list[JobError] = []
    for index in range(len(job_slots)):
        outcome = job_slots[index]
        if isinstance(outcome, JobError):
            errors.append(outcome)
        else:
            sweep.extend(outcome)
    skipped = [skip_slots[i] for i in range(len(skip_slots))]

    shard_stats = [dict(stats) for stats in shard_stats]
    return SweepResult(
        sweep=sweep,
        skipped=skipped,
        errors=errors,
        stats={
            "backend": shard_stats[0].get("backend", "?") if shard_stats else "?",
            "executor": executor,
            "shards": num_shards,
            "jobs": len(job_slots),
            "jobs_failed": len(errors),
            "jobs_skipped": len(skipped),
            "records": len(sweep),
            "workers": max(
                (
                    int(s.get("workers", 0))
                    for s in shard_stats
                    if isinstance(s.get("workers"), (int, float))
                ),
                default=0,
            ),
            "evaluator_cache": _sum_cache_stats(shard_stats),
            "elapsed_seconds": sum(
                s.get("elapsed_seconds", 0.0) for s in shard_stats
            ),
            "shard_stats": shard_stats,
        },
    )


# ----------------------------------------------------------------------
# Manifest + shard-run serialization (the eval/export wire schema)
# ----------------------------------------------------------------------
def shard_to_dict(shard: PlanShard) -> dict:
    return {
        "shard_index": shard.shard_index,
        "num_shards": shard.num_shards,
        "job_indices": list(shard.job_indices),
        "skip_indices": list(shard.skip_indices),
        "config": config_to_dict(shard.plan.config),
        "jobs": [job_to_dict(job) for job in shard.plan.jobs],
        "skipped": [skip_to_dict(skip) for skip in shard.plan.skipped],
    }


def shard_from_dict(row: dict) -> PlanShard:
    return PlanShard(
        shard_index=int(row["shard_index"]),
        num_shards=int(row["num_shards"]),
        job_indices=tuple(int(i) for i in row["job_indices"]),
        skip_indices=tuple(int(i) for i in row["skip_indices"]),
        plan=SweepPlan(
            jobs=[job_from_dict(job) for job in row["jobs"]],
            skipped=[skip_from_dict(skip) for skip in row["skipped"]],
            config=config_from_dict(row["config"]),
        ),
    )


def shard_manifest_to_json(shard: PlanShard, indent: int | None = None) -> str:
    return json.dumps(shard_to_dict(shard), indent=indent)


def load_shard_manifest(payload: str) -> PlanShard:
    return shard_from_dict(json.loads(payload))


def save_shard_result(shard: PlanShard, result: SweepResult, path: str) -> None:
    """Write one executed shard (manifest + result) for a later merge."""
    if not path.endswith(".json"):
        raise ValueError(f"shard results export to .json, got {path!r}")
    payload = {
        "manifest": shard_to_dict(shard),
        "result": sweep_result_to_dict(result),
    }
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(payload))


def load_shard_result(path: str) -> tuple[PlanShard, SweepResult]:
    """Read a :func:`save_shard_result` file back."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return (
        shard_from_dict(payload["manifest"]),
        sweep_result_from_dict(payload["result"]),
    )


def merge_shard_files(paths: Sequence[str]) -> SweepResult:
    """Load executed-shard files and merge them (the CLI merge path)."""
    shards = []
    results = []
    for path in paths:
        shard, result = load_shard_result(path)
        shards.append(shard)
        results.append(result)
    return merge_shard_results(shards, results)


__all__ = [
    "PlanShard",
    "ShardPlanner",
    "assemble_slots",
    "load_shard_manifest",
    "load_shard_result",
    "merge_cache_counters",
    "merge_shard_files",
    "merge_shard_results",
    "save_shard_result",
    "shard_from_dict",
    "shard_manifest_to_json",
    "shard_to_dict",
    "split_result_by_job",
]
