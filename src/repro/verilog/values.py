"""Four-state bit-vector values for Verilog simulation.

Each :class:`Vec` models a fixed-width Verilog value where every bit is one
of ``0``, ``1``, ``x`` (unknown) or ``z`` (high impedance).  We use the VPI
a/b plane encoding: for each bit position, the pair ``(a, b)`` encodes

====  ====  =====
 a     b    state
====  ====  =====
 0     0      0
 1     0      1
 0     1      z
 1     1      x
====  ====  =====

so ``b`` is the "unknown" plane and ``a`` distinguishes 1 from 0 (and x
from z).  Both planes are stored as arbitrary-precision Python ints masked
to ``width`` bits, which keeps all bitwise operations O(1) Python ops.

Semantics follow IEEE 1364-2005 where it matters for the paper's problem
set: x-propagation in arithmetic and relational operators, per-bit
dominance rules for ``&``/``|``, two's-complement interpretation for
signed vectors, and LRM edge classification for ``posedge``/``negedge``.
"""

from __future__ import annotations

from dataclasses import dataclass


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class Vec:
    """An immutable four-state Verilog vector.

    Attributes:
        width: number of bits (>= 1).
        aval: the "a" plane (1/x distinguishing bits), masked to width.
        bval: the "b" plane (unknown bits), masked to width.
        signed: whether the vector is interpreted as two's complement.
    """

    width: int
    aval: int
    bval: int
    signed: bool = False

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError(f"vector width must be >= 1, got {self.width}")
        m = _mask(self.width)
        object.__setattr__(self, "aval", self.aval & m)
        object.__setattr__(self, "bval", self.bval & m)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_int(value: int, width: int, signed: bool = False) -> "Vec":
        """Build a fully-known vector from a Python int (two's complement)."""
        return Vec(width, value & _mask(width), 0, signed)

    @staticmethod
    def unknown(width: int, signed: bool = False) -> "Vec":
        """All bits ``x``."""
        m = _mask(width)
        return Vec(width, m, m, signed)

    @staticmethod
    def high_z(width: int, signed: bool = False) -> "Vec":
        """All bits ``z``."""
        return Vec(width, 0, _mask(width), signed)

    @staticmethod
    def from_bits(bits: str, signed: bool = False) -> "Vec":
        """Build from a bit string, MSB first, e.g. ``"10xz"``."""
        if not bits:
            raise ValueError("empty bit string")
        aval = bval = 0
        for ch in bits:
            aval <<= 1
            bval <<= 1
            if ch == "1":
                aval |= 1
            elif ch == "x" or ch == "X":
                aval |= 1
                bval |= 1
            elif ch == "z" or ch == "Z" or ch == "?":
                bval |= 1
            elif ch != "0":
                raise ValueError(f"invalid bit character {ch!r}")
        return Vec(len(bits), aval, bval, signed)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def is_fully_known(self) -> bool:
        """True when no bit is x or z."""
        return self.bval == 0

    @property
    def has_unknown(self) -> bool:
        return self.bval != 0

    def to_int(self) -> int | None:
        """Two's-complement integer value, or None if any bit is x/z."""
        if self.bval:
            return None
        if self.signed and (self.aval >> (self.width - 1)) & 1:
            return self.aval - (1 << self.width)
        return self.aval

    def to_unsigned(self) -> int | None:
        """Unsigned integer value, or None if any bit is x/z."""
        return None if self.bval else self.aval

    def bit(self, index: int) -> str:
        """State of a single bit as '0', '1', 'x' or 'z'."""
        if index < 0 or index >= self.width:
            return "x"
        a = (self.aval >> index) & 1
        b = (self.bval >> index) & 1
        return ("0", "1", "z", "x")[a | (b << 1)]

    def bits(self) -> str:
        """Bit string, MSB first."""
        return "".join(self.bit(i) for i in range(self.width - 1, -1, -1))

    def __str__(self) -> str:
        if self.is_fully_known:
            return f"{self.width}'d{self.aval}"
        return f"{self.width}'b{self.bits()}"

    # ------------------------------------------------------------------
    # Shape changes
    # ------------------------------------------------------------------
    def resize(self, width: int, signed: bool | None = None) -> "Vec":
        """Truncate or extend to ``width``.

        Extension is sign extension when the source is signed, otherwise
        zero extension; x/z in the MSB extends as x/z per the LRM.
        """
        signed = self.signed if signed is None else signed
        if width == self.width:
            return Vec(width, self.aval, self.bval, signed)
        if width < self.width:
            return Vec(width, self.aval, self.bval, signed)
        ext = width - self.width
        msb_a = (self.aval >> (self.width - 1)) & 1
        msb_b = (self.bval >> (self.width - 1)) & 1
        if self.signed or msb_b:
            fill_a = _mask(ext) if msb_a else 0
            fill_b = _mask(ext) if msb_b else 0
        else:
            fill_a = fill_b = 0
        return Vec(
            width,
            self.aval | (fill_a << self.width),
            self.bval | (fill_b << self.width),
            signed,
        )

    def as_signed(self) -> "Vec":
        return Vec(self.width, self.aval, self.bval, True)

    def as_unsigned(self) -> "Vec":
        return Vec(self.width, self.aval, self.bval, False)

    # ------------------------------------------------------------------
    # Truthiness (for if/while/ternary conditions)
    # ------------------------------------------------------------------
    def truthy(self) -> bool:
        """Condition semantics: true iff some bit is a definite 1."""
        return bool(self.aval & ~self.bval)

    def is_definitely_zero(self) -> bool:
        """True when every bit is a definite 0."""
        return self.aval == 0 and self.bval == 0


ZERO1 = Vec.from_int(0, 1)
ONE1 = Vec.from_int(1, 1)
X1 = Vec.unknown(1)


def _bool_vec(value: bool) -> Vec:
    return ONE1 if value else ZERO1


# ----------------------------------------------------------------------
# Bitwise operators (per-bit x dominance rules, LRM tables 5-13..5-16)
# ----------------------------------------------------------------------
def bit_and(lhs: Vec, rhs: Vec) -> Vec:
    """Per-bit AND: 0 dominates; anything with x/z that isn't 0 -> x."""
    width = max(lhs.width, rhs.width)
    a, b = lhs.resize(width), rhs.resize(width)
    # known-one bits and known-zero bits of each operand
    zero = (~a.aval & ~a.bval) | (~b.aval & ~b.bval)
    one = (a.aval & ~a.bval) & (b.aval & ~b.bval)
    unknown = ~zero & ~one
    m = _mask(width)
    return Vec(width, (one | unknown) & m, unknown & m)


def bit_or(lhs: Vec, rhs: Vec) -> Vec:
    """Per-bit OR: 1 dominates; anything with x/z that isn't 1 -> x."""
    width = max(lhs.width, rhs.width)
    a, b = lhs.resize(width), rhs.resize(width)
    one = (a.aval & ~a.bval) | (b.aval & ~b.bval)
    zero = (~a.aval & ~a.bval) & (~b.aval & ~b.bval)
    unknown = ~zero & ~one
    m = _mask(width)
    return Vec(width, (one | unknown) & m, unknown & m)


def bit_xor(lhs: Vec, rhs: Vec) -> Vec:
    """Per-bit XOR: any x/z bit poisons that bit."""
    width = max(lhs.width, rhs.width)
    a, b = lhs.resize(width), rhs.resize(width)
    unknown = a.bval | b.bval
    value = (a.aval ^ b.aval) & ~unknown
    m = _mask(width)
    return Vec(width, (value | unknown) & m, unknown & m)


def bit_xnor(lhs: Vec, rhs: Vec) -> Vec:
    return bit_not(bit_xor(lhs, rhs))


def bit_not(operand: Vec) -> Vec:
    """Per-bit NOT: x/z bits stay x."""
    m = _mask(operand.width)
    unknown = operand.bval
    value = (~operand.aval) & m & ~unknown
    return Vec(operand.width, (value | unknown) & m, unknown)


# ----------------------------------------------------------------------
# Reduction operators
# ----------------------------------------------------------------------
def reduce_and(operand: Vec) -> Vec:
    known_zero = ~operand.aval & ~operand.bval & _mask(operand.width)
    if known_zero:
        return ZERO1
    if operand.bval:
        return X1
    return _bool_vec(operand.aval == _mask(operand.width))


def reduce_or(operand: Vec) -> Vec:
    if operand.aval & ~operand.bval:
        return ONE1
    if operand.bval:
        return X1
    return ZERO1


def reduce_xor(operand: Vec) -> Vec:
    if operand.bval:
        return X1
    return _bool_vec(bin(operand.aval).count("1") % 2 == 1)


def reduce_nand(operand: Vec) -> Vec:
    return bit_not(reduce_and(operand))


def reduce_nor(operand: Vec) -> Vec:
    return bit_not(reduce_or(operand))


def reduce_xnor(operand: Vec) -> Vec:
    return bit_not(reduce_xor(operand))


# ----------------------------------------------------------------------
# Logical operators (operate on truthiness, 1-bit results)
# ----------------------------------------------------------------------
def _logic_state(operand: Vec) -> str:
    """'1', '0' or 'x' — the logical interpretation of a vector."""
    if operand.truthy():
        return "1"
    if operand.is_definitely_zero():
        return "0"
    return "x"


def logical_and(lhs: Vec, rhs: Vec) -> Vec:
    a, b = _logic_state(lhs), _logic_state(rhs)
    if a == "0" or b == "0":
        return ZERO1
    if a == "1" and b == "1":
        return ONE1
    return X1


def logical_or(lhs: Vec, rhs: Vec) -> Vec:
    a, b = _logic_state(lhs), _logic_state(rhs)
    if a == "1" or b == "1":
        return ONE1
    if a == "0" and b == "0":
        return ZERO1
    return X1


def logical_not(operand: Vec) -> Vec:
    state = _logic_state(operand)
    if state == "1":
        return ZERO1
    if state == "0":
        return ONE1
    return X1


# ----------------------------------------------------------------------
# Arithmetic (whole-vector x poisoning, per LRM)
# ----------------------------------------------------------------------
def _arith_operands(lhs: Vec, rhs: Vec) -> tuple[int, int, int, bool] | None:
    """Common width/sign resolution; None when either operand has x/z."""
    if lhs.bval or rhs.bval:
        return None
    width = max(lhs.width, rhs.width)
    signed = lhs.signed and rhs.signed
    a = lhs.resize(width, signed).to_int()
    b = rhs.resize(width, signed).to_int()
    assert a is not None and b is not None
    return a, b, width, signed


def add(lhs: Vec, rhs: Vec) -> Vec:
    ops = _arith_operands(lhs, rhs)
    if ops is None:
        return Vec.unknown(max(lhs.width, rhs.width))
    a, b, width, signed = ops
    return Vec.from_int(a + b, width, signed)


def sub(lhs: Vec, rhs: Vec) -> Vec:
    ops = _arith_operands(lhs, rhs)
    if ops is None:
        return Vec.unknown(max(lhs.width, rhs.width))
    a, b, width, signed = ops
    return Vec.from_int(a - b, width, signed)


def mul(lhs: Vec, rhs: Vec) -> Vec:
    ops = _arith_operands(lhs, rhs)
    if ops is None:
        return Vec.unknown(max(lhs.width, rhs.width))
    a, b, width, signed = ops
    return Vec.from_int(a * b, width, signed)


def div(lhs: Vec, rhs: Vec) -> Vec:
    ops = _arith_operands(lhs, rhs)
    if ops is None or ops[1] == 0:
        return Vec.unknown(max(lhs.width, rhs.width))
    a, b, width, signed = ops
    quotient = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        quotient = -quotient  # Verilog division truncates toward zero
    return Vec.from_int(quotient, width, signed)


def mod(lhs: Vec, rhs: Vec) -> Vec:
    ops = _arith_operands(lhs, rhs)
    if ops is None or ops[1] == 0:
        return Vec.unknown(max(lhs.width, rhs.width))
    a, b, width, signed = ops
    remainder = abs(a) % abs(b)
    if a < 0:
        remainder = -remainder  # sign follows the first operand
    return Vec.from_int(remainder, width, signed)


def power(lhs: Vec, rhs: Vec) -> Vec:
    ops = _arith_operands(lhs, rhs)
    if ops is None:
        return Vec.unknown(max(lhs.width, rhs.width))
    a, b, width, signed = ops
    if b < 0:
        if a in (1, -1):
            return Vec.from_int(a ** (-b & 1) if a == -1 else 1, width, signed)
        return Vec.from_int(0, width, signed)
    return Vec.from_int(pow(a, b), width, signed)


def negate(operand: Vec) -> Vec:
    if operand.bval:
        return Vec.unknown(operand.width)
    value = operand.to_int()
    assert value is not None
    return Vec.from_int(-value, operand.width, operand.signed)


def unary_plus(operand: Vec) -> Vec:
    return operand


# ----------------------------------------------------------------------
# Shifts
# ----------------------------------------------------------------------
def shift_left(lhs: Vec, rhs: Vec) -> Vec:
    amount = rhs.to_unsigned()
    if amount is None:
        return Vec.unknown(lhs.width)
    if amount >= lhs.width:
        return Vec.from_int(0, lhs.width, lhs.signed)
    return Vec(
        lhs.width, lhs.aval << amount, lhs.bval << amount, lhs.signed
    )


def shift_right(lhs: Vec, rhs: Vec) -> Vec:
    """Logical right shift (``>>``)."""
    amount = rhs.to_unsigned()
    if amount is None:
        return Vec.unknown(lhs.width)
    return Vec(lhs.width, lhs.aval >> amount, lhs.bval >> amount, lhs.signed)


def arith_shift_right(lhs: Vec, rhs: Vec) -> Vec:
    """Arithmetic right shift (``>>>``): sign-fills when lhs is signed."""
    amount = rhs.to_unsigned()
    if amount is None:
        return Vec.unknown(lhs.width)
    if not lhs.signed:
        return shift_right(lhs, rhs)
    amount = min(amount, lhs.width)
    msb_a = (lhs.aval >> (lhs.width - 1)) & 1
    msb_b = (lhs.bval >> (lhs.width - 1)) & 1
    fill = _mask(amount) << (lhs.width - amount) if amount else 0
    aval = (lhs.aval >> amount) | (fill if msb_a else 0)
    bval = (lhs.bval >> amount) | (fill if msb_b else 0)
    return Vec(lhs.width, aval, bval, lhs.signed)


def arith_shift_left(lhs: Vec, rhs: Vec) -> Vec:
    """``<<<`` is identical to ``<<`` in Verilog."""
    return shift_left(lhs, rhs)


# ----------------------------------------------------------------------
# Comparisons
# ----------------------------------------------------------------------
def eq(lhs: Vec, rhs: Vec) -> Vec:
    """Logical equality ``==``: x/z anywhere makes the result x."""
    width = max(lhs.width, rhs.width)
    signed = lhs.signed and rhs.signed
    a, b = lhs.resize(width, signed), rhs.resize(width, signed)
    if a.bval or b.bval:
        return X1
    return _bool_vec(a.aval == b.aval)


def neq(lhs: Vec, rhs: Vec) -> Vec:
    return logical_not(eq(lhs, rhs))


def case_eq(lhs: Vec, rhs: Vec) -> Vec:
    """Case equality ``===``: compares x/z literally, always 0/1."""
    width = max(lhs.width, rhs.width)
    a, b = lhs.resize(width), rhs.resize(width)
    return _bool_vec(a.aval == b.aval and a.bval == b.bval)


def case_neq(lhs: Vec, rhs: Vec) -> Vec:
    return logical_not(case_eq(lhs, rhs))


def _relational(lhs: Vec, rhs: Vec) -> tuple[int, int] | None:
    ops = _arith_operands(lhs, rhs)
    if ops is None:
        return None
    return ops[0], ops[1]


def lt(lhs: Vec, rhs: Vec) -> Vec:
    ops = _relational(lhs, rhs)
    return X1 if ops is None else _bool_vec(ops[0] < ops[1])


def le(lhs: Vec, rhs: Vec) -> Vec:
    ops = _relational(lhs, rhs)
    return X1 if ops is None else _bool_vec(ops[0] <= ops[1])


def gt(lhs: Vec, rhs: Vec) -> Vec:
    ops = _relational(lhs, rhs)
    return X1 if ops is None else _bool_vec(ops[0] > ops[1])


def ge(lhs: Vec, rhs: Vec) -> Vec:
    ops = _relational(lhs, rhs)
    return X1 if ops is None else _bool_vec(ops[0] >= ops[1])


# ----------------------------------------------------------------------
# Concatenation / selection
# ----------------------------------------------------------------------
def concat(parts: list[Vec]) -> Vec:
    """Concatenate, first element is the most significant part."""
    if not parts:
        raise ValueError("empty concatenation")
    aval = bval = 0
    width = 0
    for part in parts:
        aval = (aval << part.width) | part.aval
        bval = (bval << part.width) | part.bval
        width += part.width
    return Vec(width, aval, bval, False)


def replicate(count: int, value: Vec) -> Vec:
    if count < 1:
        raise ValueError(f"replication count must be >= 1, got {count}")
    return concat([value] * count)


def select_bit(value: Vec, index: int | None) -> Vec:
    """Bit select; out-of-range or unknown index yields x."""
    if index is None or index < 0 or index >= value.width:
        return X1
    return Vec(1, (value.aval >> index) & 1, (value.bval >> index) & 1)


def select_part(value: Vec, msb: int, lsb: int) -> Vec:
    """Constant part select ``[msb:lsb]``; out-of-range bits read x."""
    if msb < lsb:
        msb, lsb = lsb, msb
    width = msb - lsb + 1
    aval = bval = 0
    for offset in range(width):
        index = lsb + offset
        if 0 <= index < value.width:
            aval |= ((value.aval >> index) & 1) << offset
            bval |= ((value.bval >> index) & 1) << offset
        else:
            aval |= 1 << offset
            bval |= 1 << offset
    return Vec(width, aval, bval)


def insert_part(target: Vec, msb: int, lsb: int, piece: Vec) -> Vec:
    """Return target with bits [msb:lsb] replaced by piece (LSB aligned)."""
    if msb < lsb:
        msb, lsb = lsb, msb
    width = msb - lsb + 1
    piece = piece.resize(width)
    aval, bval = target.aval, target.bval
    for offset in range(width):
        index = lsb + offset
        if 0 <= index < target.width:
            bit_mask = 1 << index
            aval = (aval & ~bit_mask) | (((piece.aval >> offset) & 1) << index)
            bval = (bval & ~bit_mask) | (((piece.bval >> offset) & 1) << index)
    return Vec(target.width, aval, bval, target.signed)


# ----------------------------------------------------------------------
# Edge classification (LRM 1364-2005 Table 9-2)
# ----------------------------------------------------------------------
def edge_kind(old: Vec, new: Vec) -> str | None:
    """Classify a transition of the LSB: 'posedge', 'negedge' or None.

    posedge: 0->1, 0->x, 0->z, x->1, z->1.
    negedge: 1->0, 1->x, 1->z, x->0, z->0.
    """
    before, after = old.bit(0), new.bit(0)
    if before == after:
        return None
    if before in "xz" and after in "xz":
        return None
    if before == "0" or after == "1":
        return "posedge"
    if before == "1" or after == "0":
        return "negedge"
    return None
