"""Recursive-descent parser for the Verilog-2001 subset.

Accepts the synthesizable constructs used by the 17-problem evaluation set
and its test benches: ANSI and non-ANSI module headers, parameter lists,
wire/reg/integer declarations (with memories), continuous assigns, always
and initial blocks with full procedural statements, module instantiation
with named/positional connections and parameter overrides, and simple
functions.  Raises :class:`ParseError` with a source position on the first
violation — this is the "compile check" gate of the evaluation pipeline.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import Token, tokenize

# Binary operator precedence, higher binds tighter (LRM table 5-4).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "~^": 4, "^~": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
    "**": 11,
}

_UNARY_OPS = frozenset(["+", "-", "!", "~", "&", "~&", "|", "~|", "^", "~^", "^~"])


def _based_digits_to_bits(base: str, digits: str) -> str:
    """Expand based-literal digits into an MSB-first 0/1/x/z string."""
    per_digit = {"b": 1, "o": 3, "h": 4}
    if base == "d":
        if any(ch in "xXzZ?" for ch in digits):
            # decimal x/z literal must be a single digit, e.g. 'dx
            ch = digits[0].lower().replace("?", "z")
            return ch * 32
        return format(int(digits), "b")
    width = per_digit[base]
    bits = []
    for ch in digits:
        if ch in "xX":
            bits.append("x" * width)
        elif ch in "zZ?":
            bits.append("z" * width)
        else:
            bits.append(format(int(ch, 16), f"0{width}b"))
    return "".join(bits)


def _sized_bits(bits: str, width: int) -> str:
    """Pad/truncate an MSB-first bit string to an exact width (LRM rules)."""
    if len(bits) >= width:
        return bits[len(bits) - width:]
    pad = bits[0] if bits[0] in "xz" else "0"
    return pad * (width - len(bits)) + bits


class Parser:
    """Parses a token stream into a :class:`repro.verilog.ast.SourceUnit`."""

    def __init__(self, tokens: list[Token]):
        self.tokens = tokens
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.pos += 1
        return token

    def _check(self, kind: str, text: str | None = None) -> bool:
        token = self.current
        return token.kind == kind and (text is None or token.text == text)

    def _check_op(self, text: str) -> bool:
        return self._check("OP", text)

    def _check_kw(self, text: str) -> bool:
        return self._check("KEYWORD", text)

    def _accept(self, kind: str, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: str | None = None) -> Token:
        if self._check(kind, text):
            return self._advance()
        want = text if text is not None else kind
        raise ParseError(
            f"expected {want!r}, found {self.current.text!r}",
            self.current.line,
            self.current.column,
        )

    def _error(self, message: str) -> ParseError:
        return ParseError(message, self.current.line, self.current.column)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> ast.SourceUnit:
        unit = ast.SourceUnit()
        while not self._check("EOF"):
            if self._check_kw("module"):
                unit.modules.append(self._parse_module())
            else:
                raise self._error(
                    f"expected 'module', found {self.current.text!r}"
                )
        if not unit.modules:
            raise ParseError("source contains no modules", 1, 1)
        return unit

    # ------------------------------------------------------------------
    # Module
    # ------------------------------------------------------------------
    def _parse_module(self) -> ast.Module:
        start = self._expect("KEYWORD", "module")
        name = self._expect("ID").text
        module = ast.Module(name=name, line=start.line)
        if self._check_op("#"):
            self._parse_module_params(module)
        header_names: list[str] = []
        if self._accept("OP", "("):
            self._parse_port_list(module, header_names)
        self._expect("OP", ";")
        while not self._check_kw("endmodule"):
            if self._check("EOF"):
                raise self._error("missing 'endmodule'")
            self._parse_module_item(module, header_names)
        self._expect("KEYWORD", "endmodule")
        self._resolve_non_ansi_ports(module, header_names)
        return module

    def _parse_module_params(self, module: ast.Module) -> None:
        self._expect("OP", "#")
        self._expect("OP", "(")
        while True:
            self._accept("KEYWORD", "parameter")
            if self._accept("KEYWORD", "signed"):
                pass
            if self._check_op("["):
                self._parse_range()
            name_tok = self._expect("ID")
            self._expect("OP", "=")
            value = self._parse_expression()
            module.params.append(
                ast.ParamDecl(name=name_tok.text, value=value, line=name_tok.line)
            )
            if not self._accept("OP", ","):
                break
        self._expect("OP", ")")

    def _parse_port_list(self, module: ast.Module, header_names: list[str]) -> None:
        if self._accept("OP", ")"):
            return
        direction = None
        net_kind = "wire"
        signed = False
        rng: ast.Range | None = None
        while True:
            token = self.current
            if token.kind == "KEYWORD" and token.text in ("input", "output", "inout"):
                direction = self._advance().text
                net_kind = "wire"
                signed = False
                rng = None
                if self._accept("KEYWORD", "reg"):
                    net_kind = "reg"
                elif self._accept("KEYWORD", "wire"):
                    net_kind = "wire"
                if self._accept("KEYWORD", "signed"):
                    signed = True
                if self._check_op("["):
                    rng = self._parse_range()
                name_tok = self._expect("ID")
                module.ports.append(
                    ast.Port(
                        direction=direction,
                        name=name_tok.text,
                        range=rng,
                        net_kind=net_kind,
                        signed=signed,
                        line=name_tok.line,
                    )
                )
            elif token.kind == "ID":
                name_tok = self._advance()
                if direction is not None:
                    # continuation of an ANSI group: input a, b, c
                    module.ports.append(
                        ast.Port(
                            direction=direction,
                            name=name_tok.text,
                            range=rng,
                            net_kind=net_kind,
                            signed=signed,
                            line=name_tok.line,
                        )
                    )
                else:
                    header_names.append(name_tok.text)
            else:
                raise self._error(
                    f"unexpected token {token.text!r} in port list"
                )
            if self._accept("OP", ","):
                continue
            self._expect("OP", ")")
            return

    def _resolve_non_ansi_ports(
        self, module: ast.Module, header_names: list[str]
    ) -> None:
        """Attach body input/output declarations to header-only port names."""
        if not header_names:
            return
        declared = {port.name: port for port in module.ports}
        ordered: list[ast.Port] = []
        for name in header_names:
            port = declared.get(name)
            if port is None:
                raise ParseError(
                    f"port {name!r} has no direction declaration", module.line, 1
                )
            ordered.append(port)
        module.ports = ordered

    # ------------------------------------------------------------------
    # Module items
    # ------------------------------------------------------------------
    def _parse_module_item(self, module: ast.Module, header_names: list[str]) -> None:
        token = self.current
        if token.kind == "KEYWORD":
            handler = {
                "parameter": self._parse_param_decl,
                "localparam": self._parse_param_decl,
                "wire": self._parse_net_decl,
                "reg": self._parse_net_decl,
                "integer": self._parse_net_decl,
                "genvar": self._parse_net_decl,
            }.get(token.text)
            if handler is not None:
                handler(module)
                return
            if token.text in ("input", "output", "inout"):
                self._parse_body_port_decl(module, header_names)
                return
            if token.text == "assign":
                self._parse_continuous_assign(module)
                return
            if token.text == "always":
                line = self._advance().line
                body = self._parse_statement()
                module.always_blocks.append(ast.AlwaysBlock(body=body, line=line))
                return
            if token.text == "initial":
                line = self._advance().line
                body = self._parse_statement()
                module.initial_blocks.append(ast.InitialBlock(body=body, line=line))
                return
            if token.text == "function":
                module.functions.append(self._parse_function())
                return
            raise self._error(f"unsupported module item {token.text!r}")
        if token.kind == "ID":
            self._parse_instance(module)
            return
        raise self._error(f"unexpected token {token.text!r} in module body")

    def _parse_param_decl(self, module: ast.Module) -> None:
        kw = self._advance()
        is_local = kw.text == "localparam"
        if self._accept("KEYWORD", "signed"):
            pass
        if self._check_op("["):
            self._parse_range()
        while True:
            name_tok = self._expect("ID")
            self._expect("OP", "=")
            value = self._parse_expression()
            module.params.append(
                ast.ParamDecl(
                    name=name_tok.text,
                    value=value,
                    is_local=is_local,
                    line=name_tok.line,
                )
            )
            if not self._accept("OP", ","):
                break
        self._expect("OP", ";")

    def _parse_net_decl(self, module: ast.Module) -> None:
        kind = self._advance().text
        signed = bool(self._accept("KEYWORD", "signed"))
        rng = self._parse_range() if self._check_op("[") else None
        if kind == "integer":
            signed = True
        while True:
            name_tok = self._expect("ID")
            array = self._parse_range() if self._check_op("[") else None
            init = None
            if self._accept("OP", "="):
                init = self._parse_expression()
            module.decls.append(
                ast.NetDecl(
                    kind=kind,
                    name=name_tok.text,
                    range=rng,
                    array=array,
                    signed=signed,
                    init=init,
                    line=name_tok.line,
                )
            )
            if not self._accept("OP", ","):
                break
        self._expect("OP", ";")

    def _parse_body_port_decl(
        self, module: ast.Module, header_names: list[str]
    ) -> None:
        direction = self._advance().text
        net_kind = "wire"
        if self._accept("KEYWORD", "reg"):
            net_kind = "reg"
        elif self._accept("KEYWORD", "wire"):
            net_kind = "wire"
        signed = bool(self._accept("KEYWORD", "signed"))
        rng = self._parse_range() if self._check_op("[") else None
        while True:
            name_tok = self._expect("ID")
            module.ports.append(
                ast.Port(
                    direction=direction,
                    name=name_tok.text,
                    range=rng,
                    net_kind=net_kind,
                    signed=signed,
                    line=name_tok.line,
                )
            )
            if not self._accept("OP", ","):
                break
        self._expect("OP", ";")

    def _parse_continuous_assign(self, module: ast.Module) -> None:
        line = self._expect("KEYWORD", "assign").line
        if self._check_op("#"):  # assign #delay is ignored (no inertial nets)
            self._advance()
            self._parse_primary()
        while True:
            target = self._parse_lvalue()
            self._expect("OP", "=")
            value = self._parse_expression()
            module.assigns.append(
                ast.ContinuousAssign(target=target, value=value, line=line)
            )
            if not self._accept("OP", ","):
                break
        self._expect("OP", ";")

    def _parse_instance(self, module: ast.Module) -> None:
        module_name = self._expect("ID").text
        instance = ast.Instance(module_name=module_name, line=self.current.line)
        if self._accept("OP", "#"):
            self._expect("OP", "(")
            instance.param_overrides = self._parse_connection_list()
            self._expect("OP", ")")
        instance.instance_name = self._expect("ID").text
        self._expect("OP", "(")
        instance.connections = self._parse_connection_list()
        self._expect("OP", ")")
        self._expect("OP", ";")
        module.instances.append(instance)

    def _parse_connection_list(self) -> list[ast.PortConnection]:
        connections: list[ast.PortConnection] = []
        if self._check_op(")"):
            return connections
        while True:
            if self._accept("OP", "."):
                name = self._expect("ID").text
                self._expect("OP", "(")
                expr = None if self._check_op(")") else self._parse_expression()
                self._expect("OP", ")")
                connections.append(ast.PortConnection(name=name, expr=expr))
            else:
                connections.append(
                    ast.PortConnection(name=None, expr=self._parse_expression())
                )
            if not self._accept("OP", ","):
                break
        return connections

    def _parse_function(self) -> ast.FunctionDecl:
        line = self._expect("KEYWORD", "function").line
        signed = bool(self._accept("KEYWORD", "signed"))
        rng = self._parse_range() if self._check_op("[") else None
        if self._accept("KEYWORD", "integer"):
            signed = True
        name = self._expect("ID").text
        func = ast.FunctionDecl(name=name, range=rng, signed=signed, line=line)
        if self._accept("OP", "("):  # ANSI-style function ports
            while not self._check_op(")"):
                direction = self._expect("KEYWORD", "input").text
                port_signed = bool(self._accept("KEYWORD", "signed"))
                port_rng = self._parse_range() if self._check_op("[") else None
                while True:
                    port_name = self._expect("ID").text
                    func.inputs.append(
                        ast.Port(
                            direction=direction,
                            name=port_name,
                            range=port_rng,
                            signed=port_signed,
                        )
                    )
                    if not self._accept("OP", ","):
                        break
                    if self._check_kw("input"):
                        break
            self._expect("OP", ")")
        self._expect("OP", ";")
        while True:
            if self._check_kw("input"):
                self._advance()
                port_signed = bool(self._accept("KEYWORD", "signed"))
                port_rng = self._parse_range() if self._check_op("[") else None
                while True:
                    port_name = self._expect("ID").text
                    func.inputs.append(
                        ast.Port(
                            direction="input",
                            name=port_name,
                            range=port_rng,
                            signed=port_signed,
                        )
                    )
                    if not self._accept("OP", ","):
                        break
                self._expect("OP", ";")
            elif self._check_kw("reg") or self._check_kw("integer"):
                kind = self._advance().text
                decl_signed = bool(self._accept("KEYWORD", "signed"))
                decl_rng = self._parse_range() if self._check_op("[") else None
                while True:
                    decl_name = self._expect("ID").text
                    func.decls.append(
                        ast.NetDecl(
                            kind=kind,
                            name=decl_name,
                            range=decl_rng,
                            signed=decl_signed or kind == "integer",
                        )
                    )
                    if not self._accept("OP", ","):
                        break
                self._expect("OP", ";")
            else:
                break
        func.body = self._parse_statement()
        self._expect("KEYWORD", "endfunction")
        return func

    # ------------------------------------------------------------------
    # Ranges
    # ------------------------------------------------------------------
    def _parse_range(self) -> ast.Range:
        self._expect("OP", "[")
        msb = self._parse_expression()
        self._expect("OP", ":")
        lsb = self._parse_expression()
        self._expect("OP", "]")
        return ast.Range(msb=msb, lsb=lsb)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.kind == "KEYWORD":
            text = token.text
            if text == "begin":
                return self._parse_block()
            if text == "if":
                return self._parse_if()
            if text in ("case", "casez", "casex"):
                return self._parse_case()
            if text == "for":
                return self._parse_for()
            if text == "while":
                return self._parse_while()
            if text == "repeat":
                return self._parse_repeat()
            if text == "forever":
                line = self._advance().line
                return ast.Forever(body=self._parse_statement(), line=line)
            if text == "wait":
                line = self._advance().line
                self._expect("OP", "(")
                cond = self._parse_expression()
                self._expect("OP", ")")
                body = (
                    ast.NullStmt(line=line)
                    if self._accept("OP", ";")
                    else self._parse_statement()
                )
                return ast.Wait(cond=cond, body=body, line=line)
            if text == "disable":
                line = self._advance().line
                target = self._expect("ID").text
                self._expect("OP", ";")
                return ast.Disable(target=target, line=line)
            raise self._error(f"unsupported statement keyword {text!r}")
        if token.kind == "OP" and token.text == "#":
            return self._parse_delay_statement()
        if token.kind == "OP" and token.text == "@":
            return self._parse_event_control()
        if token.kind == "OP" and token.text == ";":
            line = self._advance().line
            return ast.NullStmt(line=line)
        if token.kind == "SYSID":
            return self._parse_system_task()
        if token.kind == "ID" or (token.kind == "OP" and token.text == "{"):
            return self._parse_assignment_or_task()
        raise self._error(f"unexpected token {token.text!r} in statement")

    def _parse_block(self) -> ast.Block:
        line = self._expect("KEYWORD", "begin").line
        name = None
        if self._accept("OP", ":"):
            name = self._expect("ID").text
        block = ast.Block(name=name, line=line)
        while not self._check_kw("end"):
            if self._check("EOF"):
                raise self._error("missing 'end'")
            # local declarations inside named blocks are not supported;
            # the problem set never uses them.
            block.stmts.append(self._parse_statement())
        self._expect("KEYWORD", "end")
        return block

    def _parse_if(self) -> ast.If:
        line = self._expect("KEYWORD", "if").line
        self._expect("OP", "(")
        cond = self._parse_expression()
        self._expect("OP", ")")
        then_stmt = self._parse_statement()
        else_stmt = None
        if self._accept("KEYWORD", "else"):
            else_stmt = self._parse_statement()
        return ast.If(cond=cond, then_stmt=then_stmt, else_stmt=else_stmt, line=line)

    def _parse_case(self) -> ast.Case:
        kind_tok = self._advance()
        self._expect("OP", "(")
        subject = self._parse_expression()
        self._expect("OP", ")")
        case = ast.Case(kind=kind_tok.text, subject=subject, line=kind_tok.line)
        while not self._check_kw("endcase"):
            if self._check("EOF"):
                raise self._error("missing 'endcase'")
            item = ast.CaseItem()
            if self._accept("KEYWORD", "default"):
                self._accept("OP", ":")
            else:
                while True:
                    item.exprs.append(self._parse_expression())
                    if not self._accept("OP", ","):
                        break
                self._expect("OP", ":")
            item.body = self._parse_statement()
            case.items.append(item)
        self._expect("KEYWORD", "endcase")
        return case

    def _parse_for(self) -> ast.For:
        line = self._expect("KEYWORD", "for").line
        self._expect("OP", "(")
        init = self._parse_bare_assignment()
        self._expect("OP", ";")
        cond = self._parse_expression()
        self._expect("OP", ";")
        step = self._parse_bare_assignment()
        self._expect("OP", ")")
        body = self._parse_statement()
        return ast.For(init=init, cond=cond, step=step, body=body, line=line)

    def _parse_while(self) -> ast.While:
        line = self._expect("KEYWORD", "while").line
        self._expect("OP", "(")
        cond = self._parse_expression()
        self._expect("OP", ")")
        return ast.While(cond=cond, body=self._parse_statement(), line=line)

    def _parse_repeat(self) -> ast.Repeat:
        line = self._expect("KEYWORD", "repeat").line
        self._expect("OP", "(")
        count = self._parse_expression()
        self._expect("OP", ")")
        return ast.Repeat(count=count, body=self._parse_statement(), line=line)

    def _parse_delay_statement(self) -> ast.DelayStmt:
        line = self._expect("OP", "#").line
        delay = self._parse_primary()
        if self._accept("OP", ";"):
            body: ast.Stmt = ast.NullStmt(line=line)
        else:
            body = self._parse_statement()
        return ast.DelayStmt(delay=delay, body=body, line=line)

    def _parse_event_control(self) -> ast.EventControl:
        line = self._expect("OP", "@").line
        senses: list[ast.SenseItem] = []
        if self._accept("OP", "*"):
            pass  # @* — implicit sensitivity
        else:
            self._expect("OP", "(")
            if self._accept("OP", "*"):
                self._expect("OP", ")")
            else:
                while True:
                    edge = None
                    if self._accept("KEYWORD", "posedge"):
                        edge = "posedge"
                    elif self._accept("KEYWORD", "negedge"):
                        edge = "negedge"
                    expr = self._parse_expression()
                    senses.append(ast.SenseItem(edge=edge, expr=expr))
                    if self._accept("KEYWORD", "or") or self._accept("OP", ","):
                        continue
                    break
                self._expect("OP", ")")
        if self._accept("OP", ";"):
            body: ast.Stmt = ast.NullStmt(line=line)
        else:
            body = self._parse_statement()
        return ast.EventControl(senses=senses, body=body, line=line)

    def _parse_system_task(self) -> ast.SysTaskCall:
        name_tok = self._advance()
        args: list[ast.Expr] = []
        if self._accept("OP", "("):
            if not self._check_op(")"):
                while True:
                    args.append(self._parse_expression())
                    if not self._accept("OP", ","):
                        break
            self._expect("OP", ")")
        self._expect("OP", ";")
        return ast.SysTaskCall(name=name_tok.text, args=args, line=name_tok.line)

    def _parse_assignment_or_task(self) -> ast.Stmt:
        stmt = self._parse_bare_assignment()
        self._expect("OP", ";")
        return stmt

    def _parse_bare_assignment(self) -> ast.Stmt:
        """An assignment without the trailing semicolon (for-loop headers)."""
        line = self.current.line
        target = self._parse_lvalue()
        if self._accept("OP", "<="):
            nonblocking = True
        else:
            self._expect("OP", "=")
            nonblocking = False
        delay = None
        if self._accept("OP", "#"):
            delay = self._parse_primary()
        value = self._parse_expression()
        return ast.Assign(
            target=target,
            value=value,
            nonblocking=nonblocking,
            delay=delay,
            line=line,
        )

    def _parse_lvalue(self) -> ast.Expr:
        if self._check_op("{"):
            return self._parse_concat()
        name_tok = self._expect("ID")
        expr: ast.Expr = ast.Identifier(name=name_tok.text, line=name_tok.line)
        while self._check_op("["):
            expr = self._parse_select(expr)
        return expr

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self._accept("OP", "?"):
            if_true = self._parse_expression()
            self._expect("OP", ":")
            if_false = self._parse_expression()
            return ast.Ternary(
                cond=cond, if_true=if_true, if_false=if_false, line=cond.line
            )
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.current
            if token.kind != "OP":
                return lhs
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return lhs
            op = self._advance().text
            rhs = self._parse_binary(precedence + 1)
            lhs = ast.Binary(op=op, lhs=lhs, rhs=rhs, line=token.line)

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "OP" and token.text in _UNARY_OPS:
            self._advance()
            operand = self._parse_unary()
            return ast.Unary(op=token.text, operand=operand, line=token.line)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while self._check_op("["):
            expr = self._parse_select(expr)
        return expr

    def _parse_select(self, base: ast.Expr) -> ast.Expr:
        line = self._expect("OP", "[").line
        first = self._parse_expression()
        if self._accept("OP", ":"):
            second = self._parse_expression()
            self._expect("OP", "]")
            return ast.PartSelect(base=base, msb=first, lsb=second, line=line)
        if self._accept("OP", "+:"):
            width = self._parse_expression()
            self._expect("OP", "]")
            return ast.IndexedPartSelect(
                base=base, start=first, width=width, ascending=True, line=line
            )
        if self._accept("OP", "-:"):
            width = self._parse_expression()
            self._expect("OP", "]")
            return ast.IndexedPartSelect(
                base=base, start=first, width=width, ascending=False, line=line
            )
        self._expect("OP", "]")
        return ast.BitSelect(base=base, index=first, line=line)

    def _parse_concat(self) -> ast.Expr:
        line = self._expect("OP", "{").line
        first = self._parse_expression()
        if self._check_op("{"):
            # replication: { count { value, ... } }
            self._expect("OP", "{")
            parts = [self._parse_expression()]
            while self._accept("OP", ","):
                parts.append(self._parse_expression())
            self._expect("OP", "}")
            self._expect("OP", "}")
            value: ast.Expr
            if len(parts) == 1:
                value = parts[0]
            else:
                value = ast.Concat(parts=parts, line=line)
            return ast.Replicate(count=first, value=value, line=line)
        parts = [first]
        while self._accept("OP", ","):
            parts.append(self._parse_expression())
        self._expect("OP", "}")
        return ast.Concat(parts=parts, line=line)

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "NUMBER":
            self._advance()
            value = token.meta[0] if token.meta else int(token.text)
            bits = format(value, "b") if value >= 0 else format(value & 0xFFFFFFFF, "b")
            return ast.Number(
                value_bits=_sized_bits(bits, 32),
                width=32,
                signed=True,
                sized=False,
                line=token.line,
            )
        if token.kind == "BASED_NUMBER":
            self._advance()
            size, base, digits, signed = token.meta
            bits = _based_digits_to_bits(base, digits)
            width = size if size is not None else max(32, 1)
            return ast.Number(
                value_bits=_sized_bits(bits, width),
                width=width,
                signed=signed,
                sized=size is not None,
                line=token.line,
            )
        if token.kind == "STRING":
            self._advance()
            return ast.StringLit(text=token.text[1:-1], line=token.line)
        if token.kind == "SYSID":
            self._advance()
            args: list[ast.Expr] = []
            if self._accept("OP", "("):
                if not self._check_op(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("OP", ","):
                            break
                self._expect("OP", ")")
            return ast.SystemCall(name=token.text, args=args, line=token.line)
        if token.kind == "ID":
            self._advance()
            if self._check_op("(") :
                self._advance()
                args = []
                if not self._check_op(")"):
                    while True:
                        args.append(self._parse_expression())
                        if not self._accept("OP", ","):
                            break
                self._expect("OP", ")")
                return ast.FunctionCall(name=token.text, args=args, line=token.line)
            return ast.Identifier(name=token.text, line=token.line)
        if token.kind == "OP" and token.text == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect("OP", ")")
            return expr
        if token.kind == "OP" and token.text == "{":
            return self._parse_concat()
        raise self._error(f"unexpected token {token.text!r} in expression")


def parse(source: str) -> ast.SourceUnit:
    """Parse Verilog source text into an AST (lex + parse)."""
    return Parser(tokenize(source)).parse()
