"""AST pretty-printer: unparse a parsed design back to Verilog source.

Used for corpus normalization, for emitting mutated designs, and — most
importantly — for the parser's round-trip property tests: for every
module ``m``, ``parse(write(parse(m)))`` must produce a structurally
identical AST.
"""

from __future__ import annotations

from . import ast

_INDENT = "  "


def write_source_unit(unit: ast.SourceUnit) -> str:
    return "\n".join(write_module(module) for module in unit.modules)


def write_module(module: ast.Module) -> str:
    lines: list[str] = []
    header = f"module {module.name}"
    non_local = [p for p in module.params if not p.is_local]
    if non_local:
        params = ", ".join(
            f"parameter {p.name} = {write_expr(p.value)}" for p in non_local
        )
        header += f" #({params})"
    if module.ports:
        ports = ", ".join(_write_port(port) for port in module.ports)
        header += f"({ports})"
    lines.append(header + ";")
    for param in module.params:
        if param.is_local:
            lines.append(
                f"{_INDENT}localparam {param.name} = {write_expr(param.value)};"
            )
    for decl in module.decls:
        lines.append(_INDENT + _write_decl(decl))
    for func in module.functions:
        lines.extend(_write_function(func))
    for cont in module.assigns:
        lines.append(
            f"{_INDENT}assign {write_expr(cont.target)} = "
            f"{write_expr(cont.value)};"
        )
    for instance in module.instances:
        lines.append(_INDENT + _write_instance(instance))
    blocks = [("always", blk.body, blk.line) for blk in module.always_blocks]
    blocks += [("initial", blk.body, blk.line) for blk in module.initial_blocks]
    blocks.sort(key=lambda item: item[2])
    for kind, body, _ in blocks:
        lines.append(f"{_INDENT}{kind} " + write_stmt(body, 1).lstrip())
    lines.append("endmodule")
    return "\n".join(lines)


def _write_port(port: ast.Port) -> str:
    parts = [port.direction]
    if port.net_kind == "reg":
        parts.append("reg")
    if port.signed:
        parts.append("signed")
    if port.range is not None:
        parts.append(_write_range(port.range))
    parts.append(port.name)
    return " ".join(parts)


def _write_range(rng: ast.Range) -> str:
    return f"[{write_expr(rng.msb)}:{write_expr(rng.lsb)}]"


def _write_decl(decl: ast.NetDecl) -> str:
    parts = [decl.kind]
    if decl.signed and decl.kind not in ("integer",):
        parts.append("signed")
    if decl.range is not None:
        parts.append(_write_range(decl.range))
    parts.append(decl.name)
    if decl.array is not None:
        parts.append(_write_range(decl.array))
    text = " ".join(parts)
    if decl.init is not None:
        text += f" = {write_expr(decl.init)}"
    return text + ";"


def _write_instance(instance: ast.Instance) -> str:
    text = instance.module_name
    if instance.param_overrides:
        overrides = ", ".join(
            f".{c.name}({write_expr(c.expr)})" if c.name
            else write_expr(c.expr)
            for c in instance.param_overrides
        )
        text += f" #({overrides})"
    connections = ", ".join(
        f".{c.name}({write_expr(c.expr) if c.expr is not None else ''})"
        if c.name is not None
        else (write_expr(c.expr) if c.expr is not None else "")
        for c in instance.connections
    )
    return f"{text} {instance.instance_name}({connections});"


def _write_function(func: ast.FunctionDecl) -> list[str]:
    lines = []
    header = f"{_INDENT}function "
    if func.signed:
        header += "signed "
    if func.range is not None:
        header += _write_range(func.range) + " "
    lines.append(header + func.name + ";")
    for port in func.inputs:
        rng = f" {_write_range(port.range)}" if port.range else ""
        signed = " signed" if port.signed else ""
        lines.append(f"{_INDENT * 2}input{signed}{rng} {port.name};")
    for decl in func.decls:
        lines.append(_INDENT * 2 + _write_decl(decl))
    lines.append(write_stmt(func.body, 2))
    lines.append(f"{_INDENT}endfunction")
    return lines


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
def write_stmt(stmt: ast.Stmt | None, depth: int = 0) -> str:
    pad = _INDENT * depth
    if stmt is None or isinstance(stmt, ast.NullStmt):
        return pad + ";"
    if isinstance(stmt, ast.Block):
        name = f" : {stmt.name}" if stmt.name else ""
        inner = "\n".join(write_stmt(s, depth + 1) for s in stmt.stmts)
        return f"{pad}begin{name}\n{inner}\n{pad}end" if stmt.stmts else f"{pad}begin{name}\n{pad}end"
    if isinstance(stmt, ast.Assign):
        op = "<=" if stmt.nonblocking else "="
        delay = f"#{write_expr(stmt.delay)} " if stmt.delay is not None else ""
        return (
            f"{pad}{write_expr(stmt.target)} {op} {delay}"
            f"{write_expr(stmt.value)};"
        )
    if isinstance(stmt, ast.If):
        text = f"{pad}if ({write_expr(stmt.cond)})\n" + write_stmt(
            stmt.then_stmt, depth + 1
        )
        if stmt.else_stmt is not None:
            text += f"\n{pad}else\n" + write_stmt(stmt.else_stmt, depth + 1)
        return text
    if isinstance(stmt, ast.Case):
        lines = [f"{pad}{stmt.kind} ({write_expr(stmt.subject)})"]
        for item in stmt.items:
            label = (
                ", ".join(write_expr(e) for e in item.exprs)
                if item.exprs
                else "default"
            )
            lines.append(f"{pad}{_INDENT}{label}:")
            lines.append(write_stmt(item.body, depth + 2))
        lines.append(f"{pad}endcase")
        return "\n".join(lines)
    if isinstance(stmt, ast.For):
        init = write_stmt(stmt.init, 0).strip().rstrip(";")
        step = write_stmt(stmt.step, 0).strip().rstrip(";")
        return (
            f"{pad}for ({init}; {write_expr(stmt.cond)}; {step})\n"
            + write_stmt(stmt.body, depth + 1)
        )
    if isinstance(stmt, ast.While):
        return f"{pad}while ({write_expr(stmt.cond)})\n" + write_stmt(
            stmt.body, depth + 1
        )
    if isinstance(stmt, ast.Repeat):
        return f"{pad}repeat ({write_expr(stmt.count)})\n" + write_stmt(
            stmt.body, depth + 1
        )
    if isinstance(stmt, ast.Forever):
        return f"{pad}forever\n" + write_stmt(stmt.body, depth + 1)
    if isinstance(stmt, ast.DelayStmt):
        body = write_stmt(stmt.body, depth + 1)
        return f"{pad}#{write_expr(stmt.delay)}\n{body}"
    if isinstance(stmt, ast.EventControl):
        if stmt.senses:
            senses = " or ".join(
                (f"{s.edge} " if s.edge else "") + write_expr(s.expr)
                for s in stmt.senses
            )
            control = f"@({senses})"
        else:
            control = "@(*)"
        return f"{pad}{control}\n" + write_stmt(stmt.body, depth + 1)
    if isinstance(stmt, ast.Wait):
        return f"{pad}wait ({write_expr(stmt.cond)})\n" + write_stmt(
            stmt.body, depth + 1
        )
    if isinstance(stmt, ast.SysTaskCall):
        args = ", ".join(write_expr(a) for a in stmt.args)
        return f"{pad}{stmt.name}({args});" if stmt.args else f"{pad}{stmt.name};"
    if isinstance(stmt, ast.Disable):
        return f"{pad}disable {stmt.target};"
    raise ValueError(f"cannot write {type(stmt).__name__}")


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
def write_expr(expr: ast.Expr | None) -> str:
    if expr is None:
        return ""
    if isinstance(expr, ast.Number):
        return _write_number(expr)
    if isinstance(expr, ast.StringLit):
        return f'"{expr.text}"'
    if isinstance(expr, ast.Identifier):
        return expr.name
    if isinstance(expr, ast.Unary):
        return f"{expr.op}({write_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        return f"({write_expr(expr.lhs)} {expr.op} {write_expr(expr.rhs)})"
    if isinstance(expr, ast.Ternary):
        return (
            f"({write_expr(expr.cond)} ? {write_expr(expr.if_true)} : "
            f"{write_expr(expr.if_false)})"
        )
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(write_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Replicate):
        return "{" + write_expr(expr.count) + "{" + write_expr(expr.value) + "}}"
    if isinstance(expr, ast.BitSelect):
        return f"{write_expr(expr.base)}[{write_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return (
            f"{write_expr(expr.base)}"
            f"[{write_expr(expr.msb)}:{write_expr(expr.lsb)}]"
        )
    if isinstance(expr, ast.IndexedPartSelect):
        op = "+:" if expr.ascending else "-:"
        return (
            f"{write_expr(expr.base)}"
            f"[{write_expr(expr.start)} {op} {write_expr(expr.width)}]"
        )
    if isinstance(expr, (ast.SystemCall, ast.FunctionCall)):
        if not expr.args and isinstance(expr, ast.SystemCall):
            return expr.name
        args = ", ".join(write_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    raise ValueError(f"cannot write {type(expr).__name__}")


def _write_number(number: ast.Number) -> str:
    bits = number.value_bits
    signed = "s" if number.signed and number.sized else ""
    if number.sized:
        return f"{number.width}'{signed}b{bits}"
    if number.signed and "x" not in bits and "z" not in bits:
        value = int(bits, 2)
        if number.width == 32 and value < (1 << 31):
            return str(value)
    return f"{number.width}'b{bits}"
