"""Expression evaluation over four-state values.

The evaluator is shared by constant contexts (parameter values, ranges),
continuous assignments and procedural code.  A *scope* resolves names to
signals, parameters or functions (see :mod:`repro.verilog.elaborate`); a
*context* provides simulation-time services (``$time``, ``$random``) and
is ``None`` during constant evaluation.

Width semantics follow the IEEE 1364 two-step rule: every expression has a
*self-determined* size (:func:`size_of`) and operands of arithmetic,
bitwise and comparison operators are evaluated in a *context width* that
is the maximum of the operand sizes (and, for assignments, the lvalue
width).  This is what makes ``{cout, sum} == a + b`` keep the carry bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from . import ast, values
from .errors import ElaborationError
from .values import Vec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .elaborate import Scope, Signal

# Operators whose operands take the surrounding context width.
_CONTEXT_OPS = frozenset(["+", "-", "*", "/", "%", "&", "|", "^", "~^", "^~"])
# Comparisons: operands sized to max of the two sides, result is 1 bit.
_COMPARE_OPS = frozenset(["==", "!=", "===", "!==", "<", "<=", ">", ">="])
# Shift/power: left operand takes context, right is self-determined.
_SHIFT_OPS = frozenset(["<<", ">>", "<<<", ">>>", "**"])
_LOGICAL_OPS = frozenset(["&&", "||"])

_BINARY_FUNCS = {
    "+": values.add,
    "-": values.sub,
    "*": values.mul,
    "/": values.div,
    "%": values.mod,
    "**": values.power,
    "&": values.bit_and,
    "|": values.bit_or,
    "^": values.bit_xor,
    "~^": values.bit_xnor,
    "^~": values.bit_xnor,
    "<<": values.shift_left,
    ">>": values.shift_right,
    "<<<": values.arith_shift_left,
    ">>>": values.arith_shift_right,
    "==": values.eq,
    "!=": values.neq,
    "===": values.case_eq,
    "!==": values.case_neq,
    "<": values.lt,
    "<=": values.le,
    ">": values.gt,
    ">=": values.ge,
    "&&": values.logical_and,
    "||": values.logical_or,
}

_UNARY_FUNCS = {
    "+": values.unary_plus,
    "-": values.negate,
    "!": values.logical_not,
    "~": values.bit_not,
    "&": values.reduce_and,
    "~&": values.reduce_nand,
    "|": values.reduce_or,
    "~|": values.reduce_nor,
    "^": values.reduce_xor,
    "~^": values.reduce_xnor,
    "^~": values.reduce_xnor,
}

_CONTEXT_UNARY = frozenset(["+", "-", "~"])


def _string_to_vec(text: str) -> Vec:
    """LRM string-literal value: 8 bits per character, MSB first."""
    if not text:
        return Vec.from_int(0, 8)
    value = 0
    for ch in text:
        value = (value << 8) | (ord(ch) & 0xFF)
    return Vec.from_int(value, 8 * len(text))


# ----------------------------------------------------------------------
# Self-determined sizes (LRM table 5-22)
# ----------------------------------------------------------------------
def size_of(expr: ast.Expr, scope: "Scope") -> int:
    """Self-determined bit size of an expression."""
    if isinstance(expr, ast.Number):
        return expr.width
    if isinstance(expr, ast.StringLit):
        return max(8, 8 * len(expr.text))
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        if resolved is None:
            raise ElaborationError(
                f"undeclared identifier {expr.name!r}", expr.line
            )
        kind, payload = resolved
        if kind == "param":
            return payload.width
        if kind == "signal":
            return payload.width
        raise ElaborationError(f"{expr.name!r} is not a value", expr.line)
    if isinstance(expr, ast.BitSelect):
        signal = _signal_of(expr.base, scope)
        if signal is not None and signal.memory is not None:
            return signal.width
        return 1
    if isinstance(expr, ast.PartSelect):
        msb = eval_const(expr.msb, scope)
        lsb = eval_const(expr.lsb, scope)
        return abs(msb - lsb) + 1
    if isinstance(expr, ast.IndexedPartSelect):
        return eval_const(expr.width, scope)
    if isinstance(expr, ast.Unary):
        if expr.op in _CONTEXT_UNARY:
            return size_of(expr.operand, scope)
        return 1
    if isinstance(expr, ast.Binary):
        if expr.op in _CONTEXT_OPS:
            return max(size_of(expr.lhs, scope), size_of(expr.rhs, scope))
        if expr.op in _SHIFT_OPS:
            return size_of(expr.lhs, scope)
        return 1  # comparisons and logical ops
    if isinstance(expr, ast.Ternary):
        return max(size_of(expr.if_true, scope), size_of(expr.if_false, scope))
    if isinstance(expr, ast.Concat):
        return sum(size_of(part, scope) for part in expr.parts)
    if isinstance(expr, ast.Replicate):
        return eval_const(expr.count, scope) * size_of(expr.value, scope)
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$signed", "$unsigned"):
            return size_of(expr.args[0], scope)
        if expr.name in ("$time", "$stime", "$realtime"):
            return 64
        return 32
    if isinstance(expr, ast.FunctionCall):
        resolved = scope.resolve(expr.name)
        if resolved is None or resolved[0] != "func":
            raise ElaborationError(f"unknown function {expr.name!r}", expr.line)
        func = resolved[1]
        if func.range is None:
            return 1
        msb = eval_const(func.range.msb, scope)
        lsb = eval_const(func.range.lsb, scope)
        return abs(msb - lsb) + 1
    raise ElaborationError(f"cannot size {type(expr).__name__}", expr.line)


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def eval_expr(
    expr: ast.Expr, scope: "Scope", ctx=None, width: int | None = None
) -> Vec:
    """Evaluate an expression to a :class:`Vec`.

    ``width`` is the context width imposed by the surrounding operator or
    assignment; ``None`` means self-determined.  Raises
    :class:`ElaborationError` for unresolvable names — the error class the
    compile gate reports for undeclared identifiers.
    """
    # Profiler hook: the simulator carries a per-run eval counter only
    # when a profiler is attached; constant evaluation passes ctx=None
    # and the unprofiled simulator carries None, so the disabled path
    # is a single short-circuited check.
    if ctx is not None and ctx._profile_evals is not None:
        ctx._profile_evals[0] += 1
    if isinstance(expr, ast.Number):
        return Vec.from_bits(expr.value_bits, expr.signed)
    if isinstance(expr, ast.StringLit):
        return _string_to_vec(expr.text)
    if isinstance(expr, ast.Identifier):
        return _eval_identifier(expr, scope)
    if isinstance(expr, ast.Unary):
        if expr.op in _CONTEXT_UNARY:
            inner = max(width or 0, size_of(expr.operand, scope))
            operand = eval_expr(expr.operand, scope, ctx, inner).resize(inner)
            return _UNARY_FUNCS[expr.op](operand)
        return _UNARY_FUNCS[expr.op](eval_expr(expr.operand, scope, ctx))
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, scope, ctx, width)
    if isinstance(expr, ast.Ternary):
        return _eval_ternary(expr, scope, ctx, width)
    if isinstance(expr, ast.Concat):
        return values.concat([eval_expr(p, scope, ctx) for p in expr.parts])
    if isinstance(expr, ast.Replicate):
        count = eval_expr(expr.count, scope, ctx).to_unsigned()
        if count is None or count < 1:
            raise ElaborationError("bad replication count", expr.line)
        return values.replicate(count, eval_expr(expr.value, scope, ctx))
    if isinstance(expr, ast.BitSelect):
        return _eval_bit_select(expr, scope, ctx)
    if isinstance(expr, ast.PartSelect):
        return _eval_part_select(expr, scope, ctx)
    if isinstance(expr, ast.IndexedPartSelect):
        return _eval_indexed_part_select(expr, scope, ctx)
    if isinstance(expr, ast.SystemCall):
        return _eval_system_call(expr, scope, ctx)
    if isinstance(expr, ast.FunctionCall):
        return _eval_function_call(expr, scope, ctx)
    raise ElaborationError(f"cannot evaluate {type(expr).__name__}", expr.line)


def eval_sized(expr: ast.Expr, scope: "Scope", ctx, target_width: int) -> Vec:
    """Evaluate an assignment RHS in the context of an lvalue width."""
    context = max(target_width, size_of(expr, scope))
    return eval_expr(expr, scope, ctx, context)


def eval_const(expr: ast.Expr, scope: "Scope") -> int:
    """Evaluate a constant expression to a known integer (ranges, params)."""
    result = eval_expr(expr, scope).to_int()
    if result is None:
        raise ElaborationError("constant expression has x/z bits", expr.line)
    return result


def _eval_binary(
    expr: ast.Binary, scope: "Scope", ctx, width: int | None
) -> Vec:
    op = expr.op
    func = _BINARY_FUNCS[op]
    if op in _CONTEXT_OPS:
        context = max(
            width or 0, size_of(expr.lhs, scope), size_of(expr.rhs, scope)
        )
        lhs = eval_expr(expr.lhs, scope, ctx, context).resize(context)
        rhs = eval_expr(expr.rhs, scope, ctx, context).resize(context)
        return func(lhs, rhs)
    if op in _COMPARE_OPS:
        context = max(size_of(expr.lhs, scope), size_of(expr.rhs, scope))
        lhs = eval_expr(expr.lhs, scope, ctx, context).resize(context)
        rhs = eval_expr(expr.rhs, scope, ctx, context).resize(context)
        return func(lhs, rhs)
    if op in _SHIFT_OPS:
        context = max(width or 0, size_of(expr.lhs, scope))
        lhs = eval_expr(expr.lhs, scope, ctx, context).resize(context)
        rhs = eval_expr(expr.rhs, scope, ctx)
        return func(lhs, rhs)
    # logical && / ||: operands self-determined
    return func(
        eval_expr(expr.lhs, scope, ctx), eval_expr(expr.rhs, scope, ctx)
    )


def _eval_identifier(expr: ast.Identifier, scope: "Scope") -> Vec:
    resolved = scope.resolve(expr.name)
    if resolved is None:
        raise ElaborationError(f"undeclared identifier {expr.name!r}", expr.line)
    kind, payload = resolved
    if kind == "param":
        return payload
    if kind == "signal":
        signal = payload
        if signal.memory is not None:
            raise ElaborationError(
                f"memory {expr.name!r} used without an index", expr.line
            )
        return signal.value
    raise ElaborationError(f"{expr.name!r} is not a value", expr.line)


def _eval_ternary(expr: ast.Ternary, scope: "Scope", ctx, width: int | None) -> Vec:
    cond = eval_expr(expr.cond, scope, ctx)
    context = max(
        width or 0,
        size_of(expr.if_true, scope),
        size_of(expr.if_false, scope),
    )
    # the result is always `context` wide, even when the chosen arm is
    # narrower (a ternary's width is static: max of both arms, LRM 5.4.1)
    if cond.truthy():
        return eval_expr(expr.if_true, scope, ctx, context).resize(context)
    if cond.is_definitely_zero():
        return eval_expr(expr.if_false, scope, ctx, context).resize(context)
    # ambiguous condition: bitwise-merge both arms (LRM 5.1.13)
    true_v = eval_expr(expr.if_true, scope, ctx, context).resize(context)
    false_v = eval_expr(expr.if_false, scope, ctx, context).resize(context)
    mask = (1 << context) - 1
    same = ~(true_v.aval ^ false_v.aval) & ~true_v.bval & ~false_v.bval & mask
    aval = (true_v.aval & same) | (~same & mask)
    return Vec(context, aval, ~same & mask)


def _signal_of(base: ast.Expr, scope: "Scope") -> "Signal | None":
    if isinstance(base, ast.Identifier):
        resolved = scope.resolve(base.name)
        if resolved and resolved[0] == "signal":
            return resolved[1]
    return None


def _eval_bit_select(expr: ast.BitSelect, scope: "Scope", ctx) -> Vec:
    signal = _signal_of(expr.base, scope)
    index = eval_expr(expr.index, scope, ctx).to_int()
    if signal is not None and signal.memory is not None:
        return signal.read_word(index)
    if signal is not None:
        return values.select_bit(signal.value, signal.bit_offset(index))
    base = eval_expr(expr.base, scope, ctx)
    return values.select_bit(base, index)


def _eval_part_select(expr: ast.PartSelect, scope: "Scope", ctx) -> Vec:
    signal = _signal_of(expr.base, scope)
    msb = eval_expr(expr.msb, scope, ctx).to_int()
    lsb = eval_expr(expr.lsb, scope, ctx).to_int()
    if msb is None or lsb is None:
        raise ElaborationError("part-select bounds must be known", expr.line)
    if signal is not None:
        if signal.memory is not None:
            raise ElaborationError("part-select on memory", expr.line)
        hi = signal.bit_offset(msb)
        lo = signal.bit_offset(lsb)
        if hi is None or lo is None:
            return Vec.unknown(abs(msb - lsb) + 1)
        return values.select_part(signal.value, hi, lo)
    base = eval_expr(expr.base, scope, ctx)
    return values.select_part(base, msb, lsb)


def _eval_indexed_part_select(
    expr: ast.IndexedPartSelect, scope: "Scope", ctx
) -> Vec:
    signal = _signal_of(expr.base, scope)
    start = eval_expr(expr.start, scope, ctx).to_int()
    width = eval_expr(expr.width, scope, ctx).to_int()
    if width is None or width < 1:
        raise ElaborationError("indexed part-select width must be known", expr.line)
    if start is None:
        return Vec.unknown(width)
    if signal is not None and signal.memory is None:
        lo_index = start if expr.ascending else start - width + 1
        lo = signal.bit_offset(lo_index)
        if lo is None:
            return Vec.unknown(width)
        return values.select_part(signal.value, lo + width - 1, lo)
    base = eval_expr(expr.base, scope, ctx)
    lo = start if expr.ascending else start - width + 1
    return values.select_part(base, lo + width - 1, lo)


def _eval_system_call(expr: ast.SystemCall, scope: "Scope", ctx) -> Vec:
    name = expr.name
    if name == "$signed":
        return eval_expr(expr.args[0], scope, ctx).as_signed()
    if name == "$unsigned":
        return eval_expr(expr.args[0], scope, ctx).as_unsigned()
    if name == "$clog2":
        operand = eval_expr(expr.args[0], scope, ctx).to_unsigned()
        if operand is None:
            return Vec.unknown(32)
        bits = 0
        while (1 << bits) < operand:
            bits += 1
        return Vec.from_int(bits, 32, True)
    if name in ("$time", "$stime", "$realtime"):
        if ctx is None:
            raise ElaborationError("$time in constant context", expr.line)
        return Vec.from_int(ctx.now, 64)
    if name == "$random":
        if ctx is None:
            raise ElaborationError("$random in constant context", expr.line)
        return Vec.from_int(ctx.next_random(), 32, True)
    raise ElaborationError(f"unsupported system function {name!r}", expr.line)


def _eval_function_call(expr: ast.FunctionCall, scope: "Scope", ctx) -> Vec:
    resolved = scope.resolve(expr.name)
    if resolved is None or resolved[0] != "func":
        raise ElaborationError(f"unknown function {expr.name!r}", expr.line)
    func = resolved[1]
    if len(expr.args) != len(func.inputs):
        raise ElaborationError(
            f"function {expr.name!r} expects {len(func.inputs)} args, "
            f"got {len(expr.args)}",
            expr.line,
        )
    args = [eval_expr(arg, scope, ctx) for arg in expr.args]
    # Local import: elaborate depends on eval for constants.
    from .elaborate import make_function_scope

    local = make_function_scope(func, scope, args)
    _exec_function_body(func.body, local, ctx)
    result = local.resolve(func.name)
    assert result is not None and result[0] == "signal"
    return result[1].value


def _exec_function_body(stmt: ast.Stmt, scope: "Scope", ctx) -> None:
    """Synchronous statement executor for function bodies (no timing)."""
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            _exec_function_body(child, scope, ctx)
    elif isinstance(stmt, ast.Assign):
        if stmt.nonblocking:
            raise ElaborationError("nonblocking assign in function", stmt.line)
        from .elaborate import lvalue_width, store_to_lvalue

        value = eval_sized(stmt.value, scope, ctx, lvalue_width(stmt.target, scope))
        store_to_lvalue(stmt.target, value, scope, ctx)
    elif isinstance(stmt, ast.If):
        if eval_expr(stmt.cond, scope, ctx).truthy():
            _exec_function_body(stmt.then_stmt, scope, ctx)
        elif stmt.else_stmt is not None:
            _exec_function_body(stmt.else_stmt, scope, ctx)
    elif isinstance(stmt, ast.Case):
        _exec_function_case(stmt, scope, ctx)
    elif isinstance(stmt, ast.For):
        _exec_function_body(stmt.init, scope, ctx)
        guard = 0
        while eval_expr(stmt.cond, scope, ctx).truthy():
            _exec_function_body(stmt.body, scope, ctx)
            _exec_function_body(stmt.step, scope, ctx)
            guard += 1
            if guard > 1_000_000:
                raise ElaborationError("runaway for-loop in function", stmt.line)
    elif isinstance(stmt, ast.While):
        guard = 0
        while eval_expr(stmt.cond, scope, ctx).truthy():
            _exec_function_body(stmt.body, scope, ctx)
            guard += 1
            if guard > 1_000_000:
                raise ElaborationError("runaway while-loop in function", stmt.line)
    elif isinstance(stmt, ast.NullStmt):
        pass
    else:
        raise ElaborationError(
            f"{type(stmt).__name__} not allowed in function body", stmt.line
        )


def case_matches(kind: str, subject: Vec, label: Vec) -> bool:
    """Case-item matching for case/casez/casex."""
    width = max(subject.width, label.width)
    a, b = subject.resize(width), label.resize(width)
    mask = (1 << width) - 1
    if kind == "case":
        return a.aval == b.aval and a.bval == b.bval
    if kind == "casez":
        ignore = (a.bval & ~a.aval) | (b.bval & ~b.aval)  # z bits either side
    else:  # casex
        ignore = a.bval | b.bval
    care = mask & ~ignore
    return (a.aval & care) == (b.aval & care) and (a.bval & care) == (b.bval & care)


def _exec_function_case(stmt: ast.Case, scope: "Scope", ctx) -> None:
    subject = eval_expr(stmt.subject, scope, ctx)
    default = None
    for item in stmt.items:
        if not item.exprs:
            default = item
            continue
        for label_expr in item.exprs:
            label = eval_expr(label_expr, scope, ctx)
            if case_matches(stmt.kind, subject, label):
                _exec_function_body(item.body, scope, ctx)
                return
    if default is not None:
        _exec_function_body(default.body, scope, ctx)


def collect_reads(node, into: set[str] | None = None) -> set[str]:
    """Names read by an expression or statement (for @* and assigns).

    For statements, assignment *targets* are excluded but their index
    expressions are included, matching LRM implicit-sensitivity rules.
    """
    reads: set[str] = set() if into is None else into

    def walk_expr(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Identifier):
            reads.add(expr.name)
        elif isinstance(expr, ast.Unary):
            walk_expr(expr.operand)
        elif isinstance(expr, ast.Binary):
            walk_expr(expr.lhs)
            walk_expr(expr.rhs)
        elif isinstance(expr, ast.Ternary):
            walk_expr(expr.cond)
            walk_expr(expr.if_true)
            walk_expr(expr.if_false)
        elif isinstance(expr, ast.Concat):
            for part in expr.parts:
                walk_expr(part)
        elif isinstance(expr, ast.Replicate):
            walk_expr(expr.count)
            walk_expr(expr.value)
        elif isinstance(expr, ast.BitSelect):
            walk_expr(expr.base)
            walk_expr(expr.index)
        elif isinstance(expr, ast.PartSelect):
            walk_expr(expr.base)
            walk_expr(expr.msb)
            walk_expr(expr.lsb)
        elif isinstance(expr, ast.IndexedPartSelect):
            walk_expr(expr.base)
            walk_expr(expr.start)
            walk_expr(expr.width)
        elif isinstance(expr, (ast.SystemCall, ast.FunctionCall)):
            for arg in expr.args:
                walk_expr(arg)

    def walk_target_indices(expr: ast.Expr | None) -> None:
        if isinstance(expr, ast.BitSelect):
            walk_target_indices(expr.base)
            walk_expr(expr.index)
        elif isinstance(expr, ast.PartSelect):
            walk_target_indices(expr.base)
            walk_expr(expr.msb)
            walk_expr(expr.lsb)
        elif isinstance(expr, ast.IndexedPartSelect):
            walk_target_indices(expr.base)
            walk_expr(expr.start)
            walk_expr(expr.width)
        elif isinstance(expr, ast.Concat):
            for part in expr.parts:
                walk_target_indices(part)

    def walk_stmt(stmt: ast.Stmt | None) -> None:
        if stmt is None:
            return
        if isinstance(stmt, ast.Block):
            for child in stmt.stmts:
                walk_stmt(child)
        elif isinstance(stmt, ast.Assign):
            walk_expr(stmt.value)
            walk_target_indices(stmt.target)
        elif isinstance(stmt, ast.If):
            walk_expr(stmt.cond)
            walk_stmt(stmt.then_stmt)
            walk_stmt(stmt.else_stmt)
        elif isinstance(stmt, ast.Case):
            walk_expr(stmt.subject)
            for item in stmt.items:
                for expr in item.exprs:
                    walk_expr(expr)
                walk_stmt(item.body)
        elif isinstance(stmt, ast.For):
            walk_stmt(stmt.init)
            walk_expr(stmt.cond)
            walk_stmt(stmt.step)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.While):
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.Repeat):
            walk_expr(stmt.count)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.EventControl):
            for sense in stmt.senses:
                walk_expr(sense.expr)
            walk_stmt(stmt.body)
        elif isinstance(stmt, (ast.Forever, ast.DelayStmt)):
            if isinstance(stmt, ast.DelayStmt):
                walk_expr(stmt.delay)
            walk_stmt(stmt.body)
        elif isinstance(stmt, ast.Wait):
            walk_expr(stmt.cond)
            walk_stmt(stmt.body)
        elif isinstance(stmt, (ast.SysTaskCall, ast.TaskCall)):
            for arg in stmt.args:
                walk_expr(arg)

    if isinstance(node, ast.Stmt):
        walk_stmt(node)
    else:
        walk_expr(node)
    return reads
