"""Event-driven simulation of an elaborated design.

Implements the IEEE 1364 stratified event queue in the form the problem
set needs: an active region executing processes and continuous
assignments, a nonblocking-assign (NBA) update region applied when the
active region drains, and a time wheel for ``#delay`` controls.  Processes
are Python generators that yield suspension requests; sensitivity is
re-evaluated on every commit so arbitrary ``@(posedge expr)`` forms work.

System tasks supported: ``$display``/``$write``/``$strobe``, ``$monitor``,
``$finish``/``$stop``, ``$time``, ``$random`` (deterministic LCG).
Output lines are collected on :attr:`Simulator.output` — the functional
gate of the evaluation pipeline greps them for the test bench verdict.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from time import perf_counter

from . import ast
from .elaborate import (
    Design,
    ProcessSpec,
    Scope,
    Signal,
    lvalue_width,
    store_to_lvalue,
)
from .errors import SimulationError
from .eval import case_matches, collect_reads, eval_expr, eval_sized
from .values import Vec, edge_kind
from .vcd import VcdRecorder


class _FinishSim(Exception):
    """Internal control-flow signal raised by $finish/$stop."""


@dataclass
class _SenseEntry:
    """One sensitivity-list item of a suspended process.

    ``memory_signal`` marks an any-change watch on a whole memory (bare
    memory identifiers cannot be evaluated, so word writes wake these
    entries unconditionally).

    The compiled engine (:mod:`repro.verilog.codegen`) reuses entry
    objects across waits and precomputes two optional fields: ``signals``
    is the resolved list of signals to register the waiter on (skipping
    the per-suspension ``collect_reads`` + scope walk) and ``compiled``
    is a fast re-evaluation closure ``fn(sim) -> Vec`` for
    :meth:`Simulator._sense_fires`.  Interpreted entries leave both
    ``None`` and take the original paths.
    """

    expr: ast.Expr | None
    scope: Scope
    edge: str | None
    last: Vec
    memory_signal: Signal | None = None
    signals: "list[Signal] | None" = None
    compiled: object = None


class _Suspension:
    """A process blocked on an event control."""

    __slots__ = ("process", "entries", "done")

    def __init__(self, process: "_Process", entries: list[_SenseEntry]):
        self.process = process
        self.entries = entries
        self.done = False


class _Process:
    """Generator-backed runnable entity.

    ``key`` is the construct identity ``(scope path, kind, line)`` the
    opt-in profiler attributes activation time to; it is set once at
    construction and otherwise unused.
    """

    __slots__ = ("name", "generator", "scheduled", "alive", "key")

    def __init__(self, name: str, generator,
                 key: "tuple[str, str, int]" = ("", "", 0)):
        self.name = name
        self.generator = generator
        self.scheduled = False
        self.alive = True
        self.key = key


@dataclass
class _Monitor:
    fmt_args: list[ast.Expr]
    scope: Scope
    last_text: str | None = None


@dataclass
class SimResult:
    """Outcome of a simulation run."""

    finished: bool  # reached $finish (vs. ran out of events/time)
    time: int
    output: list[str] = field(default_factory=list)
    vcd: VcdRecorder | None = None  # populated when the design $dumpvars
    vcd_file: str | None = None  # the name passed to $dumpfile, if any

    @property
    def text(self) -> str:
        return "\n".join(self.output)


class Simulator:
    """Runs an elaborated :class:`~repro.verilog.elaborate.Design`."""

    def __init__(
        self,
        design: Design,
        max_time: int = 1_000_000,
        max_steps: int = 2_000_000,
        random_seed: int = 0xDEADBEEF,
        profiler=None,
        engine=None,
    ):
        self.design = design
        # Execution-engine seam: any object with a ``factory_for(spec)``
        # method returning either ``None`` (interpret this process) or a
        # callable ``factory(sim) -> generator`` producing a generator
        # that speaks the same suspension protocol as the interpreted
        # ones.  Compiled and interpreted processes coexist in one event
        # loop; see :mod:`repro.verilog.codegen`.
        self._engine = engine
        self.max_time = max_time
        self.max_steps = max_steps
        self.now = 0
        self.output: list[str] = []
        self._active: list[_Process] = []
        self._nba: list = []
        self._timewheel: list = []
        self._sequence = 0
        self._steps = 0
        self._work = 0
        self._monitors: list[_Monitor] = []
        self._finished = False
        self._rand_state = random_seed & 0xFFFFFFFF
        self._vcd: VcdRecorder | None = None
        self._vcd_file: str | None = None
        # Opt-in profiling: any object with an
        # ``add(key, seconds, evals, steps)`` method (duck-typed so the
        # verilog layer stays free of obs imports).  When absent the
        # dispatch loop runs the class methods unchanged; when present,
        # instance attributes shadow the two timed entry points.
        self._profiler = profiler
        self._profile_evals = None
        self._profile_current: "tuple[str, str, int] | None" = None
        if profiler is not None:
            self._profile_evals = [0]
            self._resume = self._profiled_resume
            self._check_monitors = self._profiled_check_monitors

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self) -> SimResult:
        """Simulate until $finish, quiescence, or a resource limit."""
        for spec in sorted(
            self.design.processes, key=lambda s: s.kind != "assign"
        ):
            process = self._make_process(spec)
            self._schedule(process)
        try:
            self._event_loop()
        except _FinishSim:
            self._finished = True
        return SimResult(
            self._finished, self.now, self.output,
            vcd=self._vcd, vcd_file=self._vcd_file,
        )

    def next_random(self) -> int:
        """Deterministic $random (numerical-recipes LCG)."""
        self._rand_state = (1664525 * self._rand_state + 1013904223) & 0xFFFFFFFF
        value = self._rand_state
        return value - (1 << 32) if value >> 31 else value

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def _event_loop(self) -> None:
        while True:
            while self._active or self._nba:
                while self._active:
                    process = self._active.pop(0)
                    process.scheduled = False
                    self._resume(process)
                if self._nba:
                    updates, self._nba = self._nba, []
                    for apply_update in updates:
                        apply_update()
            self._check_monitors()
            if not self._timewheel:
                return
            next_time = self._timewheel[0][0]
            if next_time > self.max_time:
                return
            self.now = next_time
            while self._timewheel and self._timewheel[0][0] == self.now:
                _, _, item = heapq.heappop(self._timewheel)
                if isinstance(item, _Process):
                    self._schedule(item)
                else:
                    item()  # deferred NBA thunk

    def _schedule(self, process: _Process) -> None:
        if process.alive and not process.scheduled:
            process.scheduled = True
            self._active.append(process)

    def _schedule_at(self, ticks: int, item) -> None:
        self._sequence += 1
        heapq.heappush(self._timewheel, (self.now + ticks, self._sequence, item))

    def _resume(self, process: _Process) -> None:
        self._work = 0
        while True:
            self._steps += 1
            if self._steps > self.max_steps:
                raise SimulationError(
                    f"simulation exceeded {self.max_steps} steps "
                    f"(zero-delay loop?) at time {self.now}"
                )
            try:
                request = next(process.generator)
            except StopIteration:
                process.alive = False
                return
            kind = request[0]
            if kind == "delay":
                self._schedule_at(request[1], process)
                return
            if kind == "wait":
                entries = request[1]
                if not entries:
                    process.alive = False  # @() on nothing: block forever
                    return
                suspension = _Suspension(process, entries)
                for entry in entries:
                    if entry.signals is not None:
                        # Compiled entry: waiter registration precomputed.
                        for signal in entry.signals:
                            signal.waiters.append((suspension, entry))
                        continue
                    if entry.memory_signal is not None:
                        entry.memory_signal.waiters.append((suspension, entry))
                        continue
                    for name in collect_reads(entry.expr):
                        resolved = entry.scope.resolve(name)
                        if resolved and resolved[0] == "signal":
                            resolved[1].waiters.append((suspension, entry))
                return
            raise SimulationError(f"unknown suspension {kind!r}")

    # ------------------------------------------------------------------
    # Profiled dispatch (installed as instance attributes in __init__,
    # so the unprofiled path runs the class methods with zero checks)
    # ------------------------------------------------------------------
    def _profiled_resume(self, process: _Process) -> None:
        counter = self._profile_evals
        evals_before = counter[0]
        steps_before = self._steps
        self._profile_current = process.key
        started = perf_counter()
        try:
            Simulator._resume(self, process)
        finally:
            self._profiler.add(
                process.key,
                perf_counter() - started,
                counter[0] - evals_before,
                self._steps - steps_before,
            )
            self._profile_current = None

    def _profile_nba(self, apply_update):
        """Wrap an NBA update thunk to bill its apply time (which runs
        outside any process resume) to the construct that created it."""
        key = self._profile_current or ("", "nba", 0)
        counter = self._profile_evals
        profiler = self._profiler

        def timed_apply() -> None:
            evals_before = counter[0]
            started = perf_counter()
            try:
                apply_update()
            finally:
                profiler.add(
                    key, perf_counter() - started,
                    counter[0] - evals_before, 0,
                )

        return timed_apply

    def _profiled_check_monitors(self) -> None:
        if not self._monitors:
            return
        counter = self._profile_evals
        evals_before = counter[0]
        started = perf_counter()
        try:
            Simulator._check_monitors(self)
        finally:
            self._profiler.add(
                ("", "monitor", 0),
                perf_counter() - started,
                counter[0] - evals_before, 0,
            )

    # ------------------------------------------------------------------
    # Value commits and sensitivity
    # ------------------------------------------------------------------
    def commit(self, signal: Signal, new_value: Vec, memory_write: bool = False) -> None:
        """Update a signal and wake processes whose senses now fire."""
        if not memory_write:
            old = signal.value
            if old.aval == new_value.aval and old.bval == new_value.bval:
                return
            signal.value = new_value
            if self._vcd is not None:
                code = self._vcd.code_for(id(signal))
                if code is not None:
                    self._vcd.record(self.now, new_value, code)
        if not signal.waiters:
            return
        pending = signal.waiters
        signal.waiters = []
        survivors = []
        for suspension, entry in pending:
            if suspension.done:
                continue
            if self._sense_fires(entry, force=memory_write):
                suspension.done = True
                self._schedule(suspension.process)
            else:
                survivors.append((suspension, entry))
        signal.waiters.extend(survivors)

    def _sense_fires(self, entry: _SenseEntry, force: bool = False) -> bool:
        if entry.memory_signal is not None:
            return entry.edge is None  # any write to the memory fires
        if entry.compiled is not None:
            new = entry.compiled(self)
        else:
            new = eval_expr(entry.expr, entry.scope, self)
        old = entry.last
        entry.last = new
        if force:
            return entry.edge is None
        changed = old.aval != new.aval or old.bval != new.bval
        if entry.edge is None:
            return changed
        return edge_kind(old, new) == entry.edge

    # ------------------------------------------------------------------
    # Process construction
    # ------------------------------------------------------------------
    def _make_process(self, spec: ProcessSpec) -> _Process:
        key = (spec.scope.path, spec.kind, spec.line)
        if self._engine is not None:
            factory = self._engine.factory_for(spec)
            if factory is not None:
                return _Process(
                    f"{spec.kind}@{spec.line}", factory(self), key=key
                )
        if spec.kind == "assign":
            return _Process(
                f"assign@{spec.line}", self._run_continuous_assign(spec),
                key=key,
            )
        if spec.kind == "always":
            return _Process(
                f"always@{spec.line}", self._run_always(spec), key=key
            )
        return _Process(
            f"initial@{spec.line}", self._run_initial(spec), key=key
        )

    def _run_continuous_assign(self, spec: ProcessSpec):
        assert spec.value is not None and spec.target is not None
        target_scope = spec.target_scope or spec.scope
        dep_names = collect_reads(spec.value)
        dep_entries = []
        for name in sorted(dep_names):
            resolved = spec.scope.resolve(name)
            if not resolved or resolved[0] != "signal":
                continue
            signal = resolved[1]
            if signal.memory is not None:
                dep_entries.append(
                    _SenseEntry(
                        expr=None, scope=spec.scope, edge=None,
                        last=Vec.unknown(1), memory_signal=signal,
                    )
                )
            else:
                dep_entries.append(
                    _SenseEntry(
                        expr=ast.Identifier(name=name),
                        scope=spec.scope,
                        edge=None,
                        last=Vec.unknown(1),
                    )
                )
        target_width = lvalue_width(spec.target, target_scope)
        while True:
            value = eval_sized(spec.value, spec.scope, self, target_width)
            store_to_lvalue(
                spec.target, value, target_scope, self, commit=self.commit
            )
            if not dep_entries:
                return  # constant assign: run once
            for entry in dep_entries:
                if entry.memory_signal is None:
                    entry.last = eval_expr(entry.expr, entry.scope, self)
            yield ("wait", dep_entries)

    def _run_always(self, spec: ProcessSpec):
        assert spec.body is not None
        while True:
            yielded = yield from self._exec(spec.body, spec.scope)
            if not yielded:
                raise SimulationError(
                    "always block without timing control never suspends",
                    spec.line,
                )

    def _run_initial(self, spec: ProcessSpec):
        assert spec.body is not None
        yield from self._exec(spec.body, spec.scope)

    # ------------------------------------------------------------------
    # Statement execution (generator; returns True if it ever suspended)
    # ------------------------------------------------------------------
    def _exec(self, stmt: ast.Stmt, scope: Scope):
        self._bump_work(stmt)
        if isinstance(stmt, ast.Block):
            suspended = False
            for child in stmt.stmts:
                suspended = (yield from self._exec(child, scope)) or suspended
            return suspended
        if isinstance(stmt, ast.Assign):
            return (yield from self._exec_assign(stmt, scope))
        if isinstance(stmt, ast.If):
            cond = eval_expr(stmt.cond, scope, self)
            if cond.truthy():
                return (yield from self._exec(stmt.then_stmt, scope))
            if stmt.else_stmt is not None:
                return (yield from self._exec(stmt.else_stmt, scope))
            return False
        if isinstance(stmt, ast.Case):
            return (yield from self._exec_case(stmt, scope))
        if isinstance(stmt, ast.For):
            return (yield from self._exec_for(stmt, scope))
        if isinstance(stmt, ast.While):
            suspended = False
            while eval_expr(stmt.cond, scope, self).truthy():
                suspended = (yield from self._exec(stmt.body, scope)) or suspended
                self._bump_work(stmt)
            return suspended
        if isinstance(stmt, ast.Repeat):
            count = eval_expr(stmt.count, scope, self).to_unsigned() or 0
            suspended = False
            for _ in range(count):
                suspended = (yield from self._exec(stmt.body, scope)) or suspended
            return suspended
        if isinstance(stmt, ast.Forever):
            while True:
                suspended = yield from self._exec(stmt.body, scope)
                if not suspended:
                    raise SimulationError(
                        "forever loop without timing control", stmt.line
                    )
        if isinstance(stmt, ast.DelayStmt):
            ticks = self._eval_delay(stmt.delay, scope)
            yield ("delay", ticks)
            yield from self._exec(stmt.body, scope)
            return True
        if isinstance(stmt, ast.EventControl):
            yield ("wait", self._build_senses(stmt, scope))
            yield from self._exec(stmt.body, scope)
            return True
        if isinstance(stmt, ast.Wait):
            while not eval_expr(stmt.cond, scope, self).truthy():
                entries = [
                    _SenseEntry(
                        expr=stmt.cond,
                        scope=scope,
                        edge=None,
                        last=eval_expr(stmt.cond, scope, self),
                    )
                ]
                yield ("wait", entries)
            yield from self._exec(stmt.body, scope)
            return True
        if isinstance(stmt, ast.SysTaskCall):
            self._exec_system_task(stmt, scope)
            return False
        if isinstance(stmt, ast.NullStmt):
            return False
        if isinstance(stmt, ast.Disable):
            raise SimulationError("disable is not supported", stmt.line)
        if isinstance(stmt, ast.TaskCall):
            raise SimulationError(
                f"user task {stmt.name!r} is not supported", stmt.line
            )
        raise SimulationError(
            f"cannot execute {type(stmt).__name__}", stmt.line
        )

    def _exec_assign(self, stmt: ast.Assign, scope: Scope):
        value = eval_sized(stmt.value, scope, self, lvalue_width(stmt.target, scope))
        if stmt.nonblocking:
            delay = self._eval_delay(stmt.delay, scope) if stmt.delay else 0
            target, captured = stmt.target, value

            def apply_update() -> None:
                store_to_lvalue(target, captured, scope, self, commit=self.commit)

            if self._profiler is not None:
                apply_update = self._profile_nba(apply_update)
            if delay:
                self._schedule_at(delay, apply_update)
            else:
                self._nba.append(apply_update)
            return False
        if stmt.delay is not None:
            ticks = self._eval_delay(stmt.delay, scope)
            yield ("delay", ticks)
            store_to_lvalue(stmt.target, value, scope, self, commit=self.commit)
            return True
        store_to_lvalue(stmt.target, value, scope, self, commit=self.commit)
        return False

    def _exec_case(self, stmt: ast.Case, scope: Scope):
        subject = eval_expr(stmt.subject, scope, self)
        default = None
        for item in stmt.items:
            if not item.exprs:
                default = item
                continue
            for label_expr in item.exprs:
                label = eval_expr(label_expr, scope, self)
                if case_matches(stmt.kind, subject, label):
                    return (yield from self._exec(item.body, scope))
        if default is not None:
            return (yield from self._exec(default.body, scope))
        return False

    def _exec_for(self, stmt: ast.For, scope: Scope):
        suspended = False
        suspended = (yield from self._exec(stmt.init, scope)) or suspended
        while eval_expr(stmt.cond, scope, self).truthy():
            suspended = (yield from self._exec(stmt.body, scope)) or suspended
            suspended = (yield from self._exec(stmt.step, scope)) or suspended
            self._bump_work(stmt)
        return suspended

    def _build_senses(
        self, stmt: ast.EventControl, scope: Scope
    ) -> list[_SenseEntry]:
        entries: list[_SenseEntry] = []
        if stmt.senses:
            for sense in stmt.senses:
                entries.append(
                    _SenseEntry(
                        expr=sense.expr,
                        scope=scope,
                        edge=sense.edge,
                        last=eval_expr(sense.expr, scope, self),
                    )
                )
            return entries
        # @* — implicit sensitivity on everything the body reads
        for name in sorted(collect_reads(stmt.body)):
            resolved = scope.resolve(name)
            if not resolved or resolved[0] != "signal":
                continue
            signal = resolved[1]
            if signal.memory is not None:
                entries.append(
                    _SenseEntry(
                        expr=None, scope=scope, edge=None,
                        last=Vec.unknown(1), memory_signal=signal,
                    )
                )
                continue
            ident = ast.Identifier(name=name)
            entries.append(
                _SenseEntry(
                    expr=ident,
                    scope=scope,
                    edge=None,
                    last=eval_expr(ident, scope, self),
                )
            )
        return entries

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _bump_work(self, stmt: ast.Stmt) -> None:
        self._work += 1
        if self._work > 500_000:
            raise SimulationError(
                f"runaway zero-time loop at time {self.now}", stmt.line
            )

    def _eval_delay(self, expr: ast.Expr | None, scope: Scope) -> int:
        if expr is None:
            return 0
        ticks = eval_expr(expr, scope, self).to_unsigned()
        if ticks is None:
            return 0
        return ticks

    # ------------------------------------------------------------------
    # System tasks
    # ------------------------------------------------------------------
    def _exec_system_task(self, stmt: ast.SysTaskCall, scope: Scope) -> None:
        name = stmt.name
        if name in ("$display", "$write", "$strobe"):
            text = self._format_args(stmt.args, scope)
            self.output.append(text)
            return
        if name == "$monitor":
            self._monitors.append(_Monitor(fmt_args=list(stmt.args), scope=scope))
            return
        if name in ("$finish", "$stop"):
            raise _FinishSim()
        if name == "$dumpfile":
            if stmt.args and isinstance(stmt.args[0], ast.StringLit):
                self._vcd_file = stmt.args[0].text
            return
        if name == "$dumpvars":
            self._start_vcd()
            return
        if name in ("$timeformat", "$dumpon", "$dumpoff"):
            return
        if name == "$readmemh" or name == "$readmemb":
            return  # no filesystem in the sandbox; memories start at x
        if name == "$error" or name == "$fatal" or name == "$warning":
            self.output.append(self._format_args(stmt.args, scope))
            if name == "$fatal":
                raise _FinishSim()
            return
        raise SimulationError(f"unsupported system task {name!r}", stmt.line)

    def _start_vcd(self) -> None:
        """Begin recording every non-memory signal of the design."""
        if self._vcd is not None:
            return
        self._vcd = VcdRecorder()
        for signal in self.design.signals:
            if signal.memory is None:
                self._vcd.register(
                    id(signal), signal.name or "top", signal.width, signal.value
                )

    def _check_monitors(self) -> None:
        for monitor in self._monitors:
            text = self._format_args(monitor.fmt_args, monitor.scope)
            if text != monitor.last_text:
                monitor.last_text = text
                self.output.append(text)

    def _format_args(self, args: list[ast.Expr], scope: Scope) -> str:
        if not args:
            return ""
        if isinstance(args[0], ast.StringLit):
            return self._format_string(args[0].text, args[1:], scope)
        rendered = []
        for arg in args:
            value = eval_expr(arg, scope, self)
            rendered.append(self._render(value, "d"))
        return " ".join(rendered)

    def _format_string(
        self, fmt: str, args: list[ast.Expr], scope: Scope
    ) -> str:
        out: list[str] = []
        arg_iter = iter(args)
        index = 0
        while index < len(fmt):
            ch = fmt[index]
            if ch == "\\" and index + 1 < len(fmt):
                escape = fmt[index + 1]
                out.append({"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(escape, escape))
                index += 2
                continue
            if ch != "%":
                out.append(ch)
                index += 1
                continue
            index += 1
            if index >= len(fmt):
                break
            spec = ""
            while index < len(fmt) and fmt[index].isdigit():
                spec += fmt[index]
                index += 1
            conv = fmt[index] if index < len(fmt) else "d"
            index += 1
            if conv == "%":
                out.append("%")
                continue
            if conv == "m":
                out.append(scope.path or self.design.top)
                continue
            try:
                value = eval_expr(next(arg_iter), scope, self)
            except StopIteration:
                out.append("%" + conv)
                continue
            if conv == "t":
                out.append(str(value.to_unsigned() or 0))
            else:
                out.append(self._render(value, conv.lower()))
        return "".join(out)

    @staticmethod
    def _render(value: Vec, conv: str) -> str:
        if conv in ("d", "0"):
            number = value.to_int()
            return "x" if number is None else str(number)
        if conv == "b":
            return value.bits()
        if conv in ("h", "x"):
            if value.is_fully_known:
                return format(value.aval, "x")
            return "".join(
                "x" if any(value.bit(i) in "xz" for i in range(lo, min(lo + 4, value.width)))
                else format((value.aval >> lo) & 0xF, "x")
                for lo in range((value.width - 1) // 4 * 4, -1, -4)
            )
        if conv == "o":
            number = value.to_unsigned()
            return "x" if number is None else format(number, "o")
        if conv == "c":
            number = value.to_unsigned()
            return "?" if number is None else chr(number & 0xFF)
        if conv == "s":
            number = value.to_unsigned()
            if number is None:
                return "?"
            raw = number.to_bytes((value.width + 7) // 8, "big")
            return raw.lstrip(b"\x00").decode("latin-1")
        number = value.to_int()
        return "x" if number is None else str(number)


#: Module-level rendering hook shared with the compiled engine
#: (:mod:`repro.verilog.codegen`) so ``$display`` conversions have one
#: source of truth.
render_value = Simulator._render


def simulate(
    design: Design,
    max_time: int = 1_000_000,
    max_steps: int = 2_000_000,
    profiler=None,
    engine=None,
) -> SimResult:
    """Convenience wrapper: build a Simulator and run it."""
    return Simulator(
        design, max_time=max_time, max_steps=max_steps, profiler=profiler,
        engine=engine,
    ).run()
