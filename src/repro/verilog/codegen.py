"""Netlist→closure compiler: a fast-path execution engine for the simulator.

Walks an elaborated :class:`~repro.verilog.elaborate.Design` once and
lowers each process to Python closures:

* expression trees become width-resolved callables ``fn(sim) -> Vec``
  with context widths, resizes and constant subtrees folded at compile
  time (:func:`_compile4` mirrors :func:`repro.verilog.eval.eval_expr`
  exactly — same widths, same x/z semantics, same error messages);
* blocking/nonblocking stores are pre-bound to their target
  :class:`~repro.verilog.elaborate.Signal` with part-select offsets and
  concat splits precomputed (mirroring ``store_to_lvalue``);
* sensitivity lists become persistent ``_SenseEntry`` objects with the
  waiter-registration signal list and a fast re-eval closure attached,
  so suspension no longer re-runs ``collect_reads`` + scope resolution;
* on top of the four-state closures, a **two-state fast path**
  (:func:`_compile2`) evaluates side-effect-free trees over plain masked
  Python ints, guarded per leaf: any x/z bit bails out to the four-state
  closure of the whole tree, so results are bit-identical always.  The
  dual lowering is emitted when :func:`prove_two_state` shows the design
  never manufactures x/z after initialization (no x/z literals feeding
  the dataflow, no never-initialized registers per the analyzer's x-prop
  check) — the guards keep either mode exact, the proof just avoids
  paying for closures that would always bail.

Compiled processes are plain generators speaking the interpreter's
suspension protocol (``("delay", ticks)`` / ``("wait", entries)``), so
:class:`~repro.verilog.sim.Simulator` runs compiled and interpreted
processes side by side in one event loop and the step/work runaway
guards keep identical counts and messages.  Any construct the compiler
does not cover raises :class:`_Unsupported` during engine construction
and that *process* falls back to the interpreter — never the whole
design.

One engine drives one simulation run: sense entries and their ``last``
values live in the compiled closures, exactly as a ``Simulator`` owns
its interpreted processes.  (Re-simulating a mutated ``Design`` is
already unsupported upstream — signals carry run state.)
"""

from __future__ import annotations

import dataclasses

from . import ast, values
from .elaborate import Design, ProcessSpec, Scope, Signal
from .errors import ElaborationError, SimulationError
from .eval import (
    _BINARY_FUNCS,
    _COMPARE_OPS,
    _CONTEXT_OPS,
    _CONTEXT_UNARY,
    _LOGICAL_OPS,
    _SHIFT_OPS,
    _UNARY_FUNCS,
    _string_to_vec,
    case_matches,
    collect_reads,
    eval_expr,
)
from .sim import _FinishSim, _SenseEntry, render_value
from .values import Vec

__all__ = ["CompiledEngine", "prove_two_state"]


class _Unsupported(Exception):
    """Raised at compile time: lower this process via the interpreter."""


class _NoFastPath(Exception):
    """Raised at compile time: no two-state lowering for this tree."""


# ----------------------------------------------------------------------
# Static (compile-time) constant folding
# ----------------------------------------------------------------------
def _is_param_const(expr: ast.Expr, scope: Scope) -> bool:
    """True when ``expr`` reads only parameters and literals.

    The interpreter's ``eval_const``/``size_of`` calls inside hot paths
    *can* read signals at runtime (e.g. dynamic part-select bounds); such
    expressions are not static and the process falls back.
    """
    if isinstance(expr, (ast.SystemCall, ast.FunctionCall)):
        return False
    for child in _children_of(expr):
        if not _is_param_const(child, scope):
            return False
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        return resolved is not None and resolved[0] == "param"
    return True


def _children_of(expr: ast.Expr) -> list[ast.Expr]:
    if isinstance(expr, ast.Unary):
        return [expr.operand]
    if isinstance(expr, ast.Binary):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, ast.Ternary):
        return [expr.cond, expr.if_true, expr.if_false]
    if isinstance(expr, ast.Concat):
        return list(expr.parts)
    if isinstance(expr, ast.Replicate):
        return [expr.count, expr.value]
    if isinstance(expr, ast.BitSelect):
        return [expr.base, expr.index]
    if isinstance(expr, ast.PartSelect):
        return [expr.base, expr.msb, expr.lsb]
    if isinstance(expr, ast.IndexedPartSelect):
        return [expr.base, expr.start, expr.width]
    if isinstance(expr, (ast.SystemCall, ast.FunctionCall)):
        return list(expr.args)
    return []


def _static_const(expr: ast.Expr, scope: Scope) -> int:
    """Fold a compile-time constant, or raise :class:`_Unsupported`."""
    if expr is None or not _is_param_const(expr, scope):
        raise _Unsupported("non-constant expression in sized position")
    value = eval_expr(expr, scope).to_int()
    if value is None:
        raise ElaborationError("constant expression has x/z bits", expr.line)
    return value


def _static_size(expr: ast.Expr, scope: Scope) -> int:
    """Mirror of :func:`repro.verilog.eval.size_of` that refuses to read
    runtime state (raises :class:`_Unsupported` instead)."""
    if isinstance(expr, ast.Number):
        return expr.width
    if isinstance(expr, ast.StringLit):
        return max(8, 8 * len(expr.text))
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        if resolved is None or resolved[0] not in ("param", "signal"):
            raise _Unsupported(f"cannot size identifier {expr.name!r}")
        return resolved[1].width
    if isinstance(expr, ast.BitSelect):
        signal = _signal_of(expr.base, scope)
        if signal is not None and signal.memory is not None:
            return signal.width
        return 1
    if isinstance(expr, ast.PartSelect):
        return abs(_static_const(expr.msb, scope)
                   - _static_const(expr.lsb, scope)) + 1
    if isinstance(expr, ast.IndexedPartSelect):
        return _static_const(expr.width, scope)
    if isinstance(expr, ast.Unary):
        if expr.op in _CONTEXT_UNARY:
            return _static_size(expr.operand, scope)
        return 1
    if isinstance(expr, ast.Binary):
        if expr.op in _CONTEXT_OPS:
            return max(_static_size(expr.lhs, scope),
                       _static_size(expr.rhs, scope))
        if expr.op in _SHIFT_OPS:
            return _static_size(expr.lhs, scope)
        return 1
    if isinstance(expr, ast.Ternary):
        return max(_static_size(expr.if_true, scope),
                   _static_size(expr.if_false, scope))
    if isinstance(expr, ast.Concat):
        return sum(_static_size(part, scope) for part in expr.parts)
    if isinstance(expr, ast.Replicate):
        return (_static_const(expr.count, scope)
                * _static_size(expr.value, scope))
    if isinstance(expr, ast.SystemCall):
        if expr.name in ("$signed", "$unsigned"):
            if not expr.args:
                raise _Unsupported(f"{expr.name} without arguments")
            return _static_size(expr.args[0], scope)
        if expr.name in ("$time", "$stime", "$realtime"):
            return 64
        return 32
    if isinstance(expr, ast.FunctionCall):
        resolved = scope.resolve(expr.name)
        if resolved is None or resolved[0] != "func":
            raise _Unsupported(f"unknown function {expr.name!r}")
        func = resolved[1]
        if func.range is None:
            return 1
        return abs(_static_const(func.range.msb, scope)
                   - _static_const(func.range.lsb, scope)) + 1
    raise _Unsupported(f"cannot size {type(expr).__name__}")


def _signal_of(base: ast.Expr, scope: Scope) -> Signal | None:
    if isinstance(base, ast.Identifier):
        resolved = scope.resolve(base.name)
        if resolved and resolved[0] == "signal":
            return resolved[1]
    return None


def _node_count(expr: ast.Expr) -> int:
    return 1 + sum(_node_count(child) for child in _children_of(expr))


# ----------------------------------------------------------------------
# Four-state lowering (exact eval_expr mirror)
# ----------------------------------------------------------------------
def _const_fn(vec: Vec):
    return lambda sim: vec


def _fit(fn, natural: int | None, context: int):
    """Apply the interpreter's ``.resize(context)`` on an operand,
    elided when the operand's width is statically equal already."""
    if natural == context:
        return fn
    return lambda sim: fn(sim).resize(context)


def _compile4(expr: ast.Expr, scope: Scope, width: int | None):
    """Lower ``expr`` to ``fn(sim) -> Vec`` under context ``width``.

    Returns ``(fn, natural_width)`` where ``natural_width`` is the static
    width of the produced vector (``None`` when runtime-dependent).
    Raises :class:`_Unsupported` for trees the compiler does not cover.
    """
    if isinstance(expr, ast.Number):
        vec = Vec.from_bits(expr.value_bits, expr.signed)
        return _const_fn(vec), vec.width
    if isinstance(expr, ast.StringLit):
        vec = _string_to_vec(expr.text)
        return _const_fn(vec), vec.width
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        if resolved is None:
            raise _Unsupported(f"undeclared identifier {expr.name!r}")
        kind, payload = resolved
        if kind == "param":
            return _const_fn(payload), payload.width
        if kind != "signal" or payload.memory is not None:
            raise _Unsupported(f"cannot read {expr.name!r} directly")
        signal = payload
        return (lambda sim: signal.value), signal.width
    if isinstance(expr, ast.Unary):
        return _compile4_unary(expr, scope, width)
    if isinstance(expr, ast.Binary):
        return _compile4_binary(expr, scope, width)
    if isinstance(expr, ast.Ternary):
        return _compile4_ternary(expr, scope, width)
    if isinstance(expr, ast.Concat):
        parts = [_compile4(part, scope, None) for part in expr.parts]
        fns = [fn for fn, _ in parts]
        widths = [w for _, w in parts]
        natural = sum(widths) if all(w is not None for w in widths) else None
        concat = values.concat
        return (lambda sim: concat([fn(sim) for fn in fns])), natural
    if isinstance(expr, ast.Replicate):
        return _compile4_replicate(expr, scope)
    if isinstance(expr, ast.BitSelect):
        return _compile4_bit_select(expr, scope)
    if isinstance(expr, ast.PartSelect):
        return _compile4_part_select(expr, scope)
    if isinstance(expr, ast.IndexedPartSelect):
        return _compile4_indexed(expr, scope)
    if isinstance(expr, ast.SystemCall):
        return _compile4_system_call(expr, scope)
    if isinstance(expr, ast.FunctionCall):
        return _compile4_function_call(expr, scope)
    raise _Unsupported(f"cannot compile {type(expr).__name__}")


def _compile4_unary(expr: ast.Unary, scope: Scope, width: int | None):
    func = _UNARY_FUNCS.get(expr.op)
    if func is None:
        raise _Unsupported(f"unary operator {expr.op!r}")
    if expr.op in _CONTEXT_UNARY:
        inner = max(width or 0, _static_size(expr.operand, scope))
        operand = _fit(*_compile4(expr.operand, scope, inner), inner)
        return (lambda sim: func(operand(sim))), inner
    operand, _ = _compile4(expr.operand, scope, None)
    return (lambda sim: func(operand(sim))), 1


def _compile4_binary(expr: ast.Binary, scope: Scope, width: int | None):
    op = expr.op
    func = _BINARY_FUNCS.get(op)
    if func is None:
        raise _Unsupported(f"binary operator {op!r}")
    if op in _CONTEXT_OPS:
        context = max(width or 0, _static_size(expr.lhs, scope),
                      _static_size(expr.rhs, scope))
        lhs = _fit(*_compile4(expr.lhs, scope, context), context)
        rhs = _fit(*_compile4(expr.rhs, scope, context), context)
        return (lambda sim: func(lhs(sim), rhs(sim))), context
    if op in _COMPARE_OPS:
        context = max(_static_size(expr.lhs, scope),
                      _static_size(expr.rhs, scope))
        lhs = _fit(*_compile4(expr.lhs, scope, context), context)
        rhs = _fit(*_compile4(expr.rhs, scope, context), context)
        return (lambda sim: func(lhs(sim), rhs(sim))), 1
    if op in _SHIFT_OPS:
        context = max(width or 0, _static_size(expr.lhs, scope))
        lhs = _fit(*_compile4(expr.lhs, scope, context), context)
        rhs, rhs_w = _compile4(expr.rhs, scope, None)
        if op == "**":
            # values.power re-unifies widths, so the result can exceed
            # the lhs context when the exponent is wider.
            natural = max(context, rhs_w) if rhs_w is not None else None
        else:
            natural = context
        return (lambda sim: func(lhs(sim), rhs(sim))), natural
    # logical && / ||: operands self-determined
    lhs, _ = _compile4(expr.lhs, scope, None)
    rhs, _ = _compile4(expr.rhs, scope, None)
    return (lambda sim: func(lhs(sim), rhs(sim))), 1


def _compile4_ternary(expr: ast.Ternary, scope: Scope, width: int | None):
    context = max(width or 0, _static_size(expr.if_true, scope),
                  _static_size(expr.if_false, scope))
    cond, _ = _compile4(expr.cond, scope, None)
    true_fn = _fit(*_compile4(expr.if_true, scope, context), context)
    false_fn = _fit(*_compile4(expr.if_false, scope, context), context)
    mask = (1 << context) - 1

    def run(sim):
        chooser = cond(sim)
        if chooser.truthy():
            return true_fn(sim)
        if chooser.is_definitely_zero():
            return false_fn(sim)
        true_v = true_fn(sim)
        false_v = false_fn(sim)
        same = (~(true_v.aval ^ false_v.aval)
                & ~true_v.bval & ~false_v.bval & mask)
        return Vec(context, (true_v.aval & same) | (~same & mask),
                   ~same & mask)

    return run, context


def _compile4_replicate(expr: ast.Replicate, scope: Scope):
    value_fn, value_w = _compile4(expr.value, scope, None)
    replicate = values.replicate
    if _is_param_const(expr.count, scope):
        count = eval_expr(expr.count, scope).to_unsigned()
        if count is None or count < 1:
            # the interpreter raises on every evaluation; keep its path
            raise _Unsupported("constant bad replication count")
        natural = count * value_w if value_w is not None else None
        return (lambda sim: replicate(count, value_fn(sim))), natural
    count_fn, _ = _compile4(expr.count, scope, None)
    line = expr.line

    def run(sim):
        count = count_fn(sim).to_unsigned()
        if count is None or count < 1:
            raise ElaborationError("bad replication count", line)
        return replicate(count, value_fn(sim))

    return run, None


def _compile4_bit_select(expr: ast.BitSelect, scope: Scope):
    signal = _signal_of(expr.base, scope)
    select_bit = values.select_bit
    index_const = _is_param_const(expr.index, scope)
    if not index_const:
        index_fn, _ = _compile4(expr.index, scope, None)
    if signal is not None and signal.memory is not None:
        if index_const:
            address = eval_expr(expr.index, scope).to_int()
            return (lambda sim: signal.read_word(address)), signal.width

        def run_word(sim):
            return signal.read_word(index_fn(sim).to_int())

        return run_word, signal.width
    if signal is not None:
        if index_const:
            offset = signal.bit_offset(eval_expr(expr.index, scope).to_int())
            return (lambda sim: select_bit(signal.value, offset)), 1

        def run_bit(sim):
            return select_bit(signal.value,
                              signal.bit_offset(index_fn(sim).to_int()))

        return run_bit, 1
    base_fn, _ = _compile4(expr.base, scope, None)
    if index_const:
        index = eval_expr(expr.index, scope).to_int()
        return (lambda sim: select_bit(base_fn(sim), index)), 1

    def run(sim):
        index = index_fn(sim).to_int()
        return select_bit(base_fn(sim), index)

    return run, 1


def _compile4_part_select(expr: ast.PartSelect, scope: Scope):
    signal = _signal_of(expr.base, scope)
    select_part = values.select_part
    line = expr.line
    bounds_const = (_is_param_const(expr.msb, scope)
                    and _is_param_const(expr.lsb, scope))
    if signal is not None and signal.memory is not None:
        raise _Unsupported("part-select on memory")
    if bounds_const:
        msb = eval_expr(expr.msb, scope).to_int()
        lsb = eval_expr(expr.lsb, scope).to_int()
        if msb is None or lsb is None:
            raise _Unsupported("x/z part-select bounds")
        natural = abs(msb - lsb) + 1
        if signal is not None:
            hi, lo = signal.bit_offset(msb), signal.bit_offset(lsb)
            if hi is None or lo is None:
                unknown = Vec.unknown(natural)
                return _const_fn(unknown), natural
            return (lambda sim: select_part(signal.value, hi, lo)), natural
        base_fn, _ = _compile4(expr.base, scope, None)
        return (lambda sim: select_part(base_fn(sim), msb, lsb)), natural
    msb_fn, _ = _compile4(expr.msb, scope, None)
    lsb_fn, _ = _compile4(expr.lsb, scope, None)
    if signal is not None:
        def run_signal(sim):
            msb = msb_fn(sim).to_int()
            lsb = lsb_fn(sim).to_int()
            if msb is None or lsb is None:
                raise ElaborationError(
                    "part-select bounds must be known", line
                )
            hi, lo = signal.bit_offset(msb), signal.bit_offset(lsb)
            if hi is None or lo is None:
                return Vec.unknown(abs(msb - lsb) + 1)
            return select_part(signal.value, hi, lo)

        return run_signal, None
    base_fn, _ = _compile4(expr.base, scope, None)

    def run(sim):
        msb = msb_fn(sim).to_int()
        lsb = lsb_fn(sim).to_int()
        if msb is None or lsb is None:
            raise ElaborationError("part-select bounds must be known", line)
        return select_part(base_fn(sim), msb, lsb)

    return run, None


def _compile4_indexed(expr: ast.IndexedPartSelect, scope: Scope):
    signal = _signal_of(expr.base, scope)
    select_part = values.select_part
    ascending = expr.ascending
    line = expr.line
    start_fn, _ = _compile4(expr.start, scope, None)
    width_fn, _ = _compile4(expr.width, scope, None)
    natural = None
    if _is_param_const(expr.width, scope):
        known = eval_expr(expr.width, scope).to_int()
        if known is not None and known >= 1:
            natural = known
    if signal is not None and signal.memory is None:
        def run_signal(sim):
            start = start_fn(sim).to_int()
            width = width_fn(sim).to_int()
            if width is None or width < 1:
                raise ElaborationError(
                    "indexed part-select width must be known", line
                )
            if start is None:
                return Vec.unknown(width)
            lo_index = start if ascending else start - width + 1
            lo = signal.bit_offset(lo_index)
            if lo is None:
                return Vec.unknown(width)
            return select_part(signal.value, lo + width - 1, lo)

        return run_signal, natural
    base_fn, _ = _compile4(expr.base, scope, None)

    def run(sim):
        start = start_fn(sim).to_int()
        width = width_fn(sim).to_int()
        if width is None or width < 1:
            raise ElaborationError(
                "indexed part-select width must be known", line
            )
        if start is None:
            return Vec.unknown(width)
        lo = start if ascending else start - width + 1
        return select_part(base_fn(sim), lo + width - 1, lo)

    return run, natural


def _compile4_system_call(expr: ast.SystemCall, scope: Scope):
    name = expr.name
    if name in ("$signed", "$unsigned"):
        if not expr.args:
            raise _Unsupported(f"{name} without arguments")
        arg_fn, arg_w = _compile4(expr.args[0], scope, None)
        if name == "$signed":
            return (lambda sim: arg_fn(sim).as_signed()), arg_w
        return (lambda sim: arg_fn(sim).as_unsigned()), arg_w
    if name == "$clog2":
        if not expr.args:
            raise _Unsupported("$clog2 without arguments")
        arg_fn, _ = _compile4(expr.args[0], scope, None)

        def run_clog2(sim):
            operand = arg_fn(sim).to_unsigned()
            if operand is None:
                return Vec.unknown(32)
            bits = 0
            while (1 << bits) < operand:
                bits += 1
            return Vec.from_int(bits, 32, True)

        return run_clog2, 32
    if name in ("$time", "$stime", "$realtime"):
        from_int = Vec.from_int
        return (lambda sim: from_int(sim.now, 64)), 64
    if name == "$random":
        from_int = Vec.from_int
        return (lambda sim: from_int(sim.next_random(), 32, True)), 32
    raise _Unsupported(f"system function {name!r}")


def _compile4_function_call(expr: ast.FunctionCall, scope: Scope):
    resolved = scope.resolve(expr.name)
    if resolved is None or resolved[0] != "func":
        raise _Unsupported(f"unknown function {expr.name!r}")
    func = resolved[1]
    if len(expr.args) != len(func.inputs):
        raise _Unsupported(f"bad arity for function {expr.name!r}")
    natural = None
    try:
        if func.range is None:
            natural = 1
        else:
            natural = abs(_static_const(func.range.msb, scope)
                          - _static_const(func.range.lsb, scope)) + 1
    except _Unsupported:
        natural = None
    # Delegate to the interpreter's evaluator: function bodies execute a
    # private scope statement-by-statement and are rarely hot enough to
    # justify their own lowering.
    return (lambda sim: eval_expr(expr, scope, sim)), natural


# ----------------------------------------------------------------------
# Two-state lowering (masked-int fast path with per-leaf x/z guards)
# ----------------------------------------------------------------------
# ``fn2(sim) -> int | None``: the unsigned masked value at the static
# width, or None ("bail") when any consumed bit is x/z — the caller then
# re-runs the four-state closure of the whole tree.  Eligible trees are
# side-effect-free ($random and function calls are excluded), so the
# bail-and-recompute never double-runs an effect.

_VEC_NEW = Vec.__new__
_SET = object.__setattr__


def _box(width: int, aval: int, signed: bool) -> Vec:
    """Build a fully-known Vec without re-running field validation."""
    vec = _VEC_NEW(Vec)
    _SET(vec, "width", width)
    _SET(vec, "aval", aval)
    _SET(vec, "bval", 0)
    _SET(vec, "signed", signed)
    return vec


def _ext2(fn, from_w: int, to_w: int, signed: bool):
    """Extend a masked int from ``from_w`` to ``to_w`` bits, mirroring
    ``Vec.resize`` extension (sign-fill iff the source is signed)."""
    if from_w >= to_w:
        return fn
    if not signed:
        return fn  # zero extension of a masked value is the identity
    sign_bit = 1 << (from_w - 1)
    fill = ((1 << (to_w - from_w)) - 1) << from_w

    def run(sim):
        value = fn(sim)
        if value is None or not value & sign_bit:
            return value
        return value | fill

    return run


def _to_signed(value: int, width: int) -> int:
    return value - (1 << width) if value >> (width - 1) else value


def _compile2(expr: ast.Expr, scope: Scope, width: int | None):
    """Two-state lowering; returns ``(fn2, width, signed)`` or raises
    :class:`_NoFastPath`/:class:`_Unsupported`."""
    if isinstance(expr, ast.Number):
        vec = Vec.from_bits(expr.value_bits, expr.signed)
        if vec.bval:
            raise _NoFastPath("x/z literal")
        aval = vec.aval
        return (lambda sim: aval), vec.width, expr.signed
    if isinstance(expr, ast.StringLit):
        vec = _string_to_vec(expr.text)
        aval = vec.aval
        return (lambda sim: aval), vec.width, False
    if isinstance(expr, ast.Identifier):
        resolved = scope.resolve(expr.name)
        if resolved is None:
            raise _Unsupported(f"undeclared identifier {expr.name!r}")
        kind, payload = resolved
        if kind == "param":
            if payload.bval:
                raise _NoFastPath("x/z parameter")
            aval = payload.aval
            return (lambda sim: aval), payload.width, payload.signed
        if kind != "signal" or payload.memory is not None:
            raise _NoFastPath("not a plain signal")
        signal = payload

        def run_signal(sim):
            value = signal.value
            if value.bval:
                return None
            return value.aval

        return run_signal, signal.width, signal.signed
    if isinstance(expr, ast.Unary):
        return _compile2_unary(expr, scope, width)
    if isinstance(expr, ast.Binary):
        return _compile2_binary(expr, scope, width)
    if isinstance(expr, ast.Ternary):
        return _compile2_ternary(expr, scope, width)
    if isinstance(expr, ast.Concat):
        parts = [_compile2(part, scope, None) for part in expr.parts]
        total = sum(part_w for _, part_w, _ in parts)

        def run_concat(sim):
            aval = 0
            for fn, part_w, _ in parts:
                piece = fn(sim)
                if piece is None:
                    return None
                aval = (aval << part_w) | piece
            return aval

        return run_concat, total, False
    if isinstance(expr, ast.Replicate):
        if not _is_param_const(expr.count, scope):
            raise _NoFastPath("dynamic replication count")
        count = eval_expr(expr.count, scope).to_unsigned()
        if count is None or count < 1:
            raise _Unsupported("constant bad replication count")
        fn, part_w, _ = _compile2(expr.value, scope, None)

        def run_repl(sim):
            piece = fn(sim)
            if piece is None:
                return None
            aval = 0
            for _ in range(count):
                aval = (aval << part_w) | piece
            return aval

        return run_repl, count * part_w, False
    if isinstance(expr, ast.BitSelect):
        return _compile2_bit_select(expr, scope)
    if isinstance(expr, ast.PartSelect):
        return _compile2_part_select(expr, scope)
    if isinstance(expr, ast.IndexedPartSelect):
        return _compile2_indexed(expr, scope)
    if isinstance(expr, ast.SystemCall):
        return _compile2_system_call(expr, scope)
    raise _NoFastPath(type(expr).__name__)


def _compile2_unary(expr: ast.Unary, scope: Scope, width: int | None):
    op = expr.op
    if op in _CONTEXT_UNARY:
        inner = max(width or 0, _static_size(expr.operand, scope))
        fn, operand_w, signed = _compile2(expr.operand, scope, inner)
        fn = _ext2(fn, operand_w, inner, signed)
        if op == "+":
            return fn, inner, signed
        mask = (1 << inner) - 1
        if op == "-":
            def run_neg(sim):
                value = fn(sim)
                return None if value is None else (-value) & mask

            return run_neg, inner, signed

        def run_not(sim):
            value = fn(sim)
            return None if value is None else ~value & mask

        return run_not, inner, False
    fn, operand_w, _ = _compile2(expr.operand, scope, None)
    mask = (1 << operand_w) - 1
    if op == "!":
        def run_lnot(sim):
            value = fn(sim)
            if value is None:
                return None
            return 0 if value else 1

        return run_lnot, 1, False
    if op in ("&", "~&"):
        hit = 1 if op == "&" else 0

        def run_rand(sim):
            value = fn(sim)
            if value is None:
                return None
            return hit if value == mask else 1 - hit

        return run_rand, 1, False
    if op in ("|", "~|"):
        hit = 1 if op == "|" else 0

        def run_ror(sim):
            value = fn(sim)
            if value is None:
                return None
            return hit if value else 1 - hit

        return run_ror, 1, False
    if op in ("^", "~^", "^~"):
        odd = 1 if op == "^" else 0

        def run_rxor(sim):
            value = fn(sim)
            if value is None:
                return None
            return odd if value.bit_count() & 1 else 1 - odd

        return run_rxor, 1, False
    raise _NoFastPath(f"unary {op!r}")


def _compile2_binary(expr: ast.Binary, scope: Scope, width: int | None):
    op = expr.op
    if op in _CONTEXT_OPS:
        context = max(width or 0, _static_size(expr.lhs, scope),
                      _static_size(expr.rhs, scope))
        lf, lw, ls = _compile2(expr.lhs, scope, context)
        rf, rw, rs = _compile2(expr.rhs, scope, context)
        lf = _ext2(lf, lw, context, ls)
        rf = _ext2(rf, rw, context, rs)
        mask = (1 << context) - 1
        signed = ls and rs
        if op in ("+", "-", "*"):
            flip = {"+": lambda a, b: a + b,
                    "-": lambda a, b: a - b,
                    "*": lambda a, b: a * b}[op]

            def run_arith(sim):
                a = lf(sim)
                if a is None:
                    return None
                b = rf(sim)
                if b is None:
                    return None
                return flip(a, b) & mask

            return run_arith, context, signed
        if op in ("&", "|", "^", "~^", "^~"):
            if op == "&":
                combine = lambda a, b: a & b  # noqa: E731
            elif op == "|":
                combine = lambda a, b: a | b  # noqa: E731
            elif op == "^":
                combine = lambda a, b: a ^ b  # noqa: E731
            else:
                combine = lambda a, b: ~(a ^ b) & mask  # noqa: E731

            def run_bits(sim):
                a = lf(sim)
                if a is None:
                    return None
                b = rf(sim)
                if b is None:
                    return None
                return combine(a, b)

            return run_bits, context, False
        if op in ("/", "%"):
            def run_divmod(sim):
                a = lf(sim)
                if a is None:
                    return None
                b = rf(sim)
                if b is None or b == 0:
                    return None  # division by zero: x result, bail
                if signed:
                    a = _to_signed(a, context)
                    b = _to_signed(b, context)
                if op == "/":
                    result = abs(a) // abs(b)
                    if (a < 0) != (b < 0):
                        result = -result
                else:
                    result = abs(a) % abs(b)
                    if a < 0:
                        result = -result
                return result & mask

            return run_divmod, context, signed
        raise _NoFastPath(f"context op {op!r}")
    if op in _COMPARE_OPS:
        context = max(_static_size(expr.lhs, scope),
                      _static_size(expr.rhs, scope))
        lf, lw, ls = _compile2(expr.lhs, scope, context)
        rf, rw, rs = _compile2(expr.rhs, scope, context)
        lf = _ext2(lf, lw, context, ls)
        rf = _ext2(rf, rw, context, rs)
        signed = ls and rs
        if op in ("==", "!=", "===", "!=="):
            hit = 1 if op in ("==", "===") else 0

            def run_eq(sim):
                a = lf(sim)
                if a is None:
                    return None
                b = rf(sim)
                if b is None:
                    return None
                return hit if a == b else 1 - hit

            return run_eq, 1, False
        compare = {"<": lambda a, b: a < b, "<=": lambda a, b: a <= b,
                   ">": lambda a, b: a > b, ">=": lambda a, b: a >= b}[op]

        def run_rel(sim):
            a = lf(sim)
            if a is None:
                return None
            b = rf(sim)
            if b is None:
                return None
            if signed:
                a = _to_signed(a, context)
                b = _to_signed(b, context)
            return 1 if compare(a, b) else 0

        return run_rel, 1, False
    if op in _SHIFT_OPS:
        return _compile2_shift(expr, scope, width)
    if op in _LOGICAL_OPS:
        lf, _, _ = _compile2(expr.lhs, scope, None)
        rf, _, _ = _compile2(expr.rhs, scope, None)
        # Eligible trees are side-effect-free, so short-circuiting a
        # known-dominant operand is observationally identical.
        if op == "&&":
            def run_and(sim):
                a = lf(sim)
                if a == 0:
                    return 0
                b = rf(sim)
                if b == 0:
                    return 0
                if a is None or b is None:
                    return None
                return 1

            return run_and, 1, False

        def run_or(sim):
            a = lf(sim)
            if a is not None and a != 0:
                return 1
            b = rf(sim)
            if b is not None and b != 0:
                return 1
            if a is None or b is None:
                return None
            return 0

        return run_or, 1, False
    raise _NoFastPath(f"binary {op!r}")


def _compile2_shift(expr: ast.Binary, scope: Scope, width: int | None):
    op = expr.op
    context = max(width or 0, _static_size(expr.lhs, scope))
    lf, lw, ls = _compile2(expr.lhs, scope, context)
    lf = _ext2(lf, lw, context, ls)
    rf, rw, rs = _compile2(expr.rhs, scope, None)
    mask = (1 << context) - 1
    if op in ("<<", "<<<"):
        def run_shl(sim):
            a = lf(sim)
            if a is None:
                return None
            amount = rf(sim)
            if amount is None:
                return None
            if amount >= context:
                return 0
            return (a << amount) & mask

        return run_shl, context, ls
    if op == ">>":
        def run_shr(sim):
            a = lf(sim)
            if a is None:
                return None
            amount = rf(sim)
            if amount is None:
                return None
            return a >> amount

        return run_shr, context, ls
    if op == ">>>":
        if not ls:
            def run_sshr_u(sim):
                a = lf(sim)
                if a is None:
                    return None
                amount = rf(sim)
                if amount is None:
                    return None
                return a >> amount

            return run_sshr_u, context, ls
        sign_bit = 1 << (context - 1)

        def run_sshr(sim):
            a = lf(sim)
            if a is None:
                return None
            amount = rf(sim)
            if amount is None:
                return None
            amount = min(amount, context)
            fill = (((1 << amount) - 1) << (context - amount)
                    if amount else 0)
            shifted = a >> amount
            return shifted | fill if a & sign_bit else shifted

        return run_sshr, context, ls
    # ** — values.power re-unifies widths and signedness itself
    result_w = max(context, rw)
    lf = _ext2(lf, context, result_w, ls)
    rf2 = _ext2(rf, rw, result_w, rs)
    signed = ls and rs
    mask = (1 << result_w) - 1

    def run_pow(sim):
        a = lf(sim)
        if a is None:
            return None
        b = rf2(sim)
        if b is None:
            return None
        if signed:
            a = _to_signed(a, result_w)
            b = _to_signed(b, result_w)
        if b < 0:
            if a in (1, -1):
                return ((a ** (-b & 1)) if a == -1 else 1) & mask
            return 0
        return pow(a, b) & mask

    return run_pow, result_w, signed


def _compile2_ternary(expr: ast.Ternary, scope: Scope, width: int | None):
    context = max(width or 0, _static_size(expr.if_true, scope),
                  _static_size(expr.if_false, scope))
    cond_fn, _, _ = _compile2(expr.cond, scope, None)
    tf, tw, ts = _compile2(expr.if_true, scope, context)
    ff, fw, fs = _compile2(expr.if_false, scope, context)
    if ts != fs:
        # the chosen arm decides result signedness at runtime
        raise _NoFastPath("ternary arms disagree on signedness")
    tf = _ext2(tf, tw, context, ts)
    ff = _ext2(ff, fw, context, fs)

    def run(sim):
        chooser = cond_fn(sim)
        if chooser is None:
            return None  # ambiguous: four-state merge path
        return tf(sim) if chooser else ff(sim)

    return run, context, ts


def _compile2_bit_select(expr: ast.BitSelect, scope: Scope):
    signal = _signal_of(expr.base, scope)
    if signal is None:
        raise _NoFastPath("bit-select on non-signal")
    if signal.memory is not None:
        lo_addr, hi_addr = signal.array_lo, signal.array_hi
        memory = signal.memory
        if _is_param_const(expr.index, scope):
            address = eval_expr(expr.index, scope).to_int()
            if address is None or not lo_addr <= address <= hi_addr:
                raise _NoFastPath("constant out-of-range word address")

            def run_const_word(sim):
                word = memory.get(address)
                if word is None or word.bval:
                    return None
                return word.aval

            return run_const_word, signal.width, signal.signed
        index_fn, index_w, index_s = _compile2(expr.index, scope, None)

        def run_word(sim):
            address = index_fn(sim)
            if address is None:
                return None
            if index_s:
                address = _to_signed(address, index_w)
            if not lo_addr <= address <= hi_addr:
                return None  # x word, bail
            word = memory.get(address)
            if word is None or word.bval:
                return None
            return word.aval

        return run_word, signal.width, signal.signed
    if _is_param_const(expr.index, scope):
        offset = signal.bit_offset(eval_expr(expr.index, scope).to_int())
        if offset is None:
            raise _NoFastPath("constant out-of-range bit index")
        bit = 1 << offset

        def run_const_bit(sim):
            value = signal.value
            if value.bval & bit:
                return None
            return 1 if value.aval & bit else 0

        return run_const_bit, 1, False
    index_fn, index_w, index_s = _compile2(expr.index, scope, None)
    msb_decl, lsb_decl, sig_w = signal.msb, signal.lsb, signal.width

    def run_bit(sim):
        index = index_fn(sim)
        if index is None:
            return None
        if index_s:
            index = _to_signed(index, index_w)
        offset = (index - lsb_decl if msb_decl >= lsb_decl
                  else lsb_decl - index)
        if not 0 <= offset < sig_w:
            return None  # out of range reads x, bail
        value = signal.value
        if (value.bval >> offset) & 1:
            return None
        return (value.aval >> offset) & 1

    return run_bit, 1, False


def _compile2_part_select(expr: ast.PartSelect, scope: Scope):
    signal = _signal_of(expr.base, scope)
    if signal is None or signal.memory is not None:
        raise _NoFastPath("part-select needs a plain signal")
    if not (_is_param_const(expr.msb, scope)
            and _is_param_const(expr.lsb, scope)):
        raise _NoFastPath("dynamic part-select bounds")
    msb = eval_expr(expr.msb, scope).to_int()
    lsb = eval_expr(expr.lsb, scope).to_int()
    if msb is None or lsb is None:
        raise _Unsupported("x/z part-select bounds")
    hi, lo = signal.bit_offset(msb), signal.bit_offset(lsb)
    if hi is None or lo is None:
        raise _NoFastPath("out-of-range part-select")
    if hi < lo:
        hi, lo = lo, hi
    width = hi - lo + 1
    mask = (1 << width) - 1

    def run(sim):
        value = signal.value
        if (value.bval >> lo) & mask:
            return None
        return (value.aval >> lo) & mask

    return run, width, False


def _compile2_indexed(expr: ast.IndexedPartSelect, scope: Scope):
    signal = _signal_of(expr.base, scope)
    if signal is None or signal.memory is not None:
        raise _NoFastPath("indexed part-select needs a plain signal")
    if not _is_param_const(expr.width, scope):
        raise _NoFastPath("dynamic indexed part-select width")
    width = eval_expr(expr.width, scope).to_int()
    if width is None or width < 1:
        raise _Unsupported("bad indexed part-select width")
    start_fn, start_w, start_s = _compile2(expr.start, scope, None)
    ascending = expr.ascending
    msb_decl, lsb_decl, sig_w = signal.msb, signal.lsb, signal.width
    mask = (1 << width) - 1

    def run(sim):
        start = start_fn(sim)
        if start is None:
            return None
        if start_s:
            start = _to_signed(start, start_w)
        lo_index = start if ascending else start - width + 1
        lo = (lo_index - lsb_decl if msb_decl >= lsb_decl
              else lsb_decl - lo_index)
        if not 0 <= lo <= sig_w - width:
            return None  # any out-of-range bit reads x, bail
        value = signal.value
        if (value.bval >> lo) & mask:
            return None
        return (value.aval >> lo) & mask

    return run, width, False


def _compile2_system_call(expr: ast.SystemCall, scope: Scope):
    name = expr.name
    if name in ("$signed", "$unsigned"):
        if not expr.args:
            raise _Unsupported(f"{name} without arguments")
        fn, arg_w, _ = _compile2(expr.args[0], scope, None)
        return fn, arg_w, name == "$signed"
    if name == "$clog2":
        if not expr.args:
            raise _Unsupported("$clog2 without arguments")
        fn, _, _ = _compile2(expr.args[0], scope, None)

        def run_clog2(sim):
            operand = fn(sim)
            if operand is None:
                return None
            bits = 0
            while (1 << bits) < operand:
                bits += 1
            return bits

        return run_clog2, 32, True
    if name in ("$time", "$stime", "$realtime"):
        mask = (1 << 64) - 1
        return (lambda sim: sim.now & mask), 64, False
    # $random advances LCG state: never safe to bail-and-recompute
    raise _NoFastPath(f"system function {name!r}")


# ----------------------------------------------------------------------
# Dual lowering combinators
# ----------------------------------------------------------------------
class _ProcessCompiler:
    """Compiles one :class:`ProcessSpec` into a generator factory."""

    def __init__(self, design: Design, two_state: bool):
        self.design = design
        self.two_state = two_state

    # -- expressions ---------------------------------------------------
    def value_fn(self, expr: ast.Expr, scope: Scope, width: int | None):
        """``fn(sim) -> Vec`` with the two-state fast path when proven."""
        four, _ = _compile4(expr, scope, width)
        if not self.two_state or _node_count(expr) < 2:
            return four
        try:
            fast, fast_w, fast_s = _compile2(expr, scope, width)
        except _NoFastPath:
            return four
        if fast_s is None:
            return four

        def run(sim):
            value = fast(sim)
            if value is None:
                return four(sim)
            return _box(fast_w, value, fast_s)

        return run

    def cond_fn(self, expr: ast.Expr, scope: Scope):
        """``fn(sim) -> bool`` mirroring ``eval_expr(cond).truthy()``."""
        four, _ = _compile4(expr, scope, None)
        if self.two_state:
            try:
                fast, _, _ = _compile2(expr, scope, None)
            except _NoFastPath:
                fast = None
            if fast is not None:
                def run(sim):
                    value = fast(sim)
                    if value is None:
                        return four(sim).truthy()
                    return value != 0

                return run
        return lambda sim: four(sim).truthy()

    def delay_fn(self, expr: ast.Expr | None, scope: Scope):
        """Mirror of ``Simulator._eval_delay``."""
        if expr is None:
            return lambda sim: 0
        if _is_param_const(expr, scope):
            ticks = eval_expr(expr, scope).to_unsigned()
            ticks = 0 if ticks is None else ticks
            return lambda sim: ticks
        fn, _ = _compile4(expr, scope, None)

        def run(sim):
            ticks = fn(sim).to_unsigned()
            return 0 if ticks is None else ticks

        return run

    # -- lvalues -------------------------------------------------------
    def lvalue_width(self, target: ast.Expr, scope: Scope) -> int:
        """Static mirror of ``elaborate.lvalue_width``."""
        if isinstance(target, ast.Identifier):
            return self._lvalue_signal(target, scope).width
        if isinstance(target, ast.BitSelect):
            return 1
        if isinstance(target, ast.PartSelect):
            return abs(_static_const(target.msb, scope)
                       - _static_const(target.lsb, scope)) + 1
        if isinstance(target, ast.IndexedPartSelect):
            return _static_const(target.width, scope)
        if isinstance(target, ast.Concat):
            return sum(self.lvalue_width(part, scope)
                       for part in target.parts)
        raise _Unsupported(f"bad lvalue {type(target).__name__}")

    def _lvalue_signal(self, base: ast.Expr, scope: Scope) -> Signal:
        if not isinstance(base, ast.Identifier):
            raise _Unsupported("nested lvalue selects")
        resolved = scope.resolve(base.name)
        if resolved is None or resolved[0] != "signal":
            raise _Unsupported(f"cannot assign to {base.name!r}")
        return resolved[1]

    def store_fn(self, target: ast.Expr, scope: Scope):
        """``fn(sim, value)`` mirroring ``store_to_lvalue`` with the
        target resolution and static offsets precomputed."""
        if isinstance(target, ast.Identifier):
            signal = self._lvalue_signal(target, scope)
            if signal.memory is not None:
                raise _Unsupported("assignment to whole memory")
            sig_w, sig_s = signal.width, signal.signed

            def store_ident(sim, value):
                sim.commit(signal, value.resize(sig_w, sig_s))

            return store_ident
        if isinstance(target, ast.BitSelect):
            return self._store_bit_select(target, scope)
        if isinstance(target, ast.PartSelect):
            signal = self._lvalue_signal(target.base, scope)
            msb = _static_const(target.msb, scope)
            lsb = _static_const(target.lsb, scope)
            hi, lo = signal.bit_offset(msb), signal.bit_offset(lsb)
            if hi is None or lo is None:
                return lambda sim, value: None
            insert_part = values.insert_part

            def store_part(sim, value):
                sim.commit(
                    signal, insert_part(signal.value, hi, lo, value)
                )

            return store_part
        if isinstance(target, ast.IndexedPartSelect):
            return self._store_indexed(target, scope)
        if isinstance(target, ast.Concat):
            widths = [self.lvalue_width(part, scope)
                      for part in target.parts]
            total = sum(widths)
            subs = [self.store_fn(part, scope) for part in target.parts]
            select_part = values.select_part
            pieces = []
            offset = total
            for sub, part_w in zip(subs, widths):
                offset -= part_w
                pieces.append((sub, offset + part_w - 1, offset))

            def store_concat(sim, value):
                value = value.resize(total)
                for sub, hi, lo in pieces:
                    sub(sim, select_part(value, hi, lo))

            return store_concat
        raise _Unsupported(f"unsupported lvalue {type(target).__name__}")

    def _store_bit_select(self, target: ast.BitSelect, scope: Scope):
        signal = self._lvalue_signal(target.base, scope)
        index_const = _is_param_const(target.index, scope)
        if not index_const:
            index_fn, _ = _compile4(target.index, scope, None)
        insert_part = values.insert_part
        if signal.memory is not None:
            lo_addr, hi_addr = signal.array_lo, signal.array_hi
            sig_w, sig_s = signal.width, signal.signed
            memory = signal.memory
            if index_const:
                address = eval_expr(target.index, scope).to_int()

                def store_const_word(sim, value):
                    if address is not None and lo_addr <= address <= hi_addr:
                        memory[address] = value.resize(sig_w, sig_s)
                        sim.commit(signal, signal.value, memory_write=True)

                return store_const_word

            def store_word(sim, value):
                address = index_fn(sim).to_int()
                if address is not None and lo_addr <= address <= hi_addr:
                    memory[address] = value.resize(sig_w, sig_s)
                    sim.commit(signal, signal.value, memory_write=True)

            return store_word
        if index_const:
            offset = signal.bit_offset(eval_expr(target.index, scope).to_int())
            if offset is None:
                return lambda sim, value: None

            def store_const_bit(sim, value):
                sim.commit(
                    signal,
                    insert_part(signal.value, offset, offset, value),
                )

            return store_const_bit

        def store_bit(sim, value):
            offset = signal.bit_offset(index_fn(sim).to_int())
            if offset is None:
                return
            sim.commit(
                signal, insert_part(signal.value, offset, offset, value)
            )

        return store_bit

    def _store_indexed(self, target: ast.IndexedPartSelect, scope: Scope):
        signal = self._lvalue_signal(target.base, scope)
        width = _static_const(target.width, scope)
        start_fn, _ = _compile4(target.start, scope, None)
        ascending = target.ascending
        insert_part = values.insert_part

        def store_indexed(sim, value):
            start = start_fn(sim).to_int()
            if start is None:
                return
            lo_index = start if ascending else start - width + 1
            lo = signal.bit_offset(lo_index)
            if lo is None:
                return
            sim.commit(
                signal,
                insert_part(signal.value, lo + width - 1, lo, value),
            )

        return store_indexed

    # -- statements ----------------------------------------------------
    # Each statement lowers to ("sync", fn(sim)) for code that can never
    # suspend, or ("gen", genfn) where genfn(sim) is a generator whose
    # return value is the interpreter's "suspended" flag.  Work bumps and
    # their line attribution mirror Simulator._exec exactly, so runaway
    # guards fire with identical counts and messages.

    def stmt_item(self, stmt: ast.Stmt, scope: Scope):
        bump = _bump_for(stmt.line)
        if isinstance(stmt, ast.Block):
            return self._compile_block(stmt, scope, bump)
        if isinstance(stmt, ast.Assign):
            return self._compile_assign(stmt, scope, bump)
        if isinstance(stmt, ast.If):
            return self._compile_if(stmt, scope, bump)
        if isinstance(stmt, ast.Case):
            return self._compile_case(stmt, scope, bump)
        if isinstance(stmt, ast.For):
            return self._compile_for(stmt, scope, bump)
        if isinstance(stmt, ast.While):
            return self._compile_while(stmt, scope, bump)
        if isinstance(stmt, ast.Repeat):
            return self._compile_repeat(stmt, scope, bump)
        if isinstance(stmt, ast.Forever):
            return self._compile_forever(stmt, scope, bump)
        if isinstance(stmt, ast.DelayStmt):
            return self._compile_delay_stmt(stmt, scope, bump)
        if isinstance(stmt, ast.EventControl):
            return self._compile_event_control(stmt, scope, bump)
        if isinstance(stmt, ast.Wait):
            return self._compile_wait(stmt, scope, bump)
        if isinstance(stmt, ast.SysTaskCall):
            return self._compile_sys_task(stmt, scope, bump)
        if isinstance(stmt, ast.NullStmt):
            return "sync", bump
        # Disable/TaskCall raise at execution time in the interpreter;
        # fall back so the error surfaces identically.
        raise _Unsupported(f"statement {type(stmt).__name__}")

    def _compile_block(self, stmt: ast.Block, scope: Scope, bump):
        items = [self.stmt_item(child, scope) for child in stmt.stmts]
        if all(kind == "sync" for kind, _ in items):
            fns = tuple(fn for _, fn in items)

            def run(sim):
                bump(sim)
                for fn in fns:
                    fn(sim)

            return "sync", run
        parts = tuple((kind == "gen", fn) for kind, fn in items)

        def gen(sim):
            bump(sim)
            suspended = False
            for is_gen, fn in parts:
                if is_gen:
                    suspended = (yield from fn(sim)) or suspended
                else:
                    fn(sim)
            return suspended

        return "gen", gen

    def _compile_assign(self, stmt: ast.Assign, scope: Scope, bump):
        target_width = self.lvalue_width(stmt.target, scope)
        context = max(target_width, _static_size(stmt.value, scope))
        value_fn = self.value_fn(stmt.value, scope, context)
        store = self.store_fn(stmt.target, scope)
        if stmt.nonblocking:
            has_delay = stmt.delay is not None
            delay_fn = (self.delay_fn(stmt.delay, scope)
                        if has_delay else None)

            def run_nba(sim):
                bump(sim)
                value = value_fn(sim)
                delay = delay_fn(sim) if has_delay else 0

                def apply_update():
                    store(sim, value)

                if sim._profiler is not None:
                    apply_update = sim._profile_nba(apply_update)
                if delay:
                    sim._schedule_at(delay, apply_update)
                else:
                    sim._nba.append(apply_update)

            return "sync", run_nba
        if stmt.delay is not None:
            delay_fn = self.delay_fn(stmt.delay, scope)

            def gen_delayed(sim):
                bump(sim)
                value = value_fn(sim)
                yield ("delay", delay_fn(sim))
                store(sim, value)
                return True

            return "gen", gen_delayed

        def run(sim):
            bump(sim)
            store(sim, value_fn(sim))

        return "sync", run

    def _compile_if(self, stmt: ast.If, scope: Scope, bump):
        cond = self.cond_fn(stmt.cond, scope)
        then_item = self.stmt_item(stmt.then_stmt, scope)
        else_item = (self.stmt_item(stmt.else_stmt, scope)
                     if stmt.else_stmt is not None else None)
        if then_item[0] == "sync" and (else_item is None
                                       or else_item[0] == "sync"):
            then_fn = then_item[1]
            else_fn = else_item[1] if else_item is not None else None

            def run(sim):
                bump(sim)
                if cond(sim):
                    then_fn(sim)
                elif else_fn is not None:
                    else_fn(sim)

            return "sync", run
        then_gen = _to_gen(then_item)
        else_gen = _to_gen(else_item) if else_item is not None else None

        def gen(sim):
            bump(sim)
            if cond(sim):
                return (yield from then_gen(sim))
            if else_gen is None:
                return False
            return (yield from else_gen(sim))

        return "gen", gen

    def _compile_case(self, stmt: ast.Case, scope: Scope, bump):
        kind = stmt.kind
        subject4, _ = _compile4(stmt.subject, scope, None)
        slow_items = []  # (label_fns, body_index) in source order
        bodies = []
        default_index = -1
        const_labels = []  # per non-default item: list of Vec or None
        for item in stmt.items:
            body_index = len(bodies)
            bodies.append(self.stmt_item(item.body, scope))
            if not item.exprs:
                default_index = body_index
                continue
            label_fns = tuple(
                _compile4(label, scope, None)[0] for label in item.exprs
            )
            slow_items.append((label_fns, body_index))
            folded = []
            for label in item.exprs:
                if not _is_param_const(label, scope):
                    folded = None
                    break
                folded.append(eval_expr(label, scope))
            const_labels.append(folded)
        fast_items = self._case_fast_items(
            stmt, scope, kind, slow_items, const_labels
        )
        slow_items = tuple(slow_items)

        def select(sim) -> int:
            """Index of the body to run, or -1 (mirrors _exec_case)."""
            if fast_items is not None:
                subject2, match_items = fast_items
                subject = subject2(sim)
                if subject is not None:
                    for matchers, body_index in match_items:
                        for match in matchers:
                            if match(subject):
                                return body_index
                    return default_index
            subject = subject4(sim)
            for label_fns, body_index in slow_items:
                for label_fn in label_fns:
                    if case_matches(kind, subject, label_fn(sim)):
                        return body_index
            return default_index

        if all(kind_ == "sync" for kind_, _ in bodies):
            body_fns = tuple(fn for _, fn in bodies)

            def run(sim):
                bump(sim)
                chosen = select(sim)
                if chosen >= 0:
                    body_fns[chosen](sim)

            return "sync", run
        body_gens = tuple(_to_gen(item) for item in bodies)

        def gen(sim):
            bump(sim)
            chosen = select(sim)
            if chosen < 0:
                return False
            return (yield from body_gens[chosen](sim))

        return "gen", gen

    def _case_fast_items(self, stmt, scope, kind, slow_items, const_labels):
        """Precompute int matchers for a fully-constant plain ``case``."""
        if not self.two_state or kind != "case":
            return None
        if any(folded is None for folded in const_labels):
            return None
        try:
            subject2, subject_w, subject_s = _compile2(
                stmt.subject, scope, None
            )
        except _NoFastPath:
            return None
        if subject_s is None:
            return None
        match_items = []
        for (_, body_index), folded in zip(slow_items, const_labels):
            matchers = []
            for label in folded:
                width = max(subject_w, label.width)
                resized = label.resize(width)  # own-signed extension
                if resized.bval:
                    return None  # x/z label: four-state matching only
                target = resized.aval
                if width == subject_w or not subject_s:
                    matchers.append(
                        lambda s, target=target: s == target
                    )
                else:
                    sign_bit = 1 << (subject_w - 1)
                    fill = (((1 << (width - subject_w)) - 1)
                            << subject_w)
                    matchers.append(
                        lambda s, target=target, sign_bit=sign_bit,
                        fill=fill:
                        (s | fill if s & sign_bit else s) == target
                    )
            match_items.append((tuple(matchers), body_index))
        return subject2, tuple(match_items)

    def _compile_for(self, stmt: ast.For, scope: Scope, bump):
        init_item = self.stmt_item(stmt.init, scope)
        cond = self.cond_fn(stmt.cond, scope)
        body_item = self.stmt_item(stmt.body, scope)
        step_item = self.stmt_item(stmt.step, scope)
        if all(kind == "sync" for kind, _ in
               (init_item, body_item, step_item)):
            init_fn, body_fn, step_fn = (
                init_item[1], body_item[1], step_item[1]
            )

            def run(sim):
                bump(sim)
                init_fn(sim)
                while cond(sim):
                    body_fn(sim)
                    step_fn(sim)
                    bump(sim)

            return "sync", run
        init_gen = _to_gen(init_item)
        body_gen = _to_gen(body_item)
        step_gen = _to_gen(step_item)

        def gen(sim):
            bump(sim)
            suspended = yield from init_gen(sim)
            while cond(sim):
                suspended = (yield from body_gen(sim)) or suspended
                suspended = (yield from step_gen(sim)) or suspended
                bump(sim)
            return suspended

        return "gen", gen

    def _compile_while(self, stmt: ast.While, scope: Scope, bump):
        cond = self.cond_fn(stmt.cond, scope)
        body_item = self.stmt_item(stmt.body, scope)
        if body_item[0] == "sync":
            body_fn = body_item[1]

            def run(sim):
                bump(sim)
                while cond(sim):
                    body_fn(sim)
                    bump(sim)

            return "sync", run
        body_gen = body_item[1]

        def gen(sim):
            bump(sim)
            suspended = False
            while cond(sim):
                suspended = (yield from body_gen(sim)) or suspended
                bump(sim)
            return suspended

        return "gen", gen

    def _compile_repeat(self, stmt: ast.Repeat, scope: Scope, bump):
        count4, _ = _compile4(stmt.count, scope, None)
        body_item = self.stmt_item(stmt.body, scope)
        if body_item[0] == "sync":
            body_fn = body_item[1]

            def run(sim):
                bump(sim)
                count = count4(sim).to_unsigned() or 0
                for _ in range(count):
                    body_fn(sim)

            return "sync", run
        body_gen = body_item[1]

        def gen(sim):
            bump(sim)
            count = count4(sim).to_unsigned() or 0
            suspended = False
            for _ in range(count):
                suspended = (yield from body_gen(sim)) or suspended
            return suspended

        return "gen", gen

    def _compile_forever(self, stmt: ast.Forever, scope: Scope, bump):
        body_item = self.stmt_item(stmt.body, scope)
        line = stmt.line
        if body_item[0] == "sync":
            body_fn = body_item[1]

            def gen_sync(sim):
                bump(sim)
                body_fn(sim)
                raise SimulationError(
                    "forever loop without timing control", line
                )
                yield  # pragma: no cover - marks this as a generator

            return "gen", gen_sync
        body_gen = body_item[1]

        def gen(sim):
            bump(sim)
            while True:
                suspended = yield from body_gen(sim)
                if not suspended:
                    raise SimulationError(
                        "forever loop without timing control", line
                    )

        return "gen", gen

    def _compile_delay_stmt(self, stmt: ast.DelayStmt, scope: Scope, bump):
        delay_fn = self.delay_fn(stmt.delay, scope)
        body_item = self.stmt_item(stmt.body, scope)
        body_sync = body_item[0] == "sync"
        body_fn = body_item[1]

        def gen(sim):
            bump(sim)
            yield ("delay", delay_fn(sim))
            if body_sync:
                body_fn(sim)
            else:
                yield from body_fn(sim)
            return True

        return "gen", gen

    def _sense_signals(self, expr: ast.Expr, scope: Scope) -> list[Signal]:
        """The signals a suspended sense registers its waiter on."""
        signals = []
        for name in collect_reads(expr):
            resolved = scope.resolve(name)
            if resolved and resolved[0] == "signal":
                signals.append(resolved[1])
        return signals

    def _compile_event_control(
        self, stmt: ast.EventControl, scope: Scope, bump
    ):
        entries: list[_SenseEntry] = []
        prep = []  # (entry, refresh_fn) for non-memory entries
        if stmt.senses:
            for sense in stmt.senses:
                fn, _ = _compile4(sense.expr, scope, None)
                entry = _SenseEntry(
                    expr=sense.expr, scope=scope, edge=sense.edge,
                    last=Vec.unknown(1),
                    signals=self._sense_signals(sense.expr, scope),
                    compiled=fn,
                )
                entries.append(entry)
                prep.append((entry, fn))
        else:
            # @* — implicit sensitivity on everything the body reads
            for name in sorted(collect_reads(stmt.body)):
                resolved = scope.resolve(name)
                if not resolved or resolved[0] != "signal":
                    continue
                signal = resolved[1]
                if signal.memory is not None:
                    entries.append(
                        _SenseEntry(
                            expr=None, scope=scope, edge=None,
                            last=Vec.unknown(1), memory_signal=signal,
                            signals=[signal],
                        )
                    )
                    continue
                fn = _signal_reader(signal)
                entry = _SenseEntry(
                    expr=ast.Identifier(name=name), scope=scope,
                    edge=None, last=Vec.unknown(1), signals=[signal],
                    compiled=fn,
                )
                entries.append(entry)
                prep.append((entry, fn))
        prep = tuple(prep)
        body_item = self.stmt_item(stmt.body, scope)
        body_sync = body_item[0] == "sync"
        body_fn = body_item[1]

        def gen(sim):
            bump(sim)
            for entry, refresh in prep:
                entry.last = refresh(sim)
            yield ("wait", entries)
            if body_sync:
                body_fn(sim)
            else:
                yield from body_fn(sim)
            return True

        return "gen", gen

    def _compile_wait(self, stmt: ast.Wait, scope: Scope, bump):
        cond = self.cond_fn(stmt.cond, scope)
        cond4, _ = _compile4(stmt.cond, scope, None)
        entry = _SenseEntry(
            expr=stmt.cond, scope=scope, edge=None, last=Vec.unknown(1),
            signals=self._sense_signals(stmt.cond, scope), compiled=cond4,
        )
        body_item = self.stmt_item(stmt.body, scope)
        body_sync = body_item[0] == "sync"
        body_fn = body_item[1]

        def gen(sim):
            bump(sim)
            while not cond(sim):
                entry.last = cond4(sim)
                yield ("wait", [entry])
            if body_sync:
                body_fn(sim)
            else:
                yield from body_fn(sim)
            return True

        return "gen", gen

    # -- system tasks --------------------------------------------------
    def _compile_sys_task(self, stmt: ast.SysTaskCall, scope: Scope, bump):
        name = stmt.name
        if name in ("$display", "$write", "$strobe"):
            text_fn = self._format_fn(stmt.args, scope)

            def run_display(sim):
                bump(sim)
                sim.output.append(text_fn(sim))

            return "sync", run_display
        if name in ("$error", "$warning", "$fatal"):
            text_fn = self._format_fn(stmt.args, scope)
            fatal = name == "$fatal"

            def run_severity(sim):
                bump(sim)
                sim.output.append(text_fn(sim))
                if fatal:
                    raise _FinishSim()

            return "sync", run_severity
        if name in ("$finish", "$stop"):
            def run_finish(sim):
                bump(sim)
                raise _FinishSim()

            return "sync", run_finish
        # $monitor, $dump*, $readmem*, $timeformat and unknown tasks run
        # through the interpreter's handler (identical behavior/errors).
        def run_delegate(sim):
            bump(sim)
            sim._exec_system_task(stmt, scope)

        return "sync", run_delegate

    def _format_fn(self, args: list[ast.Expr], scope: Scope):
        """Compile-time mirror of ``Simulator._format_args``."""
        if not args:
            return lambda sim: ""
        if isinstance(args[0], ast.StringLit):
            ops = self._format_ops(args[0].text, args[1:], scope)
            if len(ops) == 1:
                return ops[0]
            return lambda sim: "".join(op(sim) for op in ops)
        arg_fns = [_compile4(arg, scope, None)[0] for arg in args]
        render = render_value
        return lambda sim: " ".join(
            render(fn(sim), "d") for fn in arg_fns
        )

    def _format_ops(self, fmt: str, args: list[ast.Expr], scope: Scope):
        """Parse a format string once, mirroring ``_format_string``."""
        top = self.design.top
        render = render_value
        ops = []
        literal: list[str] = []

        def flush() -> None:
            if literal:
                text = "".join(literal)
                literal.clear()
                ops.append(lambda sim, text=text: text)

        arg_iter = iter(args)
        index = 0
        while index < len(fmt):
            ch = fmt[index]
            if ch == "\\" and index + 1 < len(fmt):
                escape = fmt[index + 1]
                literal.append(
                    {"n": "\n", "t": "\t", "\\": "\\", '"': '"'}.get(
                        escape, escape
                    )
                )
                index += 2
                continue
            if ch != "%":
                literal.append(ch)
                index += 1
                continue
            index += 1
            if index >= len(fmt):
                break
            while index < len(fmt) and fmt[index].isdigit():
                index += 1  # field width is parsed and ignored
            conv = fmt[index] if index < len(fmt) else "d"
            index += 1
            if conv == "%":
                literal.append("%")
                continue
            if conv == "m":
                literal.append(scope.path or top)
                continue
            try:
                arg = next(arg_iter)
            except StopIteration:
                literal.append("%" + conv)
                continue
            fn, _ = _compile4(arg, scope, None)
            flush()
            if conv == "t":
                ops.append(
                    lambda sim, fn=fn: str(fn(sim).to_unsigned() or 0)
                )
            else:
                ops.append(
                    lambda sim, fn=fn, conv=conv.lower():
                    render(fn(sim), conv)
                )
        flush()
        if not ops:
            return [lambda sim: ""]
        return ops

    # -- processes -----------------------------------------------------
    def compile_process(self, spec: ProcessSpec):
        """Lower one process to a generator factory ``factory(sim)``."""
        if spec.kind == "assign":
            return self._compile_assign_process(spec)
        if spec.kind == "always":
            return self._compile_always_process(spec)
        return self._compile_initial_process(spec)

    def _compile_assign_process(self, spec: ProcessSpec):
        assert spec.value is not None and spec.target is not None
        target_scope = spec.target_scope or spec.scope
        target_width = self.lvalue_width(spec.target, target_scope)
        context = max(target_width, _static_size(spec.value, spec.scope))
        value_fn = self.value_fn(spec.value, spec.scope, context)
        store = self.store_fn(spec.target, target_scope)
        entries: list[_SenseEntry] = []
        refresh = []
        for name in sorted(collect_reads(spec.value)):
            resolved = spec.scope.resolve(name)
            if not resolved or resolved[0] != "signal":
                continue
            signal = resolved[1]
            if signal.memory is not None:
                entries.append(
                    _SenseEntry(
                        expr=None, scope=spec.scope, edge=None,
                        last=Vec.unknown(1), memory_signal=signal,
                        signals=[signal],
                    )
                )
                continue
            fn = _signal_reader(signal)
            entries.append(
                _SenseEntry(
                    expr=ast.Identifier(name=name), scope=spec.scope,
                    edge=None, last=Vec.unknown(1), signals=[signal],
                    compiled=fn,
                )
            )
            refresh.append((entries[-1], fn))
        refresh = tuple(refresh)

        def gen(sim):
            while True:
                store(sim, value_fn(sim))
                if not entries:
                    return  # constant assign: run once
                for entry, fn in refresh:
                    entry.last = fn(sim)
                yield ("wait", entries)

        return gen

    def _compile_always_process(self, spec: ProcessSpec):
        assert spec.body is not None
        item = self.stmt_item(spec.body, spec.scope)
        line = spec.line
        if item[0] == "sync":
            body_fn = item[1]

            def gen_sync(sim):
                body_fn(sim)
                raise SimulationError(
                    "always block without timing control never suspends",
                    line,
                )
                yield  # pragma: no cover - marks this as a generator

            return gen_sync
        body_gen = item[1]

        def gen(sim):
            while True:
                suspended = yield from body_gen(sim)
                if not suspended:
                    raise SimulationError(
                        "always block without timing control never "
                        "suspends",
                        line,
                    )

        return gen

    def _compile_initial_process(self, spec: ProcessSpec):
        assert spec.body is not None
        item = self.stmt_item(spec.body, spec.scope)
        if item[0] == "gen":
            return item[1]
        body_fn = item[1]

        def gen(sim):
            body_fn(sim)
            return
            yield  # pragma: no cover - marks this as a generator

        return gen


def _signal_reader(signal: Signal):
    return lambda sim: signal.value


def _bump_for(line: int):
    """Per-statement work-guard bump, mirroring ``Simulator._bump_work``."""

    def bump(sim):
        sim._work += 1
        if sim._work > 500_000:
            raise SimulationError(
                f"runaway zero-time loop at time {sim.now}", line
            )

    return bump


def _to_gen(item):
    """Normalize a ("sync"|"gen", fn) statement item to a generator fn."""
    kind, fn = item
    if kind == "gen":
        return fn

    def gen(sim):
        fn(sim)
        return False
        yield  # pragma: no cover - marks this as a generator

    return gen





# ----------------------------------------------------------------------
# Two-state proof
# ----------------------------------------------------------------------
_XZ_CHARS = frozenset("xXzZ?")


def _node_has_xz(node: object) -> bool:
    """Does any executable literal in this AST subtree carry x/z bits?

    Case-item labels and ``===``/``!==`` literal operands are exempt:
    they *compare against* x/z without injecting it into design state,
    and are the idiomatic testbench way to check for unknowns.
    """
    if isinstance(node, ast.Number):
        return bool(_XZ_CHARS.intersection(node.value_bits))
    if isinstance(node, ast.Binary) and node.op in ("===", "!=="):
        return any(
            _node_has_xz(side)
            for side in (node.lhs, node.rhs)
            if not isinstance(side, ast.Number)
        )
    if isinstance(node, ast.Case):
        if _node_has_xz(node.subject):
            return True
        for item in node.items:
            if any(_node_has_xz(label) for label in item.exprs
                   if not isinstance(label, ast.Number)):
                return True
            if _node_has_xz(item.body):
                return True
        return False
    if not dataclasses.is_dataclass(node):
        return False
    for field_info in dataclasses.fields(node):
        value = getattr(node, field_info.name)
        if isinstance(value, (list, tuple)):
            if any(
                dataclasses.is_dataclass(child) and _node_has_xz(child)
                for child in value
            ):
                return True
        elif dataclasses.is_dataclass(value) and _node_has_xz(value):
            return True
    return False


def prove_two_state(design: Design, findings=None) -> bool:
    """Decide whether the two-state (plain-int) lowering is worth emitting.

    The dual lowering is *always* observationally safe — every compiled
    leaf guards on x/z bits and bails to the four-state recomputation —
    so this is a heuristic about profit, not soundness.  We decline when
    the design executes x/z literals (its state provably sees unknowns)
    or when the netlist analyzer reported an ``x-prop`` finding (an
    uninitialized register's x can circulate indefinitely, making the
    guards bail forever).
    """
    if findings is not None and any(
        getattr(finding, "code", None) == "x-prop" for finding in findings
    ):
        return False
    for spec in design.processes:
        if spec.value is not None and _node_has_xz(spec.value):
            return False
        if spec.body is not None and _node_has_xz(spec.body):
            return False
    return True


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class CompiledEngine:
    """Pre-compiled process factories pluggable into ``Simulator``.

    Build once per elaborated ``Design`` and pass as
    ``Simulator(design, engine=...)``.  Processes the compiler cannot
    lower (or whose compilation raises) fall back to the interpreter
    individually; both kinds coexist in one event loop.

    An engine instance is bound to its ``Design`` object and — because
    sense entries are allocated per compiled statement — must not be
    shared across concurrently running simulations of the same design
    object.  The evaluation pipeline re-elaborates per run, so each run
    gets a fresh design + engine pair.
    """

    def __init__(self, design: Design, findings=None,
                 two_state: bool | None = None) -> None:
        self.design = design
        if two_state is None:
            two_state = prove_two_state(design, findings)
        self.two_state = bool(two_state)
        self.fallbacks: list[tuple[str, int, str]] = []
        self._factories: dict[int, object] = {}
        compiler = _ProcessCompiler(design, self.two_state)
        compiled = 0
        for spec in design.processes:
            try:
                factory = compiler.compile_process(spec)
            except _Unsupported as exc:
                self._factories[id(spec)] = None
                self.fallbacks.append((spec.kind, spec.line, str(exc)))
                continue
            except Exception as exc:
                # Compile-time surprise: let the interpreter raise (or
                # not) at runtime exactly as it always has.
                self._factories[id(spec)] = None
                self.fallbacks.append(
                    (spec.kind, spec.line,
                     f"{type(exc).__name__}: {exc}")
                )
                continue
            self._factories[id(spec)] = factory
            compiled += 1
        self.compiled_count = compiled

    def factory_for(self, spec: ProcessSpec):
        """The ``Simulator._make_process`` seam: factory or None."""
        return self._factories.get(id(spec))

    def plan(self) -> dict:
        """JSON-serializable summary (what the on-disk cache stores)."""
        return {
            "version": 1,
            "two_state": self.two_state,
            "processes": len(self.design.processes),
            "compiled": self.compiled_count,
            "fallbacks": [
                {"kind": kind, "line": line, "reason": reason}
                for kind, line, reason in self.fallbacks
            ],
        }
