"""Design elaboration: modules -> flat hierarchy of signals and processes.

Elaboration resolves parameters (including instance overrides), creates a
:class:`Signal` for every net/reg/integer/memory, flattens the instance
hierarchy by connecting child ports with implicit continuous assignments,
and collects the processes (always/initial/continuous assigns) that the
simulator will run.  Errors raised here are what the evaluation pipeline
counts as compile failures beyond pure syntax.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast, values
from .errors import ElaborationError
from .eval import collect_reads, eval_const, eval_expr, eval_sized
from .values import Vec


class Signal:
    """A flattened net/variable (or memory) with its current value."""

    __slots__ = (
        "name", "width", "signed", "kind", "msb", "lsb",
        "value", "memory", "array_lo", "array_hi", "waiters",
    )

    def __init__(
        self,
        name: str,
        width: int,
        signed: bool = False,
        kind: str = "wire",
        msb: int | None = None,
        lsb: int | None = None,
        array: tuple[int, int] | None = None,
    ):
        self.name = name
        self.width = width
        self.signed = signed
        self.kind = kind
        self.msb = msb if msb is not None else width - 1
        self.lsb = lsb if lsb is not None else 0
        self.waiters: list = []
        if array is not None:
            self.array_lo, self.array_hi = min(array), max(array)
            self.memory: dict[int, Vec] | None = {}
            self.value = Vec.unknown(width, signed)
        else:
            self.array_lo = self.array_hi = 0
            self.memory = None
            self.value = Vec.unknown(width, signed)

    def bit_offset(self, index: int | None) -> int | None:
        """Map a declared bit index to an LSB-relative offset."""
        if index is None:
            return None
        if self.msb >= self.lsb:
            offset = index - self.lsb
        else:
            offset = self.lsb - index
        return offset if 0 <= offset < self.width else None

    def read_word(self, address: int | None) -> Vec:
        """Read a memory word; unknown/out-of-range address yields x."""
        assert self.memory is not None
        if address is None or not self.array_lo <= address <= self.array_hi:
            return Vec.unknown(self.width, self.signed)
        return self.memory.get(address, Vec.unknown(self.width, self.signed))

    def __repr__(self) -> str:
        return f"Signal({self.name}, width={self.width}, kind={self.kind})"


@dataclass
class Scope:
    """Name-resolution environment for one module instance."""

    path: str  # hierarchical prefix, '' for top
    signals: dict[str, Signal] = field(default_factory=dict)
    params: dict[str, Vec] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDecl] = field(default_factory=dict)
    parent: "Scope | None" = None  # only used by function-local scopes

    def resolve(self, name: str):
        if name in self.signals:
            return ("signal", self.signals[name])
        if name in self.params:
            return ("param", self.params[name])
        if name in self.functions:
            return ("func", self.functions[name])
        if self.parent is not None:
            return self.parent.resolve(name)
        return None


@dataclass
class ProcessSpec:
    """One runnable entity for the simulator."""

    kind: str  # 'always' | 'initial' | 'assign'
    scope: Scope
    body: ast.Stmt | None = None  # for always/initial
    target: ast.Expr | None = None  # for assign
    value: ast.Expr | None = None  # for assign
    target_scope: Scope | None = None  # assign may straddle scopes (ports)
    line: int = 0


@dataclass
class Design:
    """A fully elaborated design ready to simulate."""

    top: str
    signals: list[Signal] = field(default_factory=list)
    processes: list[ProcessSpec] = field(default_factory=list)
    scopes: dict[str, Scope] = field(default_factory=dict)  # path -> scope

    def signal(self, path: str) -> Signal:
        """Look up a signal by hierarchical name, e.g. ``"dut.q"``."""
        scope_path, _, local = path.rpartition(".")
        scope = self.scopes.get(scope_path)
        if scope is None or local not in scope.signals:
            raise KeyError(f"no signal {path!r} in design")
        return scope.signals[local]


# ----------------------------------------------------------------------
# Lvalue stores (shared with function execution and the simulator)
# ----------------------------------------------------------------------
def store_to_lvalue(
    target: ast.Expr, value: Vec, scope: Scope, ctx=None, commit=None
) -> None:
    """Write ``value`` into a procedural lvalue.

    ``commit`` is the simulator's change-propagation callback
    ``commit(signal, new_value)``; when None (constant/function context)
    the signal value is updated in place without waking waiters.
    """

    def apply(signal: Signal, new_value: Vec) -> None:
        if commit is not None:
            commit(signal, new_value)
        else:
            signal.value = new_value

    if isinstance(target, ast.Identifier):
        resolved = scope.resolve(target.name)
        if resolved is None or resolved[0] != "signal":
            raise ElaborationError(
                f"cannot assign to {target.name!r}", target.line
            )
        signal = resolved[1]
        if signal.memory is not None:
            raise ElaborationError(
                f"assignment to whole memory {target.name!r}", target.line
            )
        apply(signal, value.resize(signal.width, signal.signed))
        return
    if isinstance(target, ast.BitSelect):
        signal = _lvalue_signal(target.base, scope)
        index = eval_expr(target.index, scope, ctx).to_int()
        if signal.memory is not None:
            if index is not None and signal.array_lo <= index <= signal.array_hi:
                signal.memory[index] = value.resize(signal.width, signal.signed)
                if commit is not None:
                    commit(signal, signal.value, memory_write=True)
            return
        offset = signal.bit_offset(index)
        if offset is None:
            return  # out-of-range / unknown index write is a no-op
        apply(signal, values.insert_part(signal.value, offset, offset, value))
        return
    if isinstance(target, ast.PartSelect):
        signal = _lvalue_signal(target.base, scope)
        msb = eval_const(target.msb, scope)
        lsb = eval_const(target.lsb, scope)
        hi, lo = signal.bit_offset(msb), signal.bit_offset(lsb)
        if hi is None or lo is None:
            return
        apply(signal, values.insert_part(signal.value, hi, lo, value))
        return
    if isinstance(target, ast.IndexedPartSelect):
        signal = _lvalue_signal(target.base, scope)
        start = eval_expr(target.start, scope, ctx).to_int()
        width = eval_const(target.width, scope)
        if start is None:
            return
        lo_index = start if target.ascending else start - width + 1
        lo = signal.bit_offset(lo_index)
        if lo is None:
            return
        apply(signal, values.insert_part(signal.value, lo + width - 1, lo, value))
        return
    if isinstance(target, ast.Concat):
        widths = [lvalue_width(part, scope) for part in target.parts]
        total = sum(widths)
        value = value.resize(total)
        offset = total
        for part, width in zip(target.parts, widths):
            offset -= width
            piece = values.select_part(value, offset + width - 1, offset)
            store_to_lvalue(part, piece, scope, ctx, commit)
        return
    raise ElaborationError(
        f"unsupported lvalue {type(target).__name__}", target.line
    )


def _lvalue_signal(base: ast.Expr, scope: Scope) -> Signal:
    if not isinstance(base, ast.Identifier):
        raise ElaborationError("nested lvalue selects unsupported", base.line)
    resolved = scope.resolve(base.name)
    if resolved is None or resolved[0] != "signal":
        raise ElaborationError(f"cannot assign to {base.name!r}", base.line)
    return resolved[1]


def lvalue_width(target: ast.Expr, scope: Scope) -> int:
    if isinstance(target, ast.Identifier):
        return _lvalue_signal(target, scope).width
    if isinstance(target, ast.BitSelect):
        return 1
    if isinstance(target, ast.PartSelect):
        msb = eval_const(target.msb, scope)
        lsb = eval_const(target.lsb, scope)
        return abs(msb - lsb) + 1
    if isinstance(target, ast.IndexedPartSelect):
        return eval_const(target.width, scope)
    if isinstance(target, ast.Concat):
        return sum(lvalue_width(part, scope) for part in target.parts)
    raise ElaborationError(f"bad lvalue {type(target).__name__}", target.line)


def make_function_scope(
    func: ast.FunctionDecl, caller: Scope, args: list[Vec]
) -> Scope:
    """Build the local scope for one function invocation."""
    local = Scope(path=f"{caller.path}.{func.name}()", parent=caller)
    range_width, signed = 1, func.signed
    msb = lsb = None
    if func.range is not None:
        msb = eval_const(func.range.msb, caller)
        lsb = eval_const(func.range.lsb, caller)
        range_width = abs(msb - lsb) + 1
    result = Signal(func.name, range_width, signed, "reg", msb, lsb)
    local.signals[func.name] = result
    for port, arg in zip(func.inputs, args):
        width, port_msb, port_lsb = 1, None, None
        if port.range is not None:
            port_msb = eval_const(port.range.msb, caller)
            port_lsb = eval_const(port.range.lsb, caller)
            width = abs(port_msb - port_lsb) + 1
        signal = Signal(port.name, width, port.signed, "reg", port_msb, port_lsb)
        signal.value = arg.resize(width, port.signed)
        local.signals[port.name] = signal
    for decl in func.decls:
        width, decl_msb, decl_lsb = 1, None, None
        if decl.kind == "integer":
            width = 32
        if decl.range is not None:
            decl_msb = eval_const(decl.range.msb, caller)
            decl_lsb = eval_const(decl.range.lsb, caller)
            width = abs(decl_msb - decl_lsb) + 1
        signal = Signal(decl.name, width, decl.signed, "reg", decl_msb, decl_lsb)
        signal.value = Vec.unknown(width, decl.signed)
        local.signals[decl.name] = signal
    return local


# ----------------------------------------------------------------------
# Elaborator
# ----------------------------------------------------------------------
MAX_HIERARCHY_DEPTH = 32


class Elaborator:
    """Builds a :class:`Design` from a parsed source unit."""

    def __init__(self, unit: ast.SourceUnit):
        self.unit = unit
        self.design: Design | None = None

    def elaborate(self, top_name: str) -> Design:
        top = self.unit.module(top_name)
        if top is None:
            raise ElaborationError(f"top module {top_name!r} not found")
        self.design = Design(top=top_name)
        self._instantiate(top, path="", overrides={}, depth=0)
        self._validate_references()
        return self.design

    def _validate_references(self) -> None:
        """Static name check: every referenced identifier must resolve.

        Matches Icarus behaviour (``default_nettype none`` flavour):
        undeclared identifiers are compile errors, not runtime x's.
        """
        assert self.design is not None
        for spec in self.design.processes:
            names: set[str] = set()
            if spec.kind == "assign":
                collect_reads(spec.value, names)
                target_scope = spec.target_scope or spec.scope
                self._check_names(names, spec.scope, spec.line)
                lvalues: set[str] = set()
                _collect_lvalue_names(spec.target, lvalues)
                self._check_names(lvalues, target_scope, spec.line)
            else:
                collect_reads(spec.body, names)
                lvalues = set()
                _collect_lvalue_stmt_names(spec.body, lvalues)
                self._check_names(names | lvalues, spec.scope, spec.line)

    @staticmethod
    def _check_names(names: set[str], scope: Scope, line: int) -> None:
        for name in sorted(names):
            if scope.resolve(name) is None:
                raise ElaborationError(
                    f"undeclared identifier {name!r}", line
                )

    # ------------------------------------------------------------------
    def _instantiate(
        self,
        module: ast.Module,
        path: str,
        overrides: dict[str, Vec],
        depth: int,
        port_bindings: list[tuple[ast.Port, ast.Expr | None, Scope]] | None = None,
    ) -> Scope:
        if depth > MAX_HIERARCHY_DEPTH:
            raise ElaborationError(
                f"instance depth exceeds {MAX_HIERARCHY_DEPTH} "
                f"(recursive instantiation of {module.name!r}?)"
            )
        assert self.design is not None
        scope = Scope(path=path)
        self.design.scopes[path] = scope
        for func in module.functions:
            scope.functions[func.name] = func

        # Parameters first (they may size ports and nets).
        for param in module.params:
            if param.name in overrides and not param.is_local:
                scope.params[param.name] = overrides[param.name]
            else:
                if param.value is None:
                    raise ElaborationError(
                        f"parameter {param.name!r} has no value", param.line
                    )
                scope.params[param.name] = eval_expr(param.value, scope)

        # Ports and declarations become signals.
        declared_ports: dict[str, ast.Port] = {}
        for port in module.ports:
            if port.name in scope.signals:
                raise ElaborationError(
                    f"duplicate port {port.name!r}", port.line
                )
            scope.signals[port.name] = self._make_signal(
                port.name, port.range, None, port.signed, port.net_kind, scope, path
            )
            declared_ports[port.name] = port
        for decl in module.decls:
            existing = scope.signals.get(decl.name)
            if existing is not None:
                if decl.name in declared_ports:
                    # body re-declaration of a port (non-ANSI style):
                    # upgrade kind/signedness, check width agreement
                    redecl = self._make_signal(
                        decl.name, decl.range, decl.array, decl.signed,
                        decl.kind, scope, path,
                    )
                    if redecl.width != existing.width:
                        raise ElaborationError(
                            f"port {decl.name!r} redeclared with different width",
                            decl.line,
                        )
                    existing.kind = decl.kind
                    existing.signed = existing.signed or decl.signed
                    continue
                raise ElaborationError(
                    f"duplicate declaration of {decl.name!r}", decl.line
                )
            scope.signals[decl.name] = self._make_signal(
                decl.name, decl.range, decl.array, decl.signed,
                decl.kind, scope, path,
            )
            if decl.init is not None:
                signal = scope.signals[decl.name]
                signal.value = eval_expr(decl.init, scope).resize(
                    signal.width, signal.signed
                )

        self.design.signals.extend(scope.signals.values())

        # Port bindings from the parent instance become continuous assigns.
        if port_bindings:
            for port, expr, parent_scope in port_bindings:
                if expr is None:
                    continue
                child_signal_expr = ast.Identifier(name=port.name, line=port.line)
                if port.direction == "output":
                    self.design.processes.append(
                        ProcessSpec(
                            kind="assign",
                            scope=scope,
                            target=expr,
                            value=child_signal_expr,
                            target_scope=parent_scope,
                            line=port.line,
                        )
                    )
                else:  # input / inout: drive child from parent expression
                    self.design.processes.append(
                        ProcessSpec(
                            kind="assign",
                            scope=parent_scope,
                            target=child_signal_expr,
                            value=expr,
                            target_scope=scope,
                            line=port.line,
                        )
                    )

        for cont in module.assigns:
            self.design.processes.append(
                ProcessSpec(
                    kind="assign",
                    scope=scope,
                    target=cont.target,
                    value=cont.value,
                    target_scope=scope,
                    line=cont.line,
                )
            )
        # always and initial blocks start in source order (matching the
        # de-facto behaviour of event-driven simulators like Icarus)
        procedural = [
            ProcessSpec(kind="always", scope=scope, body=blk.body, line=blk.line)
            for blk in module.always_blocks
        ] + [
            ProcessSpec(kind="initial", scope=scope, body=blk.body, line=blk.line)
            for blk in module.initial_blocks
        ]
        procedural.sort(key=lambda spec: spec.line)
        self.design.processes.extend(procedural)

        for instance in module.instances:
            self._elaborate_instance(module, instance, scope, path, depth)
        return scope

    # ------------------------------------------------------------------
    def _elaborate_instance(
        self,
        parent_module: ast.Module,
        instance: ast.Instance,
        parent_scope: Scope,
        parent_path: str,
        depth: int,
    ) -> None:
        child = self.unit.module(instance.module_name)
        if child is None:
            raise ElaborationError(
                f"unknown module {instance.module_name!r}", instance.line
            )
        # Parameter overrides.
        overrides: dict[str, Vec] = {}
        settable = [p for p in child.params if not p.is_local]
        for position, conn in enumerate(instance.param_overrides):
            if conn.expr is None:
                continue
            value = eval_expr(conn.expr, parent_scope)
            if conn.name is not None:
                if all(p.name != conn.name for p in settable):
                    raise ElaborationError(
                        f"module {child.name!r} has no parameter {conn.name!r}",
                        instance.line,
                    )
                overrides[conn.name] = value
            else:
                if position >= len(settable):
                    raise ElaborationError(
                        f"too many parameter overrides for {child.name!r}",
                        instance.line,
                    )
                overrides[settable[position].name] = value

        # Port bindings.
        bindings: list[tuple[ast.Port, ast.Expr | None, Scope]] = []
        if instance.connections and instance.connections[0].name is not None:
            by_name = {port.name: port for port in child.ports}
            for conn in instance.connections:
                port = by_name.get(conn.name or "")
                if port is None:
                    raise ElaborationError(
                        f"module {child.name!r} has no port {conn.name!r}",
                        instance.line,
                    )
                bindings.append((port, conn.expr, parent_scope))
        else:
            if len(instance.connections) > len(child.ports):
                raise ElaborationError(
                    f"too many connections for {child.name!r}", instance.line
                )
            for port, conn in zip(child.ports, instance.connections):
                bindings.append((port, conn.expr, parent_scope))

        child_path = (
            f"{parent_path}.{instance.instance_name}"
            if parent_path
            else instance.instance_name
        )
        if child_path in (self.design.scopes if self.design else {}):
            raise ElaborationError(
                f"duplicate instance name {instance.instance_name!r}",
                instance.line,
            )
        self._instantiate(child, child_path, overrides, depth + 1, bindings)

    # ------------------------------------------------------------------
    def _make_signal(
        self,
        name: str,
        rng: ast.Range | None,
        array: ast.Range | None,
        signed: bool,
        kind: str,
        scope: Scope,
        path: str,
    ) -> Signal:
        width, msb, lsb = 1, None, None
        if kind == "integer":
            width, signed = 32, True
            msb, lsb = 31, 0
        if rng is not None:
            msb = eval_const(rng.msb, scope)
            lsb = eval_const(rng.lsb, scope)
            width = abs(msb - lsb) + 1
        array_bounds = None
        if array is not None:
            lo = eval_const(array.msb, scope)
            hi = eval_const(array.lsb, scope)
            array_bounds = (lo, hi)
        flat_name = f"{path}.{name}" if path else name
        return Signal(flat_name, width, signed, kind, msb, lsb, array_bounds)


def elaborate(unit: ast.SourceUnit, top: str) -> Design:
    """Elaborate ``top`` from a parsed source unit."""
    return Elaborator(unit).elaborate(top)


__all__ = [
    "Design",
    "Elaborator",
    "ProcessSpec",
    "Scope",
    "Signal",
    "collect_reads",
    "elaborate",
    "lvalue_width",
    "make_function_scope",
    "store_to_lvalue",
]


def _collect_lvalue_names(target: ast.Expr | None, into: set[str]) -> None:
    """Base identifier names of an lvalue expression."""
    if isinstance(target, ast.Identifier):
        into.add(target.name)
    elif isinstance(target, (ast.BitSelect, ast.PartSelect, ast.IndexedPartSelect)):
        _collect_lvalue_names(target.base, into)
    elif isinstance(target, ast.Concat):
        for part in target.parts:
            _collect_lvalue_names(part, into)


def _collect_lvalue_stmt_names(stmt: ast.Stmt | None, into: set[str]) -> None:
    """Assignment-target names reachable in a statement tree."""
    if stmt is None:
        return
    if isinstance(stmt, ast.Block):
        for child in stmt.stmts:
            _collect_lvalue_stmt_names(child, into)
    elif isinstance(stmt, ast.Assign):
        _collect_lvalue_names(stmt.target, into)
    elif isinstance(stmt, ast.If):
        _collect_lvalue_stmt_names(stmt.then_stmt, into)
        _collect_lvalue_stmt_names(stmt.else_stmt, into)
    elif isinstance(stmt, ast.Case):
        for item in stmt.items:
            _collect_lvalue_stmt_names(item.body, into)
    elif isinstance(stmt, ast.For):
        _collect_lvalue_stmt_names(stmt.init, into)
        _collect_lvalue_stmt_names(stmt.step, into)
        _collect_lvalue_stmt_names(stmt.body, into)
    elif isinstance(stmt, (ast.While, ast.Repeat, ast.Forever)):
        _collect_lvalue_stmt_names(stmt.body, into)
    elif isinstance(stmt, (ast.DelayStmt, ast.EventControl, ast.Wait)):
        _collect_lvalue_stmt_names(stmt.body, into)
