"""Tokenizer for the Verilog-2001 subset used by the evaluation pipeline.

Produces a flat token stream with line/column positions.  Handles line and
block comments, sized/based numeric literals (including x/z digits),
string literals, system identifiers (``$display``), escaped identifiers,
and compiler directives (```timescale`` and friends are consumed to end of
line, ```define``-free sources are assumed — the problem set and corpus
use none).
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import LexError

KEYWORDS = frozenset(
    """
    module endmodule input output inout wire reg integer real parameter
    localparam assign always initial begin end if else case casez casex
    endcase default for while repeat forever posedge negedge or and not
    nand nor xor xnor buf signed unsigned function endfunction task endtask
    generate endgenerate genvar wait deassign disable
    """.split()
)

# Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<<", ">>>", "===", "!==", "+:", "-:",
    "**", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "~&", "~|", "~^", "^~", "->",
    "+", "-", "*", "/", "%", "!", "~", "&", "|", "^", "<", ">",
    "=", "?", ":", ",", ";", ".", "(", ")", "[", "]", "{", "}", "#", "@",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    kind is one of: ID, KEYWORD, NUMBER, BASED_NUMBER, STRING, SYSID, OP, EOF.
    For BASED_NUMBER, ``text`` keeps the literal (e.g. ``8'hFF``) and the
    parsed fields live in ``meta`` as (size_or_None, base_char, digits,
    signed_flag).
    """

    kind: str
    text: str
    line: int
    column: int
    meta: tuple | None = None

    def __repr__(self) -> str:  # compact for parser error messages
        return f"{self.kind}({self.text!r}@{self.line}:{self.column})"


_ID_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_ID_CHARS = _ID_START | frozenset("0123456789$")
_DIGITS = frozenset("0123456789")

_BASE_DIGITS = {
    "b": frozenset("01xXzZ?_"),
    "o": frozenset("01234567xXzZ?_"),
    "d": frozenset("0123456789xXzZ?_"),
    "h": frozenset("0123456789abcdefABCDEFxXzZ?_"),
}


class Lexer:
    """Single-pass tokenizer; call :meth:`tokenize` once."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1
        self.tokens: list[Token] = []

    # ------------------------------------------------------------------
    def tokenize(self) -> list[Token]:
        while self.pos < len(self.source):
            ch = self.source[self.pos]
            if ch in " \t\r\f":
                self._advance(1)
            elif ch == "\n":
                self._newline()
            elif self.source.startswith("//", self.pos):
                self._skip_line()
            elif self.source.startswith("/*", self.pos):
                self._skip_block_comment()
            elif ch == "`":
                self._skip_line()  # directives are consumed, not interpreted
            elif ch == '"':
                self._lex_string()
            elif ch == "$":
                self._lex_sysid()
            elif ch == "\\":
                self._lex_escaped_id()
            elif ch in _ID_START:
                self._lex_identifier()
            elif ch in _DIGITS or (ch == "'" and self._peek_base()):
                self._lex_number()
            else:
                self._lex_operator()
        self.tokens.append(Token("EOF", "", self.line, self.column))
        return self.tokens

    # ------------------------------------------------------------------
    def _advance(self, count: int) -> None:
        self.pos += count
        self.column += count

    def _newline(self) -> None:
        self.pos += 1
        self.line += 1
        self.column = 1

    def _skip_line(self) -> None:
        while self.pos < len(self.source) and self.source[self.pos] != "\n":
            self.pos += 1

    def _skip_block_comment(self) -> None:
        end = self.source.find("*/", self.pos + 2)
        if end < 0:
            raise LexError("unterminated block comment", self.line, self.column)
        for ch in self.source[self.pos : end + 2]:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos = end + 2

    def _emit(self, kind: str, text: str, meta: tuple | None = None) -> None:
        self.tokens.append(Token(kind, text, self.line, self.column, meta))
        self._advance(len(text))

    # ------------------------------------------------------------------
    def _lex_string(self) -> None:
        start = self.pos + 1
        index = start
        while index < len(self.source):
            ch = self.source[index]
            if ch == "\\":
                index += 2
                continue
            if ch == '"':
                break
            if ch == "\n":
                raise LexError("newline in string literal", self.line, self.column)
            index += 1
        else:
            raise LexError("unterminated string literal", self.line, self.column)
        text = self.source[start:index]
        self._emit("STRING", f'"{text}"')

    def _lex_sysid(self) -> None:
        index = self.pos + 1
        while index < len(self.source) and self.source[index] in _ID_CHARS:
            index += 1
        if index == self.pos + 1:
            raise LexError("bare '$'", self.line, self.column)
        self._emit("SYSID", self.source[self.pos : index])

    def _lex_escaped_id(self) -> None:
        index = self.pos + 1
        while index < len(self.source) and not self.source[index].isspace():
            index += 1
        text = self.source[self.pos : index]
        token = Token("ID", text[1:], self.line, self.column)
        self.tokens.append(token)
        self._advance(len(text))

    def _lex_identifier(self) -> None:
        index = self.pos
        while index < len(self.source) and self.source[index] in _ID_CHARS:
            index += 1
        text = self.source[self.pos : index]
        kind = "KEYWORD" if text in KEYWORDS else "ID"
        self._emit(kind, text)

    # ------------------------------------------------------------------
    def _peek_base(self) -> bool:
        """True when the current ``'`` begins an unsized based literal."""
        nxt = self.source[self.pos + 1 : self.pos + 3].lower()
        if not nxt:
            return False
        if nxt[0] == "s" and len(nxt) > 1:
            return nxt[1] in _BASE_DIGITS
        return nxt[0] in _BASE_DIGITS

    def _lex_number(self) -> None:
        start = self.pos
        index = self.pos
        size_digits = ""
        while index < len(self.source) and self.source[index] in _DIGITS | {"_"}:
            index += 1
        size_digits = self.source[start:index].replace("_", "")
        # Look ahead past whitespace for a base marker 'b/'h/...
        probe = index
        while probe < len(self.source) and self.source[probe] in " \t":
            probe += 1
        if probe < len(self.source) and self.source[probe] == "'":
            self._lex_based_number(start, size_digits or None, probe)
            return
        if size_digits == "" and self.source[start] == "'":
            self._lex_based_number(start, None, start)
            return
        # Plain decimal (reject reals with a digit.digit form by lexing the
        # integer part only; the subset does not use real literals).
        text = self.source[start:index]
        token = Token("NUMBER", text, self.line, self.column, (int(size_digits),))
        self.tokens.append(token)
        self._advance(index - start)

    def _lex_based_number(
        self, start: int, size: str | None, quote_pos: int
    ) -> None:
        index = quote_pos + 1
        signed = False
        if index < len(self.source) and self.source[index] in "sS":
            signed = True
            index += 1
        if index >= len(self.source) or self.source[index].lower() not in _BASE_DIGITS:
            raise LexError("malformed based literal", self.line, self.column)
        base = self.source[index].lower()
        index += 1
        digit_start = index
        allowed = _BASE_DIGITS[base]
        while index < len(self.source) and self.source[index] in allowed:
            index += 1
        digits = self.source[digit_start:index].replace("_", "")
        if not digits:
            raise LexError("based literal has no digits", self.line, self.column)
        text = self.source[start:index]
        meta = (int(size) if size else None, base, digits, signed)
        token = Token("BASED_NUMBER", text, self.line, self.column, meta)
        self.tokens.append(token)
        # advance manually: text may contain internal spaces
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos = index

    # ------------------------------------------------------------------
    def _lex_operator(self) -> None:
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._emit("OP", op)
                return
        raise LexError(
            f"unexpected character {self.source[self.pos]!r}",
            self.line,
            self.column,
        )


def tokenize(source: str) -> list[Token]:
    """Tokenize Verilog source, raising :class:`LexError` on bad input."""
    return Lexer(source).tokenize()
