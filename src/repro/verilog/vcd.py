"""Value Change Dump (IEEE 1364 Sec. 18) writer.

The simulator records signal transitions when the design calls
``$dumpvars``; this module formats them as standard VCD text that
external waveform viewers (GTKWave etc.) accept.  Files are never written
implicitly — the caller decides via :meth:`VcdRecorder.text` or
:meth:`VcdRecorder.write`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .values import Vec

_ID_CHARS = "".join(chr(c) for c in range(33, 127))  # printable VCD id codes


def _id_code(index: int) -> str:
    """Short printable identifier for the index-th variable."""
    code = ""
    index += 1
    while index:
        index, digit = divmod(index - 1, len(_ID_CHARS))
        code = _ID_CHARS[digit] + code
    return code


def _format_value(value: Vec, code: str) -> str:
    if value.width == 1:
        return f"{value.bit(0)}{code}"
    return f"b{value.bits()} {code}"


@dataclass
class VcdRecorder:
    """Collects value changes and renders VCD text."""

    timescale: str = "1ns"
    _vars: list[tuple[str, int, str]] = field(default_factory=list)
    _initial: list[str] = field(default_factory=list)
    _changes: list[tuple[int, str]] = field(default_factory=list)
    _codes: dict[int, str] = field(default_factory=dict)

    def register(self, key: int, name: str, width: int, value: Vec) -> str:
        """Declare one variable; returns its VCD id code."""
        code = _id_code(len(self._vars))
        self._codes[key] = code
        self._vars.append((name, width, code))
        self._initial.append(_format_value(value, code))
        return code

    def code_for(self, key: int) -> str | None:
        return self._codes.get(key)

    def record(self, time: int, value: Vec, code: str) -> None:
        self._changes.append((time, _format_value(value, code)))

    # ------------------------------------------------------------------
    def text(self, top: str = "top") -> str:
        """Render the collected dump as VCD."""
        lines = [
            "$date repro simulation $end",
            "$version repro.verilog VCD writer $end",
            f"$timescale {self.timescale} $end",
            f"$scope module {top} $end",
        ]
        for name, width, code in self._vars:
            safe = name.replace(".", "_")
            lines.append(f"$var wire {width} {code} {safe} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        lines.append("$dumpvars")
        lines.extend(self._initial)
        lines.append("$end")
        current_time: int | None = None
        for time, change in self._changes:
            if time != current_time:
                lines.append(f"#{time}")
                current_time = time
            lines.append(change)
        return "\n".join(lines) + "\n"

    def write(self, path: str, top: str = "top") -> None:
        with open(path, "w", encoding="ascii") as handle:
            handle.write(self.text(top))

    @property
    def change_count(self) -> int:
        return len(self._changes)
