"""A Verilog-2001-subset compiler and event-driven simulator.

This package is the reproduction's substitute for Icarus Verilog: it
provides the "does it compile" and "does it pass the test bench" gates of
the paper's evaluation pipeline.

Quick example::

    from repro.verilog import run_simulation

    report, result = run_simulation(source_with_testbench, top="tb")
    assert report.ok and "PASS" in result.text
"""

from .analyze import (
    FINDING_CODES,
    Finding,
    analyze_design,
    analyze_source,
    check_design,
    error_findings,
    finding_from_dict,
    finding_to_dict,
    infer_top,
)
from .compile import CompileReport, check_syntax, compile_design, run_simulation
from .elaborate import Design, Scope, Signal, elaborate
from .errors import (
    AnalysisError,
    ElaborationError,
    LexError,
    ParseError,
    SimulationError,
    VerilogError,
)
from .lexer import Token, tokenize
from .parser import parse
from .lint import LintWarning, lint_module, lint_source_unit
from .codegen import CompiledEngine, prove_two_state
from .sim import SimResult, Simulator, simulate
from .values import Vec
from .vcd import VcdRecorder
from .writer import write_expr, write_module, write_source_unit, write_stmt

__all__ = [
    "AnalysisError",
    "CompileReport",
    "Design",
    "ElaborationError",
    "FINDING_CODES",
    "Finding",
    "LexError",
    "LintWarning",
    "ParseError",
    "Scope",
    "SimResult",
    "SimulationError",
    "Signal",
    "Simulator",
    "Token",
    "Vec",
    "VcdRecorder",
    "VerilogError",
    "analyze_design",
    "analyze_source",
    "check_design",
    "check_syntax",
    "compile_design",
    "elaborate",
    "error_findings",
    "finding_from_dict",
    "finding_to_dict",
    "infer_top",
    "parse",
    "CompiledEngine",
    "prove_two_state",
    "run_simulation",
    "lint_module",
    "lint_source_unit",
    "simulate",
    "tokenize",
    "write_expr",
    "write_module",
    "write_source_unit",
    "write_stmt",
]
